//! Schema definitions and the type catalog (§3–4).
//!
//! The catalog registers **domains**, **object types**, **relationship
//! types**, and **inheritance-relationship types**, validates them against
//! each other, and computes each type's *effective schema*: its local
//! attributes and subclasses plus everything reachable through its
//! `inheritor-in` declarations — transitively, so interface *hierarchies*
//! (§4.2) compose.

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

use crate::domain::Domain;
use crate::error::{CoreError, CoreResult};
use crate::expr::Expr;

/// A named integrity constraint (boolean [`Expr`] over the object).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Constraint {
    /// Label used in violation reports (defaults to the rendered expression).
    pub name: String,
    /// The boolean expression; `self` paths root at the constrained object.
    pub expr: Expr,
}

impl Constraint {
    /// Constraint named after its own rendering.
    pub fn new(expr: Expr) -> Self {
        Constraint {
            name: expr.to_string(),
            expr,
        }
    }

    /// Constraint with an explicit label.
    pub fn named(name: &str, expr: Expr) -> Self {
        Constraint {
            name: name.to_string(),
            expr,
        }
    }
}

/// An attribute declaration.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct AttrDef {
    /// Attribute name.
    pub name: String,
    /// Value domain.
    pub domain: Domain,
}

impl AttrDef {
    /// Convenience constructor.
    pub fn new(name: &str, domain: Domain) -> Self {
        AttrDef {
            name: name.to_string(),
            domain,
        }
    }
}

/// A local object-subclass declaration of a complex type
/// (`types-of-subclasses:`).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct SubclassSpec {
    /// Subclass name, e.g. `Pins`, `SubGates`.
    pub name: String,
    /// Object type of the members (possibly an anonymous type generated for
    /// an inline declaration, see [`Catalog::register_inline_member_type`]).
    pub element_type: String,
}

/// A local relationship-subclass declaration (`types-of-subrels:`).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct SubrelSpec {
    /// Subrel name, e.g. `Wires`, `Screwings`.
    pub name: String,
    /// Relationship type of the members.
    pub rel_type: String,
    /// `where` clause checked for each member; inside it the member is bound
    /// to the variable [`crate::expr::REL_VAR`], while `self` paths root at
    /// the *owning* complex object.
    pub member_constraints: Vec<Constraint>,
}

/// An object type (§3), possibly complex (with subclasses/subrels) and
/// possibly an inheritor (§4).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize, Default)]
pub struct ObjectTypeDef {
    /// Type name.
    pub name: String,
    /// `inheritor-in:` declarations — the inheritance-relationship types in
    /// which objects of this type may be (or must be, when bound) inheritors.
    pub inheritor_in: Vec<String>,
    /// Local attributes.
    pub attributes: Vec<AttrDef>,
    /// Local object subclasses.
    pub subclasses: Vec<SubclassSpec>,
    /// Local relationship subclasses.
    pub subrels: Vec<SubrelSpec>,
    /// Local integrity constraints.
    pub constraints: Vec<Constraint>,
}

/// Cardinality and typing of one participant role of a relationship type.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ParticipantSpec {
    /// Role name, e.g. `Pin1`, `Bores`.
    pub name: String,
    /// `set-of` roles accept any number of objects; otherwise exactly one.
    pub many: bool,
    /// `object-of-type T` restricts members to `T`; `object` accepts any.
    pub required_type: Option<String>,
}

impl ParticipantSpec {
    /// Single typed participant (`Pin1: object-of-type PinType`).
    pub fn one(name: &str, ty: &str) -> Self {
        ParticipantSpec {
            name: name.into(),
            many: false,
            required_type: Some(ty.into()),
        }
    }

    /// Single untyped participant (`<name>: object`).
    pub fn one_any(name: &str) -> Self {
        ParticipantSpec {
            name: name.into(),
            many: false,
            required_type: None,
        }
    }

    /// Set-valued typed participant (`Bores: set-of object-of-type BoreType`).
    pub fn many(name: &str, ty: &str) -> Self {
        ParticipantSpec {
            name: name.into(),
            many: true,
            required_type: Some(ty.into()),
        }
    }
}

/// A relationship type (§3). Relationship objects are full objects: they may
/// carry attributes, their own subclasses (§5 `ScrewingType` embeds bolts and
/// nuts) and constraints.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize, Default)]
pub struct RelTypeDef {
    /// Type name.
    pub name: String,
    /// `relates:` clause.
    pub participants: Vec<ParticipantSpec>,
    /// Own attributes of the relationship object.
    pub attributes: Vec<AttrDef>,
    /// Own subclasses of the relationship object.
    pub subclasses: Vec<SubclassSpec>,
    /// Own relationship subclasses of the relationship object (symmetric
    /// with [`ObjectTypeDef::subrels`]).
    pub subrels: Vec<SubrelSpec>,
    /// Constraints over participants, attributes and subclasses.
    pub constraints: Vec<Constraint>,
}

/// An inheritance-relationship type (§4.1).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct InherRelTypeDef {
    /// Type name, e.g. `AllOf_GateInterface`.
    pub name: String,
    /// Type of transmitter objects.
    pub transmitter_type: String,
    /// Required inheritor type; `None` renders the paper's `inheritor:
    /// object` (any type that declares `inheritor-in` this relationship).
    pub inheritor_type: Option<String>,
    /// The *permeability*: names of transmitter attributes/subclasses that
    /// flow through. Each must exist in the transmitter type's effective
    /// schema (so hierarchies can re-export inherited items).
    pub inheriting: Vec<String>,
    /// Own attributes of the relationship object (the paper suggests using
    /// them for consistency bookkeeping; the store also maintains the
    /// built-in adaptation flag).
    pub attributes: Vec<AttrDef>,
    /// Constraints over the relationship object.
    pub constraints: Vec<Constraint>,
}

/// Where an effective schema item comes from.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ItemSource {
    /// Declared on the type itself.
    Local,
    /// Inherited through an `inheritor-in` declaration.
    Inherited {
        /// The inheritance-relationship type it flows through.
        via_rel: String,
        /// The (transitive) transmitter type that declares it locally.
        from_type: String,
    },
}

/// The computed effective schema of an object type: local + inherited items.
#[derive(Clone, Debug, Default)]
pub struct EffectiveSchema {
    /// Attribute name → (domain, source). Local declarations win over
    /// inherited ones of the same name (shadowing is rejected at validation,
    /// so in a validated catalog there are no collisions).
    pub attrs: Vec<(String, Domain, ItemSource)>,
    /// Subclass name → (element type, source).
    pub subclasses: Vec<(String, String, ItemSource)>,
}

impl EffectiveSchema {
    /// Find an attribute by name.
    pub fn attr(&self, name: &str) -> Option<(&Domain, &ItemSource)> {
        self.attrs
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, d, s)| (d, s))
    }

    /// Find a subclass by name.
    pub fn subclass(&self, name: &str) -> Option<(&str, &ItemSource)> {
        self.subclasses
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, t, s)| (t.as_str(), s))
    }

    /// Is this item (attribute or subclass) inherited rather than local?
    pub fn is_inherited(&self, name: &str) -> bool {
        self.attr(name)
            .map(|(_, s)| s != &ItemSource::Local)
            .unwrap_or(false)
            || self
                .subclass(name)
                .map(|(_, s)| s != &ItemSource::Local)
                .unwrap_or(false)
    }
}

/// The schema catalog.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Catalog {
    domains: HashMap<String, Domain>,
    object_types: HashMap<String, ObjectTypeDef>,
    rel_types: HashMap<String, RelTypeDef>,
    inher_rel_types: HashMap<String, InherRelTypeDef>,
    anon_counter: u64,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a named domain (`domain Point = …`).
    pub fn register_domain(&mut self, name: &str, domain: Domain) -> CoreResult<()> {
        if self.domains.contains_key(name) {
            return Err(CoreError::Duplicate {
                kind: "domain",
                name: name.into(),
            });
        }
        self.domains.insert(name.to_string(), domain);
        Ok(())
    }

    /// Look up a named domain.
    pub fn domain(&self, name: &str) -> CoreResult<&Domain> {
        self.domains.get(name).ok_or_else(|| CoreError::Unknown {
            kind: "domain",
            name: name.into(),
        })
    }

    /// Register an object type.
    pub fn register_object_type(&mut self, def: ObjectTypeDef) -> CoreResult<()> {
        if self.object_types.contains_key(&def.name)
            || self.rel_types.contains_key(&def.name)
            || self.inher_rel_types.contains_key(&def.name)
        {
            return Err(CoreError::Duplicate {
                kind: "type",
                name: def.name,
            });
        }
        self.object_types.insert(def.name.clone(), def);
        Ok(())
    }

    /// Register a relationship type.
    pub fn register_rel_type(&mut self, def: RelTypeDef) -> CoreResult<()> {
        if self.object_types.contains_key(&def.name)
            || self.rel_types.contains_key(&def.name)
            || self.inher_rel_types.contains_key(&def.name)
        {
            return Err(CoreError::Duplicate {
                kind: "type",
                name: def.name,
            });
        }
        self.rel_types.insert(def.name.clone(), def);
        Ok(())
    }

    /// Register an inheritance-relationship type.
    pub fn register_inher_rel_type(&mut self, def: InherRelTypeDef) -> CoreResult<()> {
        if self.object_types.contains_key(&def.name)
            || self.rel_types.contains_key(&def.name)
            || self.inher_rel_types.contains_key(&def.name)
        {
            return Err(CoreError::Duplicate {
                kind: "type",
                name: def.name,
            });
        }
        self.inher_rel_types.insert(def.name.clone(), def);
        Ok(())
    }

    /// Generate and register an anonymous member type for an inline subclass
    /// declaration, e.g. the paper's
    /// `SubGates: inheritor-in: AllOf_GateInterface; attributes: GateLocation`.
    /// Returns the generated type name (`<owner>.<subclass>`).
    pub fn register_inline_member_type(
        &mut self,
        owner: &str,
        subclass: &str,
        inheritor_in: Vec<String>,
        attributes: Vec<AttrDef>,
    ) -> CoreResult<String> {
        let name = format!("{owner}.{subclass}");
        self.register_object_type(ObjectTypeDef {
            name: name.clone(),
            inheritor_in,
            attributes,
            subclasses: vec![],
            subrels: vec![],
            constraints: vec![],
        })?;
        Ok(name)
    }

    /// Object-type lookup.
    pub fn object_type(&self, name: &str) -> CoreResult<&ObjectTypeDef> {
        self.object_types
            .get(name)
            .ok_or_else(|| CoreError::Unknown {
                kind: "object type",
                name: name.into(),
            })
    }

    /// Relationship-type lookup.
    pub fn rel_type(&self, name: &str) -> CoreResult<&RelTypeDef> {
        self.rel_types.get(name).ok_or_else(|| CoreError::Unknown {
            kind: "relationship type",
            name: name.into(),
        })
    }

    /// Inheritance-relationship-type lookup.
    pub fn inher_rel_type(&self, name: &str) -> CoreResult<&InherRelTypeDef> {
        self.inher_rel_types
            .get(name)
            .ok_or_else(|| CoreError::Unknown {
                kind: "inheritance relationship type",
                name: name.into(),
            })
    }

    /// Names of all registered domains (sorted).
    pub fn domain_names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.domains.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }

    /// Names of all registered object types (sorted, for stable output).
    pub fn object_type_names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.object_types.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }

    /// Names of all registered relationship types (sorted).
    pub fn rel_type_names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.rel_types.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }

    /// Names of all registered inheritance-relationship types (sorted).
    pub fn inher_rel_type_names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.inher_rel_types.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }

    /// Compute the effective schema of an object type: local attributes and
    /// subclasses plus — for every `inheritor-in` declaration — the
    /// permeable part of the transmitter type's *effective* schema
    /// (transitivity gives interface hierarchies).
    pub fn effective_schema(&self, type_name: &str) -> CoreResult<EffectiveSchema> {
        let mut visiting = HashSet::new();
        self.effective_schema_rec(type_name, &mut visiting)
    }

    fn effective_schema_rec(
        &self,
        type_name: &str,
        visiting: &mut HashSet<String>,
    ) -> CoreResult<EffectiveSchema> {
        if !visiting.insert(type_name.to_string()) {
            return Err(CoreError::InvalidSchema {
                type_name: type_name.into(),
                reason: "type-level inheritance cycle".into(),
            });
        }
        let def = self.object_type(type_name)?;
        let mut eff = EffectiveSchema::default();
        for a in &def.attributes {
            eff.attrs
                .push((a.name.clone(), a.domain.clone(), ItemSource::Local));
        }
        for sc in &def.subclasses {
            eff.subclasses
                .push((sc.name.clone(), sc.element_type.clone(), ItemSource::Local));
        }
        for rel_name in &def.inheritor_in {
            let rel = self.inher_rel_type(rel_name)?;
            let trans_eff = self.effective_schema_rec(&rel.transmitter_type, visiting)?;
            for item in &rel.inheriting {
                if let Some((domain, _)) = trans_eff.attr(item) {
                    if eff.attr(item).is_none() {
                        eff.attrs.push((
                            item.clone(),
                            domain.clone(),
                            ItemSource::Inherited {
                                via_rel: rel_name.clone(),
                                from_type: rel.transmitter_type.clone(),
                            },
                        ));
                    }
                } else if let Some((elem_ty, _)) = trans_eff.subclass(item) {
                    if eff.subclass(item).is_none() {
                        eff.subclasses.push((
                            item.clone(),
                            elem_ty.to_string(),
                            ItemSource::Inherited {
                                via_rel: rel_name.clone(),
                                from_type: rel.transmitter_type.clone(),
                            },
                        ));
                    }
                } else {
                    return Err(CoreError::InvalidSchema {
                        type_name: rel_name.clone(),
                        reason: format!(
                            "inheriting clause names `{item}`, which is neither an attribute \
                             nor a subclass of transmitter type `{}`",
                            rel.transmitter_type
                        ),
                    });
                }
            }
        }
        visiting.remove(type_name);
        Ok(eff)
    }

    /// Validate the whole catalog: every referenced type/domain exists, every
    /// `inheriting:` item resolves, inheritor declarations are consistent,
    /// there are no type-level inheritance cycles, and no local item shadows
    /// an inherited one.
    pub fn validate(&self) -> CoreResult<()> {
        for (name, def) in &self.object_types {
            for sc in &def.subclasses {
                self.object_type(&sc.element_type)
                    .map_err(|_| CoreError::InvalidSchema {
                        type_name: name.clone(),
                        reason: format!(
                            "subclass `{}` references unknown element type `{}`",
                            sc.name, sc.element_type
                        ),
                    })?;
            }
            for sr in &def.subrels {
                self.rel_type(&sr.rel_type)
                    .map_err(|_| CoreError::InvalidSchema {
                        type_name: name.clone(),
                        reason: format!(
                            "subrel `{}` references unknown relationship type `{}`",
                            sr.name, sr.rel_type
                        ),
                    })?;
            }
            for rel_name in &def.inheritor_in {
                // Any type may declare itself an inheritor; a relationship's
                // declared `inheritor:` type is the canonical one, not an
                // exclusive restriction (see §5: WeightCarrying_Structure's
                // inline member types join AllOf_GirderIf as inheritors).
                self.inher_rel_type(rel_name)
                    .map_err(|_| CoreError::InvalidSchema {
                        type_name: name.clone(),
                        reason: format!("inheritor-in references unknown `{rel_name}`"),
                    })?;
            }
            // Computes inherited items, catching cycles and bad `inheriting`
            // clauses.
            self.effective_schema(name)?;
            // No local item may shadow an item flowing in through an
            // `inheritor-in` declaration.
            for rel_name in &def.inheritor_in {
                let rel = self.inher_rel_type(rel_name)?;
                for item in &rel.inheriting {
                    let shadows_attr = def.attributes.iter().any(|a| &a.name == item);
                    let shadows_sub = def.subclasses.iter().any(|sc| &sc.name == item);
                    if shadows_attr || shadows_sub {
                        return Err(CoreError::InvalidSchema {
                            type_name: name.clone(),
                            reason: format!(
                                "local item `{item}` shadows an attribute/subclass inherited \
                                 through `{rel_name}`"
                            ),
                        });
                    }
                }
            }
        }
        for (name, def) in &self.rel_types {
            for p in &def.participants {
                if let Some(t) = &p.required_type {
                    self.object_type(t).map_err(|_| CoreError::InvalidSchema {
                        type_name: name.clone(),
                        reason: format!("participant `{}` references unknown type `{t}`", p.name),
                    })?;
                }
            }
            for sc in &def.subclasses {
                self.object_type(&sc.element_type)
                    .map_err(|_| CoreError::InvalidSchema {
                        type_name: name.clone(),
                        reason: format!(
                            "subclass `{}` references unknown element type `{}`",
                            sc.name, sc.element_type
                        ),
                    })?;
            }
            for sr in &def.subrels {
                self.rel_type(&sr.rel_type)
                    .map_err(|_| CoreError::InvalidSchema {
                        type_name: name.clone(),
                        reason: format!(
                            "subrel `{}` references unknown relationship type `{}`",
                            sr.name, sr.rel_type
                        ),
                    })?;
            }
        }
        for (name, def) in &self.inher_rel_types {
            self.object_type(&def.transmitter_type)
                .map_err(|_| CoreError::InvalidSchema {
                    type_name: name.clone(),
                    reason: format!("unknown transmitter type `{}`", def.transmitter_type),
                })?;
            if let Some(t) = &def.inheritor_type {
                let inheritor = self.object_type(t).map_err(|_| CoreError::InvalidSchema {
                    type_name: name.clone(),
                    reason: format!("unknown inheritor type `{t}`"),
                })?;
                if !inheritor.inheritor_in.iter().any(|r| r == name) {
                    return Err(CoreError::InvalidSchema {
                        type_name: name.clone(),
                        reason: format!(
                            "inheritor type `{t}` does not declare `inheritor-in: {name}`"
                        ),
                    });
                }
            }
            // `inheriting` items must resolve against the transmitter's
            // effective schema.
            let trans_eff = self.effective_schema(&def.transmitter_type)?;
            for item in &def.inheriting {
                if trans_eff.attr(item).is_none() && trans_eff.subclass(item).is_none() {
                    return Err(CoreError::InvalidSchema {
                        type_name: name.clone(),
                        reason: format!(
                            "inheriting clause names unknown item `{item}` of `{}`",
                            def.transmitter_type
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    /// Does `rel_type` let attribute/subclass `item` through? (Permeability.)
    pub fn is_permeable(&self, rel_type: &str, item: &str) -> bool {
        self.inher_rel_types
            .get(rel_type)
            .map(|r| r.inheriting.iter().any(|i| i == item))
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's §4.2 chip-design schema, reduced to what the catalog
    /// needs: GateInterface_I → GateInterface → GateImplementation.
    fn chip_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register_object_type(ObjectTypeDef {
            name: "PinType".into(),
            attributes: vec![
                AttrDef::new("InOut", Domain::Enum(vec!["IN".into(), "OUT".into()])),
                AttrDef::new("PinLocation", Domain::Point),
            ],
            ..Default::default()
        })
        .unwrap();
        c.register_object_type(ObjectTypeDef {
            name: "GateInterface_I".into(),
            subclasses: vec![SubclassSpec {
                name: "Pins".into(),
                element_type: "PinType".into(),
            }],
            ..Default::default()
        })
        .unwrap();
        c.register_inher_rel_type(InherRelTypeDef {
            name: "AllOf_GateInterface_I".into(),
            transmitter_type: "GateInterface_I".into(),
            inheritor_type: None,
            inheriting: vec!["Pins".into()],
            attributes: vec![],
            constraints: vec![],
        })
        .unwrap();
        c.register_object_type(ObjectTypeDef {
            name: "GateInterface".into(),
            inheritor_in: vec!["AllOf_GateInterface_I".into()],
            attributes: vec![
                AttrDef::new("Length", Domain::Int),
                AttrDef::new("Width", Domain::Int),
            ],
            ..Default::default()
        })
        .unwrap();
        c.register_inher_rel_type(InherRelTypeDef {
            name: "AllOf_GateInterface".into(),
            transmitter_type: "GateInterface".into(),
            inheritor_type: None,
            // Re-exports Pins, which GateInterface itself inherits.
            inheriting: vec!["Length".into(), "Width".into(), "Pins".into()],
            attributes: vec![],
            constraints: vec![],
        })
        .unwrap();
        c.register_object_type(ObjectTypeDef {
            name: "GateImplementation".into(),
            inheritor_in: vec!["AllOf_GateInterface".into()],
            attributes: vec![AttrDef::new(
                "Function",
                Domain::MatrixOf(Box::new(Domain::Bool)),
            )],
            ..Default::default()
        })
        .unwrap();
        c
    }

    #[test]
    fn effective_schema_is_transitive() {
        let c = chip_catalog();
        let eff = c.effective_schema("GateImplementation").unwrap();
        // Local:
        assert!(matches!(eff.attr("Function"), Some((_, ItemSource::Local))));
        // Inherited one hop:
        let (_, src) = eff.attr("Length").expect("Length inherited");
        assert_eq!(
            src,
            &ItemSource::Inherited {
                via_rel: "AllOf_GateInterface".into(),
                from_type: "GateInterface".into()
            }
        );
        // Inherited two hops (Pins flows GateInterface_I → GateInterface →
        // GateImplementation):
        let (elem, src) = eff.subclass("Pins").expect("Pins inherited transitively");
        assert_eq!(elem, "PinType");
        assert!(matches!(src, ItemSource::Inherited { .. }));
        assert!(eff.is_inherited("Pins"));
        assert!(!eff.is_inherited("Function"));
    }

    #[test]
    fn validate_accepts_paper_schema() {
        chip_catalog().validate().unwrap();
    }

    #[test]
    fn unknown_transmitter_rejected() {
        let mut c = Catalog::new();
        c.register_inher_rel_type(InherRelTypeDef {
            name: "AllOf_Ghost".into(),
            transmitter_type: "Ghost".into(),
            inheritor_type: None,
            inheriting: vec![],
            attributes: vec![],
            constraints: vec![],
        })
        .unwrap();
        assert!(matches!(c.validate(), Err(CoreError::InvalidSchema { .. })));
    }

    #[test]
    fn inheriting_unknown_item_rejected() {
        let mut c = chip_catalog();
        c.register_inher_rel_type(InherRelTypeDef {
            name: "SomeOf_Gate".into(),
            transmitter_type: "GateInterface".into(),
            inheritor_type: None,
            inheriting: vec!["TimeBehavior".into()], // not on GateInterface
            attributes: vec![],
            constraints: vec![],
        })
        .unwrap();
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("TimeBehavior"), "{err}");
    }

    #[test]
    fn inheritor_type_must_declare_inheritor_in() {
        let mut c = chip_catalog();
        c.register_object_type(ObjectTypeDef {
            name: "Rogue".into(),
            ..Default::default()
        })
        .unwrap();
        c.register_inher_rel_type(InherRelTypeDef {
            name: "AllOf_ForRogue".into(),
            transmitter_type: "GateInterface".into(),
            inheritor_type: Some("Rogue".into()),
            inheriting: vec!["Length".into()],
            attributes: vec![],
            constraints: vec![],
        })
        .unwrap();
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("inheritor-in"), "{err}");
    }

    #[test]
    fn type_level_cycle_detected() {
        let mut c = Catalog::new();
        c.register_object_type(ObjectTypeDef {
            name: "A".into(),
            inheritor_in: vec!["RelB".into()],
            attributes: vec![AttrDef::new("X", Domain::Int)],
            ..Default::default()
        })
        .unwrap();
        c.register_object_type(ObjectTypeDef {
            name: "B".into(),
            inheritor_in: vec!["RelA".into()],
            attributes: vec![AttrDef::new("Y", Domain::Int)],
            ..Default::default()
        })
        .unwrap();
        c.register_inher_rel_type(InherRelTypeDef {
            name: "RelB".into(),
            transmitter_type: "B".into(),
            inheritor_type: None,
            inheriting: vec!["Y".into()],
            attributes: vec![],
            constraints: vec![],
        })
        .unwrap();
        c.register_inher_rel_type(InherRelTypeDef {
            name: "RelA".into(),
            transmitter_type: "A".into(),
            inheritor_type: None,
            inheriting: vec!["X".into()],
            attributes: vec![],
            constraints: vec![],
        })
        .unwrap();
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("cycle"), "{err}");
    }

    #[test]
    fn shadowing_inherited_attr_rejected() {
        let mut c = Catalog::new();
        c.register_object_type(ObjectTypeDef {
            name: "If".into(),
            attributes: vec![AttrDef::new("Length", Domain::Int)],
            ..Default::default()
        })
        .unwrap();
        c.register_inher_rel_type(InherRelTypeDef {
            name: "AllOf_If".into(),
            transmitter_type: "If".into(),
            inheritor_type: None,
            inheriting: vec!["Length".into()],
            attributes: vec![],
            constraints: vec![],
        })
        .unwrap();
        c.register_object_type(ObjectTypeDef {
            name: "Impl".into(),
            inheritor_in: vec!["AllOf_If".into()],
            attributes: vec![AttrDef::new("Length", Domain::Int)], // shadows!
            ..Default::default()
        })
        .unwrap();
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("shadows"), "{err}");
    }

    #[test]
    fn duplicate_names_rejected_across_kinds() {
        let mut c = Catalog::new();
        c.register_object_type(ObjectTypeDef {
            name: "T".into(),
            ..Default::default()
        })
        .unwrap();
        assert!(c
            .register_rel_type(RelTypeDef {
                name: "T".into(),
                ..Default::default()
            })
            .is_err());
        assert!(c
            .register_object_type(ObjectTypeDef {
                name: "T".into(),
                ..Default::default()
            })
            .is_err());
    }

    #[test]
    fn permeability_lookup() {
        let c = chip_catalog();
        assert!(c.is_permeable("AllOf_GateInterface", "Length"));
        assert!(c.is_permeable("AllOf_GateInterface", "Pins"));
        assert!(!c.is_permeable("AllOf_GateInterface", "Function"));
        assert!(!c.is_permeable("NoSuchRel", "Length"));
    }

    #[test]
    fn inline_member_type_registration() {
        let mut c = chip_catalog();
        let name = c
            .register_inline_member_type(
                "GateImplementation",
                "SubGates",
                vec!["AllOf_GateInterface".into()],
                vec![AttrDef::new("GateLocation", Domain::Point)],
            )
            .unwrap();
        assert_eq!(name, "GateImplementation.SubGates");
        let eff = c.effective_schema(&name).unwrap();
        assert!(eff.attr("GateLocation").is_some());
        assert!(eff.attr("Length").is_some(), "inherits interface attrs");
        assert!(eff.subclass("Pins").is_some());
    }

    #[test]
    fn domains_register_and_resolve() {
        let mut c = Catalog::new();
        c.register_domain("IO", Domain::Enum(vec!["IN".into(), "OUT".into()]))
            .unwrap();
        assert!(c.domain("IO").is_ok());
        assert!(c.register_domain("IO", Domain::Int).is_err());
        assert!(c.domain("Nope").is_err());
    }

    #[test]
    fn serde_roundtrip_of_catalog() {
        let c = chip_catalog();
        let json = serde_json::to_string(&c).unwrap();
        let back: Catalog = serde_json::from_str(&json).unwrap();
        back.validate().unwrap();
        assert_eq!(back.object_type_names(), c.object_type_names());
    }
}
