//! Constraint expressions: the IR behind the paper's `constraints:` and
//! `where` clauses, and its evaluator.
//!
//! Covers every constraint form the paper uses:
//!
//! - `count (Pins) = 2 where Pins.InOut = IN` — [`Expr::Count`] with filter,
//! - `Length < 100*Height*Width` — arithmetic over attributes,
//! - `#s in Bolt = 1` — subclass cardinality,
//! - `for (s in Bolt, n in Nut): s.Diameter = n.Diameter` — [`Expr::ForAll`],
//! - `s.Length = n.Length + sum (Bores.Length)` — [`Expr::Sum`] over a path,
//! - `Wire.Pin1 in Pins or Wire.Pin1 in SubGates.Pins` — [`Expr::InClass`]
//!   over (possibly multi-step) class paths.
//!
//! Evaluation is defined against the [`ObjectView`] trait (implemented by
//! `ObjectStore`), so the engine is independently testable and reusable by
//! the version-selection queries.

use serde::{Deserialize, Serialize};

use crate::error::{CoreError, CoreResult};
use crate::surrogate::Surrogate;
use crate::value::Value;

/// Name bound to the element under test inside a `count … where` filter.
pub const ELEM_VAR: &str = "$elem";
/// Name bound to the relationship member inside a subrel `where` clause.
pub const REL_VAR: &str = "$rel";

/// Where a path starts.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum PathRoot {
    /// The object the constraint is being checked on.
    SelfObject,
    /// A variable bound by `for`, a filter, or a subrel clause.
    Var(String),
}

/// A dotted path like `SubGates.Pins` or `s.Diameter`.
///
/// Each segment is resolved against the current object(s) as — in order —
/// an (effective) attribute, an (effective) subclass, or a relationship
/// participant role. Set-valued segments fan out; the final result is the
/// flattened list of reached values (objects appear as [`Value::Ref`]).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct PathExpr {
    /// Root of the path.
    pub root: PathRoot,
    /// Dotted segments.
    pub segments: Vec<String>,
}

impl PathExpr {
    /// Path rooted at the subject object.
    pub fn self_path(segments: &[&str]) -> Self {
        PathExpr {
            root: PathRoot::SelfObject,
            segments: segments.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Path rooted at a bound variable.
    pub fn var_path(var: &str, segments: &[&str]) -> Self {
        PathExpr {
            root: PathRoot::Var(var.to_string()),
            segments: segments.iter().map(|s| s.to_string()).collect(),
        }
    }
}

impl std::fmt::Display for PathExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.root {
            PathRoot::SelfObject => {}
            PathRoot::Var(v) => {
                write!(f, "{v}")?;
                if !self.segments.is_empty() {
                    write!(f, ".")?;
                }
            }
        }
        write!(f, "{}", self.segments.join("."))
    }
}

/// Binary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (integer division; division by zero is an evaluation error)
    Div,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `and`
    And,
    /// `or`
    Or,
}

impl std::fmt::Display for BinOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "and",
            BinOp::Or => "or",
        };
        write!(f, "{s}")
    }
}

/// A constraint expression.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum Expr {
    /// Literal value.
    Lit(Value),
    /// Path lookup; a scalar context requires the path to reach exactly one
    /// value.
    Path(PathExpr),
    /// `count (path)`, optionally with `where <filter>`; inside the filter
    /// the element is bound to [`ELEM_VAR`].
    Count {
        /// The counted collection path.
        path: PathExpr,
        /// Optional element filter.
        filter: Option<Box<Expr>>,
    },
    /// `sum (path)` over integer values.
    Sum(PathExpr),
    /// `min (path)` over integer values (error when empty).
    Min(PathExpr),
    /// `max (path)` over integer values (error when empty).
    Max(PathExpr),
    /// Unary integer negation.
    Neg(Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `for (v1 in path1, v2 in path2): body` — true when the body holds for
    /// every combination of bindings.
    ForAll {
        /// `(variable, class path)` bindings, iterated as a cross product.
        bindings: Vec<(String, PathExpr)>,
        /// The quantified body.
        body: Box<Expr>,
    },
    /// Existential counterpart of [`Expr::ForAll`].
    Exists {
        /// `(variable, class path)` bindings.
        bindings: Vec<(String, PathExpr)>,
        /// The quantified body.
        body: Box<Expr>,
    },
    /// `item in class-path` — membership of an object in a (possibly
    /// multi-step) subclass collection.
    InClass {
        /// The tested object expression.
        item: Box<Expr>,
        /// The collection path.
        class: PathExpr,
    },
}

impl Expr {
    /// Shorthand: integer literal.
    pub fn int(i: i64) -> Expr {
        Expr::Lit(Value::Int(i))
    }

    /// Shorthand: enum literal.
    pub fn lit_enum(e: &str) -> Expr {
        Expr::Lit(Value::Enum(e.to_string()))
    }

    /// Shorthand: binary op.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Shorthand: equality.
    pub fn eq(lhs: Expr, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Eq, lhs, rhs)
    }
}

impl std::fmt::Display for Expr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Path(p) => write!(f, "{p}"),
            Expr::Count { path, filter } => {
                write!(f, "count ({path})")?;
                if let Some(flt) = filter {
                    write!(f, " where {flt}")?;
                }
                Ok(())
            }
            Expr::Sum(p) => write!(f, "sum ({p})"),
            Expr::Min(p) => write!(f, "min ({p})"),
            Expr::Max(p) => write!(f, "max ({p})"),
            Expr::Neg(e) => write!(f, "-({e})"),
            Expr::Not(e) => write!(f, "not ({e})"),
            Expr::Binary { op, lhs, rhs } => write!(f, "({lhs} {op} {rhs})"),
            Expr::ForAll { bindings, body } => {
                let bs: Vec<String> = bindings
                    .iter()
                    .map(|(v, p)| format!("{v} in {p}"))
                    .collect();
                write!(f, "for ({}) : {body}", bs.join(", "))
            }
            Expr::Exists { bindings, body } => {
                let bs: Vec<String> = bindings
                    .iter()
                    .map(|(v, p)| format!("{v} in {p}"))
                    .collect();
                write!(f, "exists ({}) : {body}", bs.join(", "))
            }
            Expr::InClass { item, class } => write!(f, "{item} in {class}"),
        }
    }
}

/// Read access to objects, as needed by the evaluator. Implemented by
/// `ObjectStore` with full value-inheritance resolution, so constraints see
/// inherited data transparently.
pub trait ObjectView {
    /// Effective attribute value (local or inherited); error when the
    /// attribute is not part of the object's effective schema.
    fn view_attr(&self, obj: Surrogate, name: &str) -> CoreResult<Value>;
    /// Effective subclass members (local or inherited).
    fn view_subclass(&self, obj: Surrogate, name: &str) -> CoreResult<Vec<Surrogate>>;
    /// Relationship participants under a role name.
    fn view_participants(&self, obj: Surrogate, role: &str) -> CoreResult<Vec<Surrogate>>;
    /// Does `name` resolve as an attribute on this object?
    fn view_has_attr(&self, obj: Surrogate, name: &str) -> bool;
    /// Does `name` resolve as a subclass on this object?
    fn view_has_subclass(&self, obj: Surrogate, name: &str) -> bool;
    /// Does `name` resolve as a participant role on this object?
    fn view_has_participant(&self, obj: Surrogate, name: &str) -> bool;
}

/// Variable environment for one evaluation.
#[derive(Clone, Debug, Default)]
pub struct Env {
    vars: Vec<(String, Surrogate)>,
}

impl Env {
    /// Empty environment.
    pub fn new() -> Self {
        Env::default()
    }

    /// Environment with one binding.
    pub fn with(var: &str, obj: Surrogate) -> Self {
        Env {
            vars: vec![(var.to_string(), obj)],
        }
    }

    /// Add or shadow a binding.
    pub fn bind(&mut self, var: &str, obj: Surrogate) {
        self.vars.push((var.to_string(), obj));
    }

    /// Remove the most recent binding of `var`.
    pub fn unbind(&mut self) {
        self.vars.pop();
    }

    fn lookup(&self, var: &str) -> Option<Surrogate> {
        self.vars
            .iter()
            .rev()
            .find(|(v, _)| v == var)
            .map(|(_, s)| *s)
    }
}

/// One step of path fan-out: either an object or a plain value.
#[derive(Clone, Debug)]
enum Item {
    Obj(Surrogate),
    Val(Value),
}

/// Evaluate a path to its (flattened) list of reached values.
pub fn eval_path<V: ObjectView>(
    view: &V,
    subject: Surrogate,
    env: &Env,
    path: &PathExpr,
) -> CoreResult<Vec<Value>> {
    let start = match &path.root {
        PathRoot::SelfObject => subject,
        PathRoot::Var(v) => env
            .lookup(v)
            .ok_or_else(|| CoreError::EvalError(format!("unbound variable `{v}`")))?,
    };
    let mut frontier = vec![Item::Obj(start)];
    for seg in &path.segments {
        let mut next = Vec::new();
        for item in frontier {
            match item {
                Item::Obj(obj) => {
                    if view.view_has_attr(obj, seg) {
                        next.push(Item::Val(view.view_attr(obj, seg)?));
                    } else if view.view_has_subclass(obj, seg) {
                        for m in view.view_subclass(obj, seg)? {
                            next.push(Item::Obj(m));
                        }
                    } else if view.view_has_participant(obj, seg) {
                        for m in view.view_participants(obj, seg)? {
                            next.push(Item::Obj(m));
                        }
                    } else {
                        return Err(CoreError::EvalError(format!(
                            "`{seg}` is neither attribute, subclass nor participant of {obj}"
                        )));
                    }
                }
                Item::Val(Value::Record(fields)) => match fields.iter().find(|(n, _)| n == seg) {
                    Some((_, v)) => next.push(Item::Val(v.clone())),
                    None => {
                        return Err(CoreError::EvalError(format!("record has no field `{seg}`")))
                    }
                },
                Item::Val(Value::Set(items)) | Item::Val(Value::List(items)) => {
                    // Fan out into the collection, then resolve the segment
                    // on each element (records or refs).
                    for v in items {
                        match v {
                            Value::Record(fields) => match fields.iter().find(|(n, _)| n == seg) {
                                Some((_, fv)) => next.push(Item::Val(fv.clone())),
                                None => {
                                    return Err(CoreError::EvalError(format!(
                                        "record has no field `{seg}`"
                                    )))
                                }
                            },
                            Value::Ref(s) => {
                                // Defer: resolve segment on the referenced object.
                                let sub = PathExpr {
                                    root: PathRoot::SelfObject,
                                    segments: vec![seg.clone()],
                                };
                                next.extend(
                                    eval_path(view, s, env, &sub)?.into_iter().map(Item::Val),
                                );
                            }
                            other => {
                                return Err(CoreError::EvalError(format!(
                                    "cannot navigate `{seg}` into {other}"
                                )))
                            }
                        }
                    }
                }
                Item::Val(Value::Ref(s)) => {
                    let sub = PathExpr {
                        root: PathRoot::SelfObject,
                        segments: vec![seg.clone()],
                    };
                    next.extend(eval_path(view, s, env, &sub)?.into_iter().map(Item::Val));
                }
                Item::Val(other) => {
                    return Err(CoreError::EvalError(format!(
                        "cannot navigate `{seg}` into {other}"
                    )));
                }
            }
        }
        frontier = next;
    }
    Ok(frontier
        .into_iter()
        .map(|i| match i {
            Item::Obj(s) => Value::Ref(s),
            Item::Val(v) => v,
        })
        .collect())
}

/// Resolve a path to the list of *objects* it reaches (for `for` bindings
/// and `in` class paths). Values that are not refs are rejected.
pub fn eval_path_objects<V: ObjectView>(
    view: &V,
    subject: Surrogate,
    env: &Env,
    path: &PathExpr,
) -> CoreResult<Vec<Surrogate>> {
    eval_path(view, subject, env, path)?
        .into_iter()
        .map(|v| {
            v.as_ref_surrogate().ok_or_else(|| {
                CoreError::EvalError(format!("path {path} reached a non-object value"))
            })
        })
        .collect()
}

/// Evaluate `expr` on `subject` with bindings `env`.
pub fn eval<V: ObjectView>(
    view: &V,
    subject: Surrogate,
    env: &mut Env,
    expr: &Expr,
) -> CoreResult<Value> {
    match expr {
        Expr::Lit(v) => Ok(v.clone()),
        Expr::Path(p) => {
            let mut vals = eval_path(view, subject, env, p)?;
            match vals.len() {
                1 => Ok(vals.pop().unwrap()),
                0 => Ok(Value::Missing),
                n => Err(CoreError::EvalError(format!(
                    "path {p} is set-valued ({n} results) in a scalar context"
                ))),
            }
        }
        Expr::Count { path, filter } => {
            let items = flatten_collection(eval_path(view, subject, env, path)?);
            match filter {
                None => Ok(Value::Int(items.len() as i64)),
                Some(f) => {
                    let mut n = 0i64;
                    for item in items {
                        match item {
                            Value::Ref(s) => {
                                env.bind(ELEM_VAR, s);
                                let keep = eval(view, subject, env, f)?;
                                env.unbind();
                                if keep.as_bool().ok_or_else(|| {
                                    CoreError::EvalError("filter must be boolean".into())
                                })? {
                                    n += 1;
                                }
                            }
                            // Records (attribute-level sets like SimpleGate's
                            // Pins) are filtered structurally: the filter must
                            // be a field comparison rewritten by the caller to
                            // use ELEM_VAR; without an object to bind we
                            // evaluate against a synthetic record view.
                            Value::Record(fields) => {
                                if record_filter_matches(view, subject, env, f, &fields)? {
                                    n += 1;
                                }
                            }
                            other => {
                                return Err(CoreError::EvalError(format!(
                                    "cannot filter over {other}"
                                )))
                            }
                        }
                    }
                    Ok(Value::Int(n))
                }
            }
        }
        Expr::Sum(p) => fold_ints(view, subject, env, p, 0, |acc, v| acc + v),
        Expr::Min(p) => fold_nonempty(view, subject, env, p, i64::min, "min"),
        Expr::Max(p) => fold_nonempty(view, subject, env, p, i64::max, "max"),
        Expr::Neg(e) => {
            let v = eval(view, subject, env, e)?;
            let i = v
                .as_int()
                .ok_or_else(|| CoreError::EvalError(format!("cannot negate {v}")))?;
            Ok(Value::Int(-i))
        }
        Expr::Not(e) => {
            let v = eval(view, subject, env, e)?;
            let b = v
                .as_bool()
                .ok_or_else(|| CoreError::EvalError(format!("`not` needs a boolean, got {v}")))?;
            Ok(Value::Bool(!b))
        }
        Expr::Binary { op, lhs, rhs } => {
            // Short-circuit logical ops.
            if matches!(op, BinOp::And | BinOp::Or) {
                let l = eval(view, subject, env, lhs)?
                    .as_bool()
                    .ok_or_else(|| CoreError::EvalError("`and`/`or` need booleans".into()))?;
                let skip = match op {
                    BinOp::And => !l,
                    BinOp::Or => l,
                    _ => unreachable!(),
                };
                if skip {
                    return Ok(Value::Bool(l));
                }
                let r = eval(view, subject, env, rhs)?
                    .as_bool()
                    .ok_or_else(|| CoreError::EvalError("`and`/`or` need booleans".into()))?;
                return Ok(Value::Bool(r));
            }
            let l = eval(view, subject, env, lhs)?;
            let r = eval(view, subject, env, rhs)?;
            apply_binop(*op, l, r)
        }
        Expr::ForAll { bindings, body } => quantify(view, subject, env, bindings, body, true),
        Expr::Exists { bindings, body } => quantify(view, subject, env, bindings, body, false),
        Expr::InClass { item, class } => {
            let v = eval(view, subject, env, item)?;
            let s = v.as_ref_surrogate().ok_or_else(|| {
                CoreError::EvalError(format!("`in` needs an object reference, got {v}"))
            })?;
            let members = eval_path_objects(view, subject, env, class)?;
            Ok(Value::Bool(members.contains(&s)))
        }
    }
}

/// Evaluate a filter against a record value (attribute-level collections):
/// field references `$elem.F` are rewritten into the record's fields.
fn record_filter_matches<V: ObjectView>(
    view: &V,
    subject: Surrogate,
    env: &Env,
    filter: &Expr,
    fields: &[(String, Value)],
) -> CoreResult<bool> {
    // Substitute VarPath(ELEM_VAR, [f]) with the record field value, then eval.
    fn subst(e: &Expr, fields: &[(String, Value)]) -> CoreResult<Expr> {
        Ok(match e {
            Expr::Path(PathExpr {
                root: PathRoot::Var(v),
                segments,
            }) if v == ELEM_VAR => {
                if segments.len() != 1 {
                    return Err(CoreError::EvalError(
                        "record filters support single-field access".into(),
                    ));
                }
                let val = fields
                    .iter()
                    .find(|(n, _)| n == &segments[0])
                    .map(|(_, v)| v.clone())
                    .unwrap_or(Value::Missing);
                Expr::Lit(val)
            }
            Expr::Binary { op, lhs, rhs } => Expr::Binary {
                op: *op,
                lhs: Box::new(subst(lhs, fields)?),
                rhs: Box::new(subst(rhs, fields)?),
            },
            Expr::Not(inner) => Expr::Not(Box::new(subst(inner, fields)?)),
            other => other.clone(),
        })
    }
    let rewritten = subst(filter, fields)?;
    let mut env2 = env.clone();
    eval(view, subject, &mut env2, &rewritten)?
        .as_bool()
        .ok_or_else(|| CoreError::EvalError("filter must be boolean".into()))
}

/// `count (Pins)` over an attribute-level collection (e.g. `SimpleGate`'s
/// `set-of` record attribute) counts the *elements*: a path ending in a
/// single set/list value fans out into it.
fn flatten_collection(items: Vec<Value>) -> Vec<Value> {
    if items.len() == 1 {
        match items.into_iter().next().unwrap() {
            Value::Set(inner) | Value::List(inner) => inner,
            other => vec![other],
        }
    } else {
        items
    }
}

fn fold_ints<V: ObjectView>(
    view: &V,
    subject: Surrogate,
    env: &Env,
    path: &PathExpr,
    init: i64,
    f: impl Fn(i64, i64) -> i64,
) -> CoreResult<Value> {
    let mut acc = init;
    for v in flatten_collection(eval_path(view, subject, env, path)?) {
        let i = v
            .as_int()
            .ok_or_else(|| CoreError::EvalError(format!("aggregate over non-integer {v}")))?;
        acc = f(acc, i);
    }
    Ok(Value::Int(acc))
}

fn fold_nonempty<V: ObjectView>(
    view: &V,
    subject: Surrogate,
    env: &Env,
    path: &PathExpr,
    f: impl Fn(i64, i64) -> i64,
    what: &str,
) -> CoreResult<Value> {
    let vals = flatten_collection(eval_path(view, subject, env, path)?);
    if vals.is_empty() {
        return Err(CoreError::EvalError(format!(
            "{what} over empty path {path}"
        )));
    }
    let mut acc: Option<i64> = None;
    for v in vals {
        let i = v
            .as_int()
            .ok_or_else(|| CoreError::EvalError(format!("aggregate over non-integer {v}")))?;
        acc = Some(match acc {
            None => i,
            Some(a) => f(a, i),
        });
    }
    Ok(Value::Int(acc.unwrap()))
}

fn apply_binop(op: BinOp, l: Value, r: Value) -> CoreResult<Value> {
    use BinOp::*;
    match op {
        Add | Sub | Mul | Div => {
            let (a, b) = match (l.as_int(), r.as_int()) {
                (Some(a), Some(b)) => (a, b),
                _ => {
                    return Err(CoreError::EvalError(format!(
                        "arithmetic needs integers, got {l} {op} {r}"
                    )))
                }
            };
            let v = match op {
                Add => a.checked_add(b),
                Sub => a.checked_sub(b),
                Mul => a.checked_mul(b),
                Div => {
                    if b == 0 {
                        return Err(CoreError::EvalError("division by zero".into()));
                    }
                    a.checked_div(b)
                }
                _ => unreachable!(),
            };
            v.map(Value::Int)
                .ok_or_else(|| CoreError::EvalError("integer overflow".into()))
        }
        Eq => Ok(Value::Bool(l == r)),
        Ne => Ok(Value::Bool(l != r)),
        Lt | Le | Gt | Ge => {
            let ord = match (&l, &r) {
                (Value::Int(a), Value::Int(b)) => a.cmp(b),
                (Value::Str(a), Value::Str(b)) => a.cmp(b),
                (Value::Real(a), Value::Real(b)) => a.total_cmp(b),
                _ => return Err(CoreError::EvalError(format!("cannot order {l} {op} {r}"))),
            };
            let b = match op {
                Lt => ord.is_lt(),
                Le => ord.is_le(),
                Gt => ord.is_gt(),
                Ge => ord.is_ge(),
                _ => unreachable!(),
            };
            Ok(Value::Bool(b))
        }
        And | Or => unreachable!("short-circuited by caller"),
    }
}

fn quantify<V: ObjectView>(
    view: &V,
    subject: Surrogate,
    env: &mut Env,
    bindings: &[(String, PathExpr)],
    body: &Expr,
    universal: bool,
) -> CoreResult<Value> {
    fn rec<V: ObjectView>(
        view: &V,
        subject: Surrogate,
        env: &mut Env,
        bindings: &[(String, PathExpr)],
        body: &Expr,
        universal: bool,
    ) -> CoreResult<bool> {
        match bindings.split_first() {
            None => {
                let v = eval(view, subject, env, body)?;
                v.as_bool()
                    .ok_or_else(|| CoreError::EvalError("quantifier body must be boolean".into()))
            }
            Some(((var, path), rest)) => {
                let members = eval_path_objects(view, subject, env, path)?;
                if universal {
                    for m in members {
                        env.bind(var, m);
                        let ok = rec(view, subject, env, rest, body, universal)?;
                        env.unbind();
                        if !ok {
                            return Ok(false);
                        }
                    }
                    Ok(true)
                } else {
                    for m in members {
                        env.bind(var, m);
                        let ok = rec(view, subject, env, rest, body, universal)?;
                        env.unbind();
                        if ok {
                            return Ok(true);
                        }
                    }
                    Ok(false)
                }
            }
        }
    }
    rec(view, subject, env, bindings, body, universal).map(Value::Bool)
}

#[cfg(test)]
pub(crate) mod mock {
    //! A tiny hand-rolled [`ObjectView`] for evaluator unit tests.

    use std::collections::HashMap;

    use super::*;

    #[derive(Default)]
    pub struct MockView {
        pub attrs: HashMap<(Surrogate, String), Value>,
        pub subclasses: HashMap<(Surrogate, String), Vec<Surrogate>>,
        pub participants: HashMap<(Surrogate, String), Vec<Surrogate>>,
    }

    impl MockView {
        pub fn attr(&mut self, o: Surrogate, n: &str, v: Value) {
            self.attrs.insert((o, n.to_string()), v);
        }
        pub fn subclass(&mut self, o: Surrogate, n: &str, m: Vec<Surrogate>) {
            self.subclasses.insert((o, n.to_string()), m);
        }
        pub fn participant(&mut self, o: Surrogate, n: &str, m: Vec<Surrogate>) {
            self.participants.insert((o, n.to_string()), m);
        }
    }

    impl ObjectView for MockView {
        fn view_attr(&self, obj: Surrogate, name: &str) -> CoreResult<Value> {
            self.attrs
                .get(&(obj, name.to_string()))
                .cloned()
                .ok_or_else(|| CoreError::NoSuchAttribute {
                    object: obj,
                    attr: name.into(),
                })
        }
        fn view_subclass(&self, obj: Surrogate, name: &str) -> CoreResult<Vec<Surrogate>> {
            self.subclasses
                .get(&(obj, name.to_string()))
                .cloned()
                .ok_or_else(|| CoreError::NoSuchSubclass {
                    object: obj,
                    subclass: name.into(),
                })
        }
        fn view_participants(&self, obj: Surrogate, role: &str) -> CoreResult<Vec<Surrogate>> {
            self.participants
                .get(&(obj, role.to_string()))
                .cloned()
                .ok_or_else(|| {
                    CoreError::EvalError(format!("no participant role `{role}` on {obj}"))
                })
        }
        fn view_has_attr(&self, obj: Surrogate, name: &str) -> bool {
            self.attrs.contains_key(&(obj, name.to_string()))
        }
        fn view_has_subclass(&self, obj: Surrogate, name: &str) -> bool {
            self.subclasses.contains_key(&(obj, name.to_string()))
        }
        fn view_has_participant(&self, obj: Surrogate, name: &str) -> bool {
            self.participants.contains_key(&(obj, name.to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::mock::MockView;
    use super::*;

    const S: Surrogate = Surrogate(1);

    fn ev(view: &MockView, e: &Expr) -> Value {
        eval(view, S, &mut Env::new(), e).unwrap()
    }

    #[test]
    fn literals_and_arithmetic() {
        let v = MockView::default();
        // Length < 100 * Height * Width  (paper §5 GirderInterface)
        let e = Expr::bin(
            BinOp::Mul,
            Expr::bin(BinOp::Mul, Expr::int(100), Expr::int(2)),
            Expr::int(3),
        );
        assert_eq!(ev(&v, &e), Value::Int(600));
        let div = Expr::bin(BinOp::Div, Expr::int(7), Expr::int(2));
        assert_eq!(ev(&v, &div), Value::Int(3));
        let by_zero = Expr::bin(BinOp::Div, Expr::int(7), Expr::int(0));
        assert!(eval(&v, S, &mut Env::new(), &by_zero).is_err());
    }

    #[test]
    fn attribute_paths() {
        let mut v = MockView::default();
        v.attr(S, "Length", Value::Int(10));
        v.attr(S, "Height", Value::Int(2));
        v.attr(S, "Width", Value::Int(3));
        // Length < 100*Height*Width
        let e = Expr::bin(
            BinOp::Lt,
            Expr::Path(PathExpr::self_path(&["Length"])),
            Expr::bin(
                BinOp::Mul,
                Expr::bin(
                    BinOp::Mul,
                    Expr::int(100),
                    Expr::Path(PathExpr::self_path(&["Height"])),
                ),
                Expr::Path(PathExpr::self_path(&["Width"])),
            ),
        );
        assert_eq!(ev(&v, &e), Value::Bool(true));
    }

    #[test]
    fn record_field_path() {
        let mut v = MockView::default();
        v.attr(
            S,
            "Area",
            Value::record(vec![
                ("Length".into(), Value::Int(8)),
                ("Width".into(), Value::Int(4)),
            ]),
        );
        let e = Expr::Path(PathExpr::self_path(&["Area", "Width"]));
        assert_eq!(ev(&v, &e), Value::Int(4));
        let missing = Expr::Path(PathExpr::self_path(&["Area", "Depth"]));
        assert!(eval(&v, S, &mut Env::new(), &missing).is_err());
    }

    #[test]
    fn count_over_subclass_with_object_filter() {
        let mut v = MockView::default();
        let pins = vec![Surrogate(10), Surrogate(11), Surrogate(12)];
        v.subclass(S, "Pins", pins.clone());
        v.attr(Surrogate(10), "InOut", Value::Enum("IN".into()));
        v.attr(Surrogate(11), "InOut", Value::Enum("IN".into()));
        v.attr(Surrogate(12), "InOut", Value::Enum("OUT".into()));
        // count (Pins) = 2 where Pins.InOut = IN
        let e = Expr::eq(
            Expr::Count {
                path: PathExpr::self_path(&["Pins"]),
                filter: Some(Box::new(Expr::eq(
                    Expr::Path(PathExpr::var_path(ELEM_VAR, &["InOut"])),
                    Expr::lit_enum("IN"),
                ))),
            },
            Expr::int(2),
        );
        assert_eq!(ev(&v, &e), Value::Bool(true));
    }

    #[test]
    fn count_over_record_set_attribute() {
        // SimpleGate represents pins as a set-of record *attribute* (§3).
        let mut v = MockView::default();
        let pin = |id: i64, io: &str| {
            Value::record(vec![
                ("PinId".into(), Value::Int(id)),
                ("InOut".into(), Value::Enum(io.into())),
            ])
        };
        v.attr(
            S,
            "Pins",
            Value::set(vec![pin(1, "IN"), pin(2, "IN"), pin(3, "OUT")]),
        );
        // The path fans out into the set; records are filtered structurally.
        let count_in = Expr::Count {
            path: PathExpr::self_path(&["Pins"]),
            filter: Some(Box::new(Expr::eq(
                Expr::Path(PathExpr::var_path(ELEM_VAR, &["InOut"])),
                Expr::lit_enum("IN"),
            ))),
        };
        // Note: the unfiltered count counts set elements.
        let e = Expr::eq(count_in, Expr::int(2));
        assert_eq!(ev(&v, &e), Value::Bool(true));
    }

    #[test]
    fn sum_over_two_step_path() {
        // s.Length = n.Length + sum (Bores.Length)  (paper §5 ScrewingType)
        let mut v = MockView::default();
        v.subclass(S, "Bores", vec![Surrogate(20), Surrogate(21)]);
        v.attr(Surrogate(20), "Length", Value::Int(5));
        v.attr(Surrogate(21), "Length", Value::Int(7));
        let e = Expr::Sum(PathExpr::self_path(&["Bores", "Length"]));
        assert_eq!(ev(&v, &e), Value::Int(12));
    }

    #[test]
    fn min_max_and_empty_error() {
        let mut v = MockView::default();
        v.subclass(S, "Bores", vec![Surrogate(20), Surrogate(21)]);
        v.subclass(S, "Empty", vec![]);
        v.attr(Surrogate(20), "D", Value::Int(5));
        v.attr(Surrogate(21), "D", Value::Int(7));
        assert_eq!(
            ev(&v, &Expr::Min(PathExpr::self_path(&["Bores", "D"]))),
            Value::Int(5)
        );
        assert_eq!(
            ev(&v, &Expr::Max(PathExpr::self_path(&["Bores", "D"]))),
            Value::Int(7)
        );
        assert!(eval(
            &v,
            S,
            &mut Env::new(),
            &Expr::Min(PathExpr::self_path(&["Empty", "D"]))
        )
        .is_err());
        assert_eq!(
            ev(&v, &Expr::Sum(PathExpr::self_path(&["Empty", "D"]))),
            Value::Int(0)
        );
    }

    #[test]
    fn forall_cross_product() {
        // for (s in Bolt, n in Nut): s.Diameter = n.Diameter
        let mut v = MockView::default();
        v.subclass(S, "Bolt", vec![Surrogate(30)]);
        v.subclass(S, "Nut", vec![Surrogate(40)]);
        v.attr(Surrogate(30), "Diameter", Value::Int(8));
        v.attr(Surrogate(40), "Diameter", Value::Int(8));
        let e = Expr::ForAll {
            bindings: vec![
                ("s".into(), PathExpr::self_path(&["Bolt"])),
                ("n".into(), PathExpr::self_path(&["Nut"])),
            ],
            body: Box::new(Expr::eq(
                Expr::Path(PathExpr::var_path("s", &["Diameter"])),
                Expr::Path(PathExpr::var_path("n", &["Diameter"])),
            )),
        };
        assert_eq!(ev(&v, &e), Value::Bool(true));
        // Break it.
        v.attr(Surrogate(40), "Diameter", Value::Int(9));
        assert_eq!(ev(&v, &e), Value::Bool(false));
    }

    #[test]
    fn forall_over_empty_is_true_exists_false() {
        let mut v = MockView::default();
        v.subclass(S, "Bolt", vec![]);
        let body = Box::new(Expr::Lit(Value::Bool(false)));
        let fa = Expr::ForAll {
            bindings: vec![("s".into(), PathExpr::self_path(&["Bolt"]))],
            body: body.clone(),
        };
        let ex = Expr::Exists {
            bindings: vec![("s".into(), PathExpr::self_path(&["Bolt"]))],
            body,
        };
        assert_eq!(ev(&v, &fa), Value::Bool(true));
        assert_eq!(ev(&v, &ex), Value::Bool(false));
    }

    #[test]
    fn nested_forall_with_outer_binding() {
        // for s in Bolt: for b in Bores: s.Diameter <= b.Diameter
        let mut v = MockView::default();
        v.subclass(S, "Bolt", vec![Surrogate(30)]);
        v.subclass(S, "Bores", vec![Surrogate(20), Surrogate(21)]);
        v.attr(Surrogate(30), "Diameter", Value::Int(8));
        v.attr(Surrogate(20), "Diameter", Value::Int(8));
        v.attr(Surrogate(21), "Diameter", Value::Int(10));
        let e = Expr::ForAll {
            bindings: vec![("s".into(), PathExpr::self_path(&["Bolt"]))],
            body: Box::new(Expr::ForAll {
                bindings: vec![("b".into(), PathExpr::self_path(&["Bores"]))],
                body: Box::new(Expr::bin(
                    BinOp::Le,
                    Expr::Path(PathExpr::var_path("s", &["Diameter"])),
                    Expr::Path(PathExpr::var_path("b", &["Diameter"])),
                )),
            }),
        };
        assert_eq!(ev(&v, &e), Value::Bool(true));
        v.attr(Surrogate(21), "Diameter", Value::Int(6));
        assert_eq!(ev(&v, &e), Value::Bool(false));
    }

    #[test]
    fn membership_across_multi_step_class_path() {
        // Wire.Pin1 in Pins or Wire.Pin1 in SubGates.Pins  (paper §3 Gate)
        let mut v = MockView::default();
        let wire = Surrogate(50);
        let pin_own = Surrogate(60);
        let pin_sub = Surrogate(61);
        v.subclass(S, "Pins", vec![pin_own]);
        v.subclass(S, "SubGates", vec![Surrogate(70)]);
        v.subclass(Surrogate(70), "Pins", vec![pin_sub]);
        v.participant(wire, "Pin1", vec![pin_sub]);
        let mut env = Env::with("Wire", wire);
        let e = Expr::bin(
            BinOp::Or,
            Expr::InClass {
                item: Box::new(Expr::Path(PathExpr::var_path("Wire", &["Pin1"]))),
                class: PathExpr::self_path(&["Pins"]),
            },
            Expr::InClass {
                item: Box::new(Expr::Path(PathExpr::var_path("Wire", &["Pin1"]))),
                class: PathExpr::self_path(&["SubGates", "Pins"]),
            },
        );
        assert_eq!(eval(&v, S, &mut env, &e).unwrap(), Value::Bool(true));
        // A pin belonging to neither class fails.
        v.participant(wire, "Pin1", vec![Surrogate(99)]);
        assert_eq!(eval(&v, S, &mut env, &e).unwrap(), Value::Bool(false));
    }

    #[test]
    fn short_circuit_avoids_rhs_errors() {
        let mut v = MockView::default();
        v.attr(S, "Flag", Value::Bool(true));
        // RHS would error (unknown attr) but must not be evaluated.
        let e = Expr::bin(
            BinOp::Or,
            Expr::Path(PathExpr::self_path(&["Flag"])),
            Expr::Path(PathExpr::self_path(&["DoesNotExist"])),
        );
        assert_eq!(ev(&v, &e), Value::Bool(true));
    }

    #[test]
    fn unbound_variable_is_an_error() {
        let v = MockView::default();
        let e = Expr::Path(PathExpr::var_path("ghost", &["X"]));
        let err = eval(&v, S, &mut Env::new(), &e).unwrap_err();
        assert!(matches!(err, CoreError::EvalError(_)));
    }

    #[test]
    fn display_renders_paper_like_syntax() {
        let e = Expr::eq(
            Expr::Count {
                path: PathExpr::self_path(&["Pins"]),
                filter: Some(Box::new(Expr::eq(
                    Expr::Path(PathExpr::var_path(ELEM_VAR, &["InOut"])),
                    Expr::lit_enum("IN"),
                ))),
            },
            Expr::int(2),
        );
        let s = e.to_string();
        assert!(s.contains("count (Pins)"), "{s}");
        assert!(s.contains("where"), "{s}");
    }

    #[test]
    fn overflow_is_an_error_not_a_panic() {
        let v = MockView::default();
        let e = Expr::bin(BinOp::Mul, Expr::int(i64::MAX), Expr::int(2));
        assert!(matches!(
            eval(&v, S, &mut Env::new(), &e),
            Err(CoreError::EvalError(_))
        ));
    }
}

#[cfg(test)]
mod property {
    use super::mock::MockView;
    use super::*;
    use proptest::prelude::*;

    /// Strategy over arbitrary (often ill-typed) expressions: evaluation
    /// must return Ok or Err but never panic, hang, or overflow the stack.
    fn expr_strategy() -> impl Strategy<Value = Expr> {
        let leaf = prop_oneof![
            (-100i64..100).prop_map(Expr::int),
            Just(Expr::Lit(Value::Bool(true))),
            Just(Expr::Lit(Value::Bool(false))),
            Just(Expr::lit_enum("IN")),
            Just(Expr::Path(PathExpr::self_path(&["A"]))),
            Just(Expr::Path(PathExpr::self_path(&["Kids"]))),
            Just(Expr::Path(PathExpr::self_path(&["Kids", "A"]))),
            Just(Expr::Path(PathExpr::var_path("v", &["A"]))),
            Just(Expr::Count {
                path: PathExpr::self_path(&["Kids"]),
                filter: None
            }),
            Just(Expr::Sum(PathExpr::self_path(&["Kids", "A"]))),
            Just(Expr::Min(PathExpr::self_path(&["Kids", "A"]))),
        ];
        leaf.prop_recursive(4, 64, 4, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone(), any::<u8>()).prop_map(|(l, r, op)| {
                    let ops = [
                        BinOp::Add,
                        BinOp::Sub,
                        BinOp::Mul,
                        BinOp::Div,
                        BinOp::Eq,
                        BinOp::Lt,
                        BinOp::And,
                        BinOp::Or,
                    ];
                    Expr::bin(ops[op as usize % ops.len()], l, r)
                }),
                inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
                inner.clone().prop_map(|e| Expr::Neg(Box::new(e))),
                inner.clone().prop_map(|e| Expr::ForAll {
                    bindings: vec![("v".into(), PathExpr::self_path(&["Kids"]))],
                    body: Box::new(e),
                }),
                inner.clone().prop_map(|e| Expr::Exists {
                    bindings: vec![("v".into(), PathExpr::self_path(&["Kids"]))],
                    body: Box::new(e),
                }),
                inner.prop_map(|e| Expr::InClass {
                    item: Box::new(e),
                    class: PathExpr::self_path(&["Kids"]),
                }),
            ]
        })
    }

    fn view() -> MockView {
        let mut v = MockView::default();
        v.attr(Surrogate(1), "A", Value::Int(3));
        v.subclass(Surrogate(1), "Kids", vec![Surrogate(2), Surrogate(3)]);
        v.attr(Surrogate(2), "A", Value::Int(1));
        v.attr(Surrogate(3), "A", Value::Int(2));
        v.subclass(Surrogate(2), "Kids", vec![]);
        v.subclass(Surrogate(3), "Kids", vec![]);
        v
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]
        #[test]
        fn evaluation_is_total(e in expr_strategy()) {
            let v = view();
            let _ = eval(&v, Surrogate(1), &mut Env::new(), &e);
        }

        #[test]
        fn display_never_panics(e in expr_strategy()) {
            let _ = e.to_string();
        }
    }
}
