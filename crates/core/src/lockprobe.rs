//! Instrumented acquisition of the [`crate::shared::SharedStore`] lock.
//!
//! E12/E13 could only *infer* that the global store `RwLock` is the
//! server's bottleneck; this module makes the lock observable. Every
//! [`SharedStore`](crate::shared::SharedStore) guard acquisition is routed
//! through [`probed_read`] / [`probed_write`], which record — per access
//! mode — wait-time and hold-time histograms, acquisition and contended
//! counters, and a live waiters gauge, and open a `core.storelock` trace
//! span so contention shows up inside request trace trees.
//!
//! Cost model (the probes must not become the contention they measure):
//!
//! - metrics disabled ([`ccdb_obs::enabled`] is false): plain lock call,
//!   zero probe work;
//! - uncontended acquisition (the `try_` fast path succeeds): two relaxed
//!   counter adds; the clock is only read on a 1-in-[`SAMPLE_INTERVAL`]
//!   per-thread sample, so the shared-read hot path almost never pays for
//!   `Instant::now`;
//! - contended acquisition (the `try_` fast path fails): always fully
//!   clocked — contended waits are exactly the events worth measuring, and
//!   the blocking acquire dwarfs the probe cost. The wait is also charged
//!   to a per-thread accumulator ([`thread_lock_wait_ns`]) that the server
//!   reads around a request handler to attribute its store-lock phase.

use std::cell::Cell;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use ccdb_obs::metrics::LATENCY_BUCKETS_NS;
use ccdb_obs::trace::{span, SpanGuard};
use ccdb_obs::{Counter, Gauge, Histogram};
use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Uncontended acquisitions between clocked samples on each thread.
pub const SAMPLE_INTERVAL: u64 = 256;

/// Access mode of one lock acquisition.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LockMode {
    /// Shared (read) access.
    Shared,
    /// Exclusive (write) access.
    Exclusive,
}

impl LockMode {
    /// Metric-label spelling of the mode.
    pub fn name(self) -> &'static str {
        match self {
            LockMode::Shared => "shared",
            LockMode::Exclusive => "exclusive",
        }
    }
}

pub(crate) struct LockProbeMetrics {
    /// `ccdb_core_storelock_shared_wait_ns` / `..._exclusive_wait_ns`
    pub wait: [Arc<Histogram>; 2],
    /// `ccdb_core_storelock_shared_hold_ns` / `..._exclusive_hold_ns`
    pub hold: [Arc<Histogram>; 2],
    /// `ccdb_core_storelock_{shared,exclusive}_acquisitions_total`
    pub acquisitions: [Arc<Counter>; 2],
    /// `ccdb_core_storelock_{shared,exclusive}_contended_total` — the
    /// try-lock fast path failed and the caller blocked.
    pub contended: [Arc<Counter>; 2],
    /// `ccdb_core_storelock_waiters` — threads currently blocked on the
    /// store lock.
    pub waiters: Arc<Gauge>,
}

fn idx(mode: LockMode) -> usize {
    match mode {
        LockMode::Shared => 0,
        LockMode::Exclusive => 1,
    }
}

pub(crate) fn lockprobe_metrics() -> &'static LockProbeMetrics {
    static METRICS: OnceLock<LockProbeMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = ccdb_obs::global();
        LockProbeMetrics {
            wait: [
                r.histogram("ccdb_core_storelock_shared_wait_ns", LATENCY_BUCKETS_NS),
                r.histogram("ccdb_core_storelock_exclusive_wait_ns", LATENCY_BUCKETS_NS),
            ],
            hold: [
                r.histogram("ccdb_core_storelock_shared_hold_ns", LATENCY_BUCKETS_NS),
                r.histogram("ccdb_core_storelock_exclusive_hold_ns", LATENCY_BUCKETS_NS),
            ],
            acquisitions: [
                r.counter("ccdb_core_storelock_shared_acquisitions_total"),
                r.counter("ccdb_core_storelock_exclusive_acquisitions_total"),
            ],
            contended: [
                r.counter("ccdb_core_storelock_shared_contended_total"),
                r.counter("ccdb_core_storelock_exclusive_contended_total"),
            ],
            waiters: r.gauge("ccdb_core_storelock_waiters"),
        }
    })
}

thread_local! {
    /// Per-thread acquisition tick driving the uncontended clock sampling.
    static SAMPLE_TICK: Cell<u64> = const { Cell::new(0) };
    /// Nanoseconds this thread has spent blocked on *exclusive* (write /
    /// transaction) lock acquisitions.
    static LOCK_WAIT_NS: Cell<u64> = const { Cell::new(0) };
    /// Nanoseconds this thread has spent blocked acquiring a read snapshot
    /// (shared-mode acquisitions — under MVCC these are snapshot pins).
    static SNAPSHOT_WAIT_NS: Cell<u64> = const { Cell::new(0) };
}

/// Total time (ns) the calling thread has spent *blocked* on contended
/// exclusive store-lock or transaction-lock acquisitions, monotonically
/// accumulating for the thread's life. Read it before and after a unit of
/// work (the server does this per request) and the delta is that work's
/// write/txn-lock wait — the `lock` phase of the request timeline.
pub fn thread_lock_wait_ns() -> u64 {
    LOCK_WAIT_NS.with(Cell::get)
}

/// Total time (ns) the calling thread has spent *blocked* acquiring read
/// snapshots (shared-mode acquisitions). Under MVCC this is the
/// snapshot-pin wait — the `snapshot` phase of the request timeline — and
/// stays ~0 because the publish critical section is a pointer swap.
pub fn thread_snapshot_wait_ns() -> u64 {
    SNAPSHOT_WAIT_NS.with(Cell::get)
}

/// Charge externally-measured exclusive-lock wait (e.g. a `ccdb-txn`
/// lock-manager acquisition made on behalf of a request) to the calling
/// thread's [`thread_lock_wait_ns`] accumulator, so the server's phase
/// decomposition attributes it to the `lock` phase.
pub fn charge_exclusive_wait(ns: u64) {
    LOCK_WAIT_NS.with(|c| c.set(c.get().saturating_add(ns)));
}

fn charge_thread_wait(mode: LockMode, ns: u64) {
    match mode {
        LockMode::Shared => SNAPSHOT_WAIT_NS.with(|c| c.set(c.get().saturating_add(ns))),
        LockMode::Exclusive => LOCK_WAIT_NS.with(|c| c.set(c.get().saturating_add(ns))),
    }
}

/// True on 1 of every [`SAMPLE_INTERVAL`] calls per thread.
fn sample_this_acquisition() -> bool {
    SAMPLE_TICK.with(|t| {
        let n = t.get();
        t.set(n.wrapping_add(1));
        n % SAMPLE_INTERVAL == 0
    })
}

/// A lock guard plus the probe state that finishes the measurement when the
/// guard is released. Derefs to the protected value.
pub(crate) struct Probed<G> {
    // Declaration order is load-bearing: the lock guard must drop *before*
    // the probe so hold time and the span cover until the actual release.
    guard: G,
    _probe: Option<HoldProbe>,
}

struct HoldProbe {
    acquired: Instant,
    mode: LockMode,
    /// Observe hold time into the histogram on drop (sampled/contended).
    record_hold: bool,
    /// `core.storelock` span covering wait + hold; drops after `guard`.
    _span: Option<SpanGuard>,
}

impl Drop for HoldProbe {
    fn drop(&mut self) {
        if self.record_hold {
            let ns = u64::try_from(self.acquired.elapsed().as_nanos()).unwrap_or(u64::MAX);
            lockprobe_metrics().hold[idx(self.mode)].observe(ns);
        }
        // `self._span` drops here, closing the trace span at lock release.
    }
}

impl<G: std::ops::Deref> std::ops::Deref for Probed<G> {
    type Target = G::Target;
    fn deref(&self) -> &G::Target {
        &self.guard
    }
}

impl<G: std::ops::DerefMut> std::ops::DerefMut for Probed<G> {
    fn deref_mut(&mut self) -> &mut G::Target {
        &mut self.guard
    }
}

/// Shared (read) acquisition through the probe.
pub(crate) fn probed_read<T>(lock: &RwLock<T>) -> Probed<RwLockReadGuard<'_, T>> {
    acquire(LockMode::Shared, || lock.try_read(), || lock.read())
}

/// Exclusive (write) acquisition through the probe.
pub(crate) fn probed_write<T>(lock: &RwLock<T>) -> Probed<RwLockWriteGuard<'_, T>> {
    acquire(LockMode::Exclusive, || lock.try_write(), || lock.write())
}

fn acquire<G>(
    mode: LockMode,
    try_fast: impl FnOnce() -> Option<G>,
    block: impl FnOnce() -> G,
) -> Probed<G> {
    if !ccdb_obs::enabled() {
        return Probed {
            guard: block(),
            _probe: None,
        };
    }
    let m = lockprobe_metrics();
    let i = idx(mode);
    m.acquisitions[i].inc();
    // Exclusive acquisitions are rare (writes); clock them all. Shared
    // acquisitions are the hot path; clock a per-thread sample.
    let clocked = mode == LockMode::Exclusive || sample_this_acquisition();
    let mut span = span("core.storelock");
    if let Some(s) = span.as_mut() {
        s.str("mode", mode.name());
    }
    let started = clocked.then(Instant::now);
    let (guard, wait_ns) = match try_fast() {
        Some(guard) => {
            // Uncontended: the wait is the try-lock call itself.
            let wait_ns = started.map(|t| u64::try_from(t.elapsed().as_nanos()).unwrap_or(0));
            (guard, wait_ns)
        }
        None => {
            // Contended: always clock the blocking wait — these are the
            // events the probe exists for.
            let t0 = started.unwrap_or_else(Instant::now);
            m.contended[i].inc();
            m.waiters.inc();
            let guard = block();
            m.waiters.dec();
            let wait_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            m.wait[i].observe(wait_ns);
            charge_thread_wait(mode, wait_ns);
            if let Some(s) = span.as_mut() {
                s.u64("wait_ns", wait_ns);
                s.str("contended", "yes");
            }
            return Probed {
                guard,
                _probe: Some(HoldProbe {
                    acquired: Instant::now(),
                    mode,
                    record_hold: true,
                    _span: span,
                }),
            };
        }
    };
    if let Some(ns) = wait_ns {
        m.wait[i].observe(ns);
    }
    let probe = if clocked || span.is_some() {
        Some(HoldProbe {
            acquired: Instant::now(),
            mode,
            record_hold: clocked,
            _span: span,
        })
    } else {
        None
    };
    Probed {
        guard,
        _probe: probe,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn uncontended_acquisitions_count_without_contention() {
        let m = lockprobe_metrics();
        let lock = RwLock::new(0u32);
        let acq0 = m.acquisitions[0].get();
        let cont0 = m.contended[0].get();
        for _ in 0..10 {
            let g = probed_read(&lock);
            assert_eq!(*g, 0);
        }
        assert_eq!(m.acquisitions[0].get(), acq0 + 10);
        assert_eq!(m.contended[0].get(), cont0, "no writer, so no contention");
    }

    #[test]
    fn contended_write_is_counted_and_charged_to_the_thread() {
        let m = lockprobe_metrics();
        let lock = StdArc::new(RwLock::new(0u32));
        let cont0 = m.contended[1].get();
        let wait_count0 = m.wait[1].snapshot().count;
        let reader = StdArc::clone(&lock);
        let held = StdArc::new(std::sync::Barrier::new(2));
        let held2 = StdArc::clone(&held);
        let h = thread::spawn(move || {
            let _g = reader.read();
            held2.wait();
            thread::sleep(Duration::from_millis(30));
        });
        held.wait();
        let waiters0 = m.waiters.get();
        let writer = StdArc::clone(&lock);
        let wt = thread::spawn(move || {
            let before = thread_lock_wait_ns();
            {
                let mut g = probed_write(&writer);
                *g += 1;
            }
            thread_lock_wait_ns() - before
        });
        // While the writer is blocked behind the reader, the gauge must
        // show at least one waiter. (Polled: the writer needs a moment to
        // reach the blocking acquire.)
        let mut saw_waiter = false;
        for _ in 0..200 {
            if m.waiters.get() > waiters0 {
                saw_waiter = true;
                break;
            }
            thread::sleep(Duration::from_millis(1));
        }
        let waited = wt.join().unwrap();
        h.join().unwrap();
        assert!(
            saw_waiter,
            "waiters gauge never rose while a writer blocked"
        );
        assert!(m.contended[1].get() > cont0, "blocked write counted");
        assert!(m.wait[1].snapshot().count > wait_count0);
        assert!(
            waited >= 10_000_000,
            "~30ms block must charge the thread accumulator, got {waited}ns"
        );
        assert_eq!(*lock.read(), 1);
    }

    #[test]
    fn contended_read_charges_the_snapshot_accumulator_not_the_lock_one() {
        let lock = StdArc::new(RwLock::new(0u32));
        let writer = StdArc::clone(&lock);
        let held = StdArc::new(std::sync::Barrier::new(2));
        let held2 = StdArc::clone(&held);
        let h = thread::spawn(move || {
            let _g = writer.write();
            held2.wait();
            thread::sleep(Duration::from_millis(30));
        });
        held.wait();
        let reader = StdArc::clone(&lock);
        let rt = thread::spawn(move || {
            let snap0 = thread_snapshot_wait_ns();
            let lock0 = thread_lock_wait_ns();
            {
                let _g = probed_read(&reader);
            }
            (
                thread_snapshot_wait_ns() - snap0,
                thread_lock_wait_ns() - lock0,
            )
        });
        let (snap_ns, lock_ns) = rt.join().unwrap();
        h.join().unwrap();
        assert!(
            snap_ns >= 10_000_000,
            "~30ms blocked read must charge the snapshot accumulator, got {snap_ns}ns"
        );
        assert_eq!(lock_ns, 0, "shared wait must not leak into the lock phase");
    }

    #[test]
    fn charge_exclusive_wait_feeds_the_lock_accumulator() {
        let before = thread_lock_wait_ns();
        charge_exclusive_wait(1234);
        assert_eq!(thread_lock_wait_ns() - before, 1234);
    }

    #[test]
    fn exclusive_holds_are_always_clocked() {
        let m = lockprobe_metrics();
        let lock = RwLock::new(0u32);
        let hold0 = m.hold[1].snapshot().count;
        for _ in 0..3 {
            let mut g = probed_write(&lock);
            *g += 1;
        }
        assert_eq!(m.hold[1].snapshot().count, hold0 + 3);
    }
}
