//! Runtime representation of objects, relationship objects, and
//! inheritance-relationship objects.
//!
//! Everything is an object with a surrogate (§3); relationship objects add
//! participants; inheritance-relationship objects add the
//! transmitter/inheritor pair and the adaptation flag the paper suggests
//! keeping on the relationship for consistency control (§2).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::surrogate::Surrogate;
use crate::value::Value;

/// What kind of object this is.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum ObjectKind {
    /// An ordinary (possibly complex) object.
    Plain,
    /// A relationship object; `participants` maps role names to the related
    /// objects (set-valued roles hold several).
    Relationship {
        /// Role name → related objects.
        participants: BTreeMap<String, Vec<Surrogate>>,
    },
    /// An inheritance-relationship object (§4.1).
    InheritanceRel {
        /// The object whose data flows out.
        transmitter: Surrogate,
        /// The object that inherits.
        inheritor: Surrogate,
        /// Set when the transmitter changed permeable data after binding;
        /// cleared by [`acknowledge`](crate::store::ObjectStore::acknowledge_adaptation).
        needs_adaptation: bool,
    },
}

/// Ownership link of a subobject: which complex object it belongs to, and
/// under which local subclass. Subobjects are deleted with their owner (§3).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Owner {
    /// The owning complex object.
    pub parent: Surrogate,
    /// The local subclass (or subrel) name within the owner.
    pub subclass: String,
}

/// A stored object.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct ObjectData {
    /// System-wide identifier.
    pub surrogate: Surrogate,
    /// Name of the object/relationship/inheritance-relationship type.
    pub type_name: String,
    /// Plain, relationship, or inheritance-relationship.
    pub kind: ObjectKind,
    /// Owning complex object, if this is a subobject.
    pub owner: Option<Owner>,
    /// Local attribute values (only locally declared attributes appear here;
    /// inherited values live in the transmitter).
    pub attrs: BTreeMap<String, Value>,
    /// Local subclass name → member surrogates (objects and subrels alike).
    pub subclasses: BTreeMap<String, Vec<Surrogate>>,
    /// Inheritance bindings: inheritance-relationship *type* name → the
    /// inheritance-relationship *object* realizing the binding. At most one
    /// binding per declared `inheritor-in` relationship (paper §4.1: "it can
    /// be specified to which object of the transmitter type it is to be
    /// related").
    pub bindings: BTreeMap<String, Surrogate>,
}

impl ObjectData {
    /// Fresh plain object.
    pub fn plain(surrogate: Surrogate, type_name: &str) -> Self {
        ObjectData {
            surrogate,
            type_name: type_name.to_string(),
            kind: ObjectKind::Plain,
            owner: None,
            attrs: BTreeMap::new(),
            subclasses: BTreeMap::new(),
            bindings: BTreeMap::new(),
        }
    }

    /// Fresh relationship object.
    pub fn relationship(
        surrogate: Surrogate,
        type_name: &str,
        participants: BTreeMap<String, Vec<Surrogate>>,
    ) -> Self {
        ObjectData {
            surrogate,
            type_name: type_name.to_string(),
            kind: ObjectKind::Relationship { participants },
            owner: None,
            attrs: BTreeMap::new(),
            subclasses: BTreeMap::new(),
            bindings: BTreeMap::new(),
        }
    }

    /// Fresh inheritance-relationship object.
    pub fn inheritance(
        surrogate: Surrogate,
        type_name: &str,
        transmitter: Surrogate,
        inheritor: Surrogate,
    ) -> Self {
        ObjectData {
            surrogate,
            type_name: type_name.to_string(),
            kind: ObjectKind::InheritanceRel {
                transmitter,
                inheritor,
                needs_adaptation: false,
            },
            owner: None,
            attrs: BTreeMap::new(),
            subclasses: BTreeMap::new(),
            bindings: BTreeMap::new(),
        }
    }

    /// Transmitter of an inheritance-relationship object.
    pub fn transmitter(&self) -> Option<Surrogate> {
        match &self.kind {
            ObjectKind::InheritanceRel { transmitter, .. } => Some(*transmitter),
            _ => None,
        }
    }

    /// Inheritor of an inheritance-relationship object.
    pub fn inheritor(&self) -> Option<Surrogate> {
        match &self.kind {
            ObjectKind::InheritanceRel { inheritor, .. } => Some(*inheritor),
            _ => None,
        }
    }

    /// Participants under `role`, for relationship objects.
    pub fn participants(&self, role: &str) -> Option<&[Surrogate]> {
        match &self.kind {
            ObjectKind::Relationship { participants } => participants.get(role).map(Vec::as_slice),
            _ => None,
        }
    }

    /// All surrogates this object refers to as subclass members.
    pub fn all_subclass_members(&self) -> impl Iterator<Item = Surrogate> + '_ {
        self.subclasses.values().flatten().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        let p = ObjectData::plain(Surrogate(1), "Gate");
        assert_eq!(p.kind, ObjectKind::Plain);
        assert_eq!(p.type_name, "Gate");

        let mut parts = BTreeMap::new();
        parts.insert("Pin1".to_string(), vec![Surrogate(2)]);
        let r = ObjectData::relationship(Surrogate(3), "WireType", parts);
        assert_eq!(r.participants("Pin1"), Some(&[Surrogate(2)][..]));
        assert_eq!(r.participants("Pin9"), None);
        assert_eq!(p.participants("Pin1"), None);

        let i = ObjectData::inheritance(Surrogate(4), "AllOf_If", Surrogate(5), Surrogate(6));
        assert_eq!(i.transmitter(), Some(Surrogate(5)));
        assert_eq!(i.inheritor(), Some(Surrogate(6)));
        assert_eq!(p.transmitter(), None);
    }

    #[test]
    fn subclass_member_iteration() {
        let mut o = ObjectData::plain(Surrogate(1), "Gate");
        o.subclasses
            .insert("Pins".into(), vec![Surrogate(2), Surrogate(3)]);
        o.subclasses.insert("SubGates".into(), vec![Surrogate(4)]);
        let mut all: Vec<Surrogate> = o.all_subclass_members().collect();
        all.sort();
        assert_eq!(all, vec![Surrogate(2), Surrogate(3), Surrogate(4)]);
    }

    #[test]
    fn serde_roundtrip() {
        let mut o = ObjectData::plain(Surrogate(1), "Gate");
        o.attrs.insert("Length".into(), Value::Int(5));
        o.bindings.insert("AllOf_If".into(), Surrogate(9));
        o.owner = Some(Owner {
            parent: Surrogate(8),
            subclass: "SubGates".into(),
        });
        let json = serde_json::to_string(&o).unwrap();
        let back: ObjectData = serde_json::from_str(&json).unwrap();
        assert_eq!(o, back);
    }
}
