//! Structured-event sink: a lightweight alternative to a full tracing
//! framework. Instrumented code emits [`Event`]s (a static name plus a
//! few typed fields); an installed [`Subscriber`] receives them. The
//! built-in [`RingBuffer`] subscriber keeps the last N events for
//! post-hoc inspection of resolution chains, lock waits, WAL syncs,
//! evictions, and recovery replay.
//!
//! Emission is lazy: [`emit`] takes a closure that only runs when a
//! subscriber is installed *and* instrumentation is enabled, so the
//! quiescent cost on hot paths is one relaxed atomic load.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// A typed field value attached to an [`Event`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldValue {
    /// Unsigned integer (counts, surrogates, LSNs, page ids).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Static string (lock modes, subsystem states).
    Str(&'static str),
    /// Owned string (names that are not static).
    Owned(String),
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
            FieldValue::Owned(v) => write!(f, "{v}"),
        }
    }
}

/// One structured event: a static name, a wall-clock timestamp, and a
/// short list of named fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the Unix epoch at emission time.
    pub ts_ns: u64,
    /// Event name, e.g. `"txn.lock.wait"` or `"storage.wal.sync"`.
    pub name: &'static str,
    /// Named fields, in emission order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl Event {
    /// Builds an event stamped with the current wall-clock time.
    pub fn now(name: &'static str, fields: Vec<(&'static str, FieldValue)>) -> Event {
        let ts_ns = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
            .unwrap_or(0);
        Event {
            ts_ns,
            name,
            fields,
        }
    }

    /// Returns the value of the first field named `key`, if any.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

impl std::fmt::Display for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name)?;
        for (k, v) in &self.fields {
            write!(f, " {k}={v}")?;
        }
        Ok(())
    }
}

/// Receives every emitted [`Event`]. Implementations must be cheap and
/// non-blocking; they run inline on the emitting thread.
pub trait Subscriber: Send + Sync {
    /// Called once per emitted event.
    fn on_event(&self, event: &Event);
}

/// A bounded in-memory subscriber retaining the most recent events.
///
/// At capacity the oldest event is overwritten, **never silently**: every
/// overwrite is tallied in [`RingBuffer::dropped_events`]. The count is
/// updated under the same lock that rotates the queue, so concurrent
/// publishers cannot lose drops (`len() + dropped_events()` always equals
/// the number of events published since the last drain... plus drains).
#[derive(Debug)]
pub struct RingBuffer {
    capacity: usize,
    events: Mutex<VecDeque<Event>>,
    dropped: AtomicU64,
}

impl RingBuffer {
    /// Creates a ring buffer holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        RingBuffer {
            capacity: capacity.max(1),
            events: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// Events overwritten on wraparound since creation. Monotonic; not
    /// reset by [`RingBuffer::drain`].
    pub fn dropped_events(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes and returns all retained events, oldest first.
    pub fn drain(&self) -> Vec<Event> {
        self.events
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .drain(..)
            .collect()
    }

    /// Copies out all retained events without clearing, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        self.events
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .cloned()
            .collect()
    }
}

impl Subscriber for RingBuffer {
    fn on_event(&self, event: &Event) {
        let mut q = self.events.lock().unwrap_or_else(|p| p.into_inner());
        if q.len() == self.capacity {
            q.pop_front();
            // Counted while holding the queue lock: a concurrent publisher
            // cannot interleave between the overwrite and its tally.
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        q.push_back(event.clone());
    }
}

static HAS_SUBSCRIBER: AtomicBool = AtomicBool::new(false);

fn subscriber_slot() -> &'static Mutex<Option<Arc<dyn Subscriber>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<dyn Subscriber>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Installs the process-wide subscriber, replacing any previous one.
/// Pass `None` to uninstall.
pub fn set_subscriber(sub: Option<Arc<dyn Subscriber>>) {
    let mut slot = subscriber_slot().lock().unwrap_or_else(|p| p.into_inner());
    HAS_SUBSCRIBER.store(sub.is_some(), Ordering::Relaxed);
    *slot = sub;
}

/// Emits an event built by `f`, but only when instrumentation is enabled
/// and a subscriber is installed — otherwise `f` never runs.
#[inline]
pub fn emit(f: impl FnOnce() -> Event) {
    if !crate::enabled() || !HAS_SUBSCRIBER.load(Ordering::Relaxed) {
        return;
    }
    let sub = subscriber_slot()
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .clone();
    if let Some(sub) = sub {
        sub.on_event(&f());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_buffer_drops_oldest_at_capacity() {
        let rb = RingBuffer::new(2);
        for i in 0..3u64 {
            rb.on_event(&Event::now("e", vec![("i", FieldValue::U64(i))]));
        }
        assert_eq!(rb.dropped_events(), 1);
        let events = rb.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].field("i"), Some(&FieldValue::U64(1)));
        assert_eq!(events[1].field("i"), Some(&FieldValue::U64(2)));
        assert!(rb.is_empty());
    }

    #[test]
    fn drop_count_is_lossless_under_concurrent_publishers() {
        const THREADS: u64 = 8;
        const EVENTS: u64 = 500;
        const CAPACITY: usize = 16;
        let rb = Arc::new(RingBuffer::new(CAPACITY));
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let rb = Arc::clone(&rb);
            handles.push(std::thread::spawn(move || {
                for i in 0..EVENTS {
                    rb.on_event(&Event::now(
                        "e",
                        vec![("i", FieldValue::U64(t * EVENTS + i))],
                    ));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Every published event is either retained or accounted as dropped.
        assert_eq!(rb.len(), CAPACITY);
        assert_eq!(
            rb.len() as u64 + rb.dropped_events(),
            THREADS * EVENTS,
            "drops lost under concurrency"
        );
    }

    #[test]
    fn event_display_is_key_value() {
        let e = Event {
            ts_ns: 0,
            name: "txn.lock.wait",
            fields: vec![("mode", FieldValue::Str("X")), ("txn", FieldValue::U64(7))],
        };
        assert_eq!(e.to_string(), "txn.lock.wait mode=X txn=7");
    }

    #[test]
    fn emit_is_lazy_without_subscriber() {
        // No subscriber installed in this test process at this point:
        // the closure must not run.
        let ran = std::cell::Cell::new(false);
        emit(|| {
            ran.set(true);
            Event::now("never", vec![])
        });
        // Another test may have installed a subscriber concurrently; only
        // assert when we know the slot is empty.
        if !HAS_SUBSCRIBER.load(Ordering::Relaxed) {
            assert!(!ran.get());
        }
    }

    #[test]
    fn installed_subscriber_receives_events() {
        let rb = Arc::new(RingBuffer::new(8));
        set_subscriber(Some(rb.clone()));
        emit(|| Event::now("test.event", vec![("n", FieldValue::U64(1))]));
        set_subscriber(None);
        let events = rb.snapshot();
        assert!(events.iter().any(|e| e.name == "test.event"));
    }
}
