#![warn(missing_docs)]

//! # ccdb-obs
//!
//! Zero-dependency observability layer for the ccdb workspace:
//!
//! - [`metrics`] — atomic [`Counter`]s, [`Gauge`]s, and fixed-bucket
//!   [`Histogram`]s, usable standalone (per-instance stats views) or
//!   through the process-global [`Registry`];
//! - [`registry`] — named metric registry with Prometheus-text and JSON
//!   exporters;
//! - [`span`] — RAII timers recording elapsed nanoseconds into histograms;
//! - [`event`] — optional structured-event sink (ring buffer, pluggable
//!   [`Subscriber`]) for tracing resolution chains, lock waits, WAL syncs,
//!   buffer-pool evictions, and recovery replay;
//! - [`trace`] — causal trace trees: per-operation spans with trace/span
//!   ids and parent links, a bounded sampled buffer, Chrome-trace/JSONL
//!   exporters, and a slow-operation log;
//! - [`flight`] — a bounded flight recorder of completed request phase
//!   timelines, retaining the slowest-N and most-recent-M;
//! - [`timeseries`] — a background sampler materializing every registered
//!   metric's history into bounded delta-encoded rings, with windowed
//!   rate/quantile queries and incremental frames for streaming.
//!
//! ## Naming scheme
//!
//! Registry metrics follow `ccdb_<crate>_<subsystem>_<name>`, e.g.
//! `ccdb_core_resolution_hops`, `ccdb_txn_lock_acquire_latency_ns`,
//! `ccdb_storage_wal_appends_total`.
//!
//! ## Cost model
//!
//! Counter updates are single relaxed atomic adds. Latency measurement
//! (which needs `Instant::now`) and event emission are gated behind
//! [`enabled`], a relaxed atomic load; [`set_enabled`]`(false)` reduces
//! instrumented hot paths to a load-and-branch. Compiling the crate
//! without the `enabled` feature folds the gate to constant `false`.

pub mod event;
pub mod flight;
pub mod metrics;
pub mod registry;
pub mod span;
pub mod timeseries;
pub mod trace;

pub use event::{Event, FieldValue, RingBuffer, Subscriber};
pub use flight::{FlightRecord, FlightSnapshot};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use registry::{global, Registry, RegistrySnapshot};
pub use span::SpanTimer;
pub use timeseries::{global_series, SeriesDelta, SeriesKind, TelemetryFrame, TimeSeries};
pub use trace::{SpanGuard, SpanId, SpanRecord, TraceId};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether runtime instrumentation is active.
///
/// Always `false` when built without the `enabled` feature, letting the
/// compiler eliminate instrumented branches.
#[inline(always)]
pub fn enabled() -> bool {
    cfg!(feature = "enabled") && ENABLED.load(Ordering::Relaxed)
}

/// Turns runtime instrumentation on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_toggle_roundtrips() {
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
    }
}
