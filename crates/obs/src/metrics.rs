//! Metric primitives: [`Counter`], [`Gauge`], and fixed-bucket
//! [`Histogram`]. All are lock-free (relaxed atomics) and usable either
//! standalone — e.g. as the backing store of a per-instance stats struct —
//! or registered under a canonical name in a [`crate::Registry`].

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// New counter at zero.
    pub const fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero. Prometheus counters are monotonic; this exists for
    /// per-instance stats views (`reset_stats`-style APIs) and tests.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Gauge: a value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// New gauge at zero.
    pub const fn new() -> Self {
        Gauge {
            value: AtomicI64::new(0),
        }
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Default latency bucket upper bounds, in nanoseconds: 250ns … 1s.
pub const LATENCY_BUCKETS_NS: &[u64] = &[
    250,
    500,
    1_000,
    2_500,
    5_000,
    10_000,
    25_000,
    50_000,
    100_000,
    250_000,
    500_000,
    1_000_000,
    2_500_000,
    5_000_000,
    10_000_000,
    50_000_000,
    100_000_000,
    500_000_000,
    1_000_000_000,
];

/// Small-integer bucket bounds for resolution hop / fan-out counts.
pub const HOP_BUCKETS: &[u64] = &[0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 64];

/// Fixed-bucket histogram with cumulative-on-export semantics.
///
/// `bounds` are inclusive upper bounds per bucket; an implicit `+Inf`
/// bucket catches the rest. Observation is two relaxed adds plus a binary
/// search over a short bounds slice.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
}

/// Point-in-time copy of a histogram's state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bound per bucket (without the `+Inf` bucket).
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts (len = bounds.len() + 1; last is `+Inf`).
    pub buckets: Vec<u64>,
    /// Sum of all observed values.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Estimates the `q`-quantile (`q` in `[0.0, 1.0]`) from the bucket
    /// counts, Prometheus `histogram_quantile`-style: find the bucket the
    /// target rank falls in, then interpolate linearly between its bounds.
    /// Ranks landing in the `+Inf` bucket report the largest finite bound
    /// (the histogram cannot resolve beyond it). Returns `None` for an
    /// empty histogram or an out-of-range `q`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let rank = q * self.count as f64;
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if (seen as f64) < rank {
                continue;
            }
            if i >= self.bounds.len() {
                // +Inf bucket: saturate at the largest finite bound.
                return self.bounds.last().map(|b| *b as f64);
            }
            let upper = self.bounds[i] as f64;
            let lower = if i == 0 {
                0.0
            } else {
                self.bounds[i - 1] as f64
            };
            let bucket_count = *n as f64;
            if bucket_count == 0.0 {
                return Some(upper);
            }
            let into_bucket = rank - (seen - n) as f64;
            return Some(lower + (upper - lower) * (into_bucket / bucket_count));
        }
        self.bounds.last().map(|b| *b as f64)
    }
}

impl Histogram {
    /// Creates a histogram with the given inclusive upper bounds, which
    /// must be strictly increasing and non-empty.
    pub fn new(bounds: &[u64]) -> Self {
        assert!(
            !bounds.is_empty(),
            "histogram needs at least one bucket bound"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must increase"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
        }
    }

    /// Latency histogram over [`LATENCY_BUCKETS_NS`].
    pub fn latency_ns() -> Self {
        Histogram::new(LATENCY_BUCKETS_NS)
    }

    /// Records one observation. Two relaxed adds: the observation count is
    /// not stored separately but derived as the sum of the buckets, keeping
    /// the hot path as cheap as possible. A linear scan beats binary search
    /// here: bound lists are short (≤ ~20) and repeated observations of
    /// similar values make every comparison branch-predictable.
    #[inline]
    pub fn observe(&self, value: u64) {
        let mut idx = 0;
        while idx < self.bounds.len() && self.bounds[idx] < value {
            idx += 1;
        }
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of observations so far (sum of all buckets; under concurrent
    /// observation this may transiently lag `sum` by in-flight updates).
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of observed values so far.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The configured bucket bounds (without `+Inf`).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Copies out the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = buckets.iter().sum();
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets,
            sum: self.sum(),
            count,
        }
    }

    /// Resets all buckets (for per-instance views and tests).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_inc_add_reset() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.inc();
        g.add(10);
        g.dec();
        assert_eq!(g.get(), 10);
        g.set(-3);
        assert_eq!(g.get(), -3);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive() {
        let h = Histogram::new(&[10, 20, 30]);
        // Exactly on a bound lands in that bucket (le semantics).
        h.observe(10);
        h.observe(20);
        h.observe(30);
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![1, 1, 1, 0]);

        // One past a bound falls into the next bucket.
        h.observe(11);
        h.observe(21);
        h.observe(31); // past the last bound → +Inf bucket
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![1, 2, 2, 1]);
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 10 + 20 + 30 + 11 + 21 + 31);
    }

    #[test]
    fn histogram_zero_lands_in_first_bucket() {
        let h = Histogram::new(&[0, 5]);
        h.observe(0);
        assert_eq!(h.snapshot().buckets, vec![1, 0, 0]);
    }

    #[test]
    fn histogram_above_all_bounds_goes_to_inf() {
        let h = Histogram::new(&[1]);
        h.observe(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "must increase")]
    fn histogram_rejects_unsorted_bounds() {
        let _ = Histogram::new(&[5, 5]);
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        let h = Histogram::new(&[10, 20, 40]);
        // 10 observations in (10, 20]: ranks spread over one bucket.
        for _ in 0..10 {
            h.observe(15);
        }
        let s = h.snapshot();
        // p50 → rank 5 of 10 in the (10, 20] bucket → 10 + 10·(5/10) = 15.
        assert_eq!(s.quantile(0.5), Some(15.0));
        assert_eq!(s.quantile(1.0), Some(20.0));
        // First-bucket ranks interpolate from 0.
        let h2 = Histogram::new(&[100]);
        h2.observe(1);
        h2.observe(1);
        assert_eq!(h2.snapshot().quantile(0.5), Some(50.0));
    }

    #[test]
    fn quantile_edge_cases() {
        let h = Histogram::new(&[10, 20]);
        assert_eq!(h.snapshot().quantile(0.5), None, "empty histogram");
        h.observe(1_000); // +Inf bucket
        let s = h.snapshot();
        assert_eq!(s.quantile(0.99), Some(20.0), "saturates at last bound");
        assert_eq!(s.quantile(-0.1), None);
        assert_eq!(s.quantile(1.1), None);
    }

    #[test]
    fn latency_histogram_spans_defaults() {
        let h = Histogram::latency_ns();
        h.observe(1); // fastest bucket
        h.observe(2_000_000_000); // beyond 1s → +Inf
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 1);
        assert_eq!(*s.buckets.last().unwrap(), 1);
    }
}
