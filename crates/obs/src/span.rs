//! RAII span timers: measure a scope's wall-clock duration and record it
//! into a [`Histogram`] in nanoseconds on drop.

use std::sync::Arc;
use std::time::Instant;

use crate::metrics::Histogram;

/// Times a scope and records elapsed nanoseconds into a histogram when
/// dropped.
///
/// [`SpanTimer::start`] returns `None` when instrumentation is disabled
/// ([`crate::enabled`] is `false`), so the hot-path cost collapses to one
/// relaxed atomic load and a branch:
///
/// ```
/// let hist = std::sync::Arc::new(ccdb_obs::Histogram::latency_ns());
/// {
///     let _span = ccdb_obs::SpanTimer::start(&hist);
///     // ... timed work ...
/// }
/// assert!(hist.count() <= 1);
/// ```
#[derive(Debug)]
pub struct SpanTimer {
    start: Instant,
    hist: Arc<Histogram>,
}

impl SpanTimer {
    /// Starts a timer over `hist`, or returns `None` when instrumentation
    /// is disabled.
    #[inline]
    pub fn start(hist: &Arc<Histogram>) -> Option<SpanTimer> {
        if crate::enabled() {
            Some(SpanTimer {
                start: Instant::now(),
                hist: Arc::clone(hist),
            })
        } else {
            None
        }
    }

    /// Starts a timer unconditionally, ignoring the global enable gate.
    /// Useful in tests and in code that has already checked the gate.
    pub fn start_always(hist: &Arc<Histogram>) -> SpanTimer {
        SpanTimer {
            start: Instant::now(),
            hist: Arc::clone(hist),
        }
    }

    /// Elapsed time since the timer started, in nanoseconds (saturating).
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        self.hist.observe(self.elapsed_ns());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_one_observation_on_drop() {
        let hist = Arc::new(Histogram::latency_ns());
        {
            let _span = SpanTimer::start_always(&hist);
            std::hint::black_box(42);
        }
        assert_eq!(hist.count(), 1);
        assert!(hist.sum() < 1_000_000_000, "span should be well under 1s");
    }

    #[test]
    fn nested_spans_record_independently() {
        let outer = Arc::new(Histogram::latency_ns());
        let inner = Arc::new(Histogram::latency_ns());
        {
            let _o = SpanTimer::start_always(&outer);
            let _i = SpanTimer::start_always(&inner);
        }
        assert_eq!(outer.count(), 1);
        assert_eq!(inner.count(), 1);
    }
}
