//! Causal trace trees: per-operation structured tracing.
//!
//! Where [`crate::span`] records *aggregate* latency histograms and
//! [`crate::event`] streams flat events, this module captures the **causal
//! structure** of one operation: an attribute resolution with every
//! inheritance hop it walked, a lock acquisition with its wait, a buffer
//! fetch with the eviction it forced. Each traced operation becomes a tree
//! of [`SpanRecord`]s linked by `(trace, parent)` ids, collected into a
//! bounded in-memory buffer for post-hoc inspection (`ccdb explain`, tests,
//! the slow-op log).
//!
//! ## Cost model
//!
//! [`span`] is the only call sites pay. When tracing is off it is a single
//! relaxed atomic load and a branch — the same quiescent pattern as
//! [`crate::SpanTimer::start`] — and the closure-free API means no field
//! formatting happens either (callers guard annotations on the returned
//! `Option`). When tracing is on, a root span consults the sampler; an
//! unsampled root *suppresses* its whole subtree via the thread-local span
//! stack, so child spans of a dropped trace never allocate.
//!
//! ## Sampling
//!
//! [`set_sample_rate`] takes a rate in `[0.0, 1.0]`. The sampler is
//! deterministic (a global trace counter, not an RNG): rate `r` keeps a
//! trace whenever the integer part of `n·r` advances, so rate `1.0` keeps
//! every trace, `0.0` keeps none, and `0.25` keeps exactly one in four.
//!
//! ## Slow-operation log
//!
//! A finished **root** span whose duration exceeds the configured
//! [`set_slow_op_threshold_ns`] threshold is also emitted as an
//! `obs.slow_op` [`crate::Event`] through the regular subscriber sink, so
//! the existing [`crate::RingBuffer`] doubles as the slow-query log.
//!
//! ## Exporters
//!
//! [`export_chrome_trace`] renders a span set as Chrome-trace JSON (load it
//! in `chrome://tracing` or Perfetto); [`export_jsonl`] renders one JSON
//! object per line for machine diffing.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use crate::event::{self, Event, FieldValue};

/// Identifies one traced operation (a tree of spans).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TraceId(pub u64);

/// Identifies one span within the process (unique across traces).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct SpanId(pub u64);

/// One finished span: a named, timed node of a trace tree.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// The trace this span belongs to.
    pub trace: TraceId,
    /// This span's id.
    pub span: SpanId,
    /// Parent span id; `None` for the trace root.
    pub parent: Option<SpanId>,
    /// Span name, e.g. `"core.attr"` or `"txn.lock.acquire"`.
    pub name: &'static str,
    /// Wall-clock start, nanoseconds since the Unix epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Key=value annotations, in insertion order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl SpanRecord {
    /// Returns the value of the first field named `key`, if any.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

// ---------------------------------------------------------------------
// Global tracer state
// ---------------------------------------------------------------------

static TRACING: AtomicBool = AtomicBool::new(false);
/// Sample rate as fixed-point parts-per-million (1_000_000 = keep all).
static SAMPLE_PPM: AtomicU64 = AtomicU64::new(1_000_000);
/// Monotonic would-be-trace counter driving the deterministic sampler.
static TRACE_SEQ: AtomicU64 = AtomicU64::new(0);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);
/// Root spans slower than this (ns) are mirrored as `obs.slow_op` events;
/// `0` disables the slow-op log.
static SLOW_OP_THRESHOLD_NS: AtomicU64 = AtomicU64::new(0);
/// `obs.slow_op` events emitted so far (see [`slow_op_count`]).
static SLOW_OP_COUNT: AtomicU64 = AtomicU64::new(0);

/// Whether trace collection is currently active.
///
/// One relaxed load; always `false` without the `enabled` feature, so the
/// optimizer strips traced paths entirely in gated builds.
#[inline(always)]
pub fn tracing() -> bool {
    cfg!(feature = "enabled") && TRACING.load(Ordering::Relaxed)
}

/// Turns trace collection on or off process-wide. Orthogonal to
/// [`crate::set_enabled`]: metrics can stay on while tracing is off (the
/// usual production configuration).
pub fn set_tracing(on: bool) {
    TRACING.store(on, Ordering::Relaxed);
}

/// Sets the trace sample rate, clamped to `[0.0, 1.0]`. `1.0` keeps every
/// trace, `0.0` keeps none; intermediate rates keep a deterministic,
/// evenly spaced subset of root spans.
pub fn set_sample_rate(rate: f64) {
    let rate = rate.clamp(0.0, 1.0);
    SAMPLE_PPM.store((rate * 1_000_000.0).round() as u64, Ordering::Relaxed);
}

/// The configured sample rate.
pub fn sample_rate() -> f64 {
    SAMPLE_PPM.load(Ordering::Relaxed) as f64 / 1_000_000.0
}

/// Sets the slow-operation threshold in nanoseconds; a finished root span
/// at least this slow is emitted as an `obs.slow_op` event through the
/// installed [`crate::Subscriber`]. `0` (the default) disables the log.
pub fn set_slow_op_threshold_ns(ns: u64) {
    SLOW_OP_THRESHOLD_NS.store(ns, Ordering::Relaxed);
}

/// The configured slow-operation threshold (ns); `0` = disabled.
pub fn slow_op_threshold_ns() -> u64 {
    SLOW_OP_THRESHOLD_NS.load(Ordering::Relaxed)
}

/// How many `obs.slow_op` events the slow-op log has emitted so far.
///
/// Unlike the event ring buffer (which evicts), this count is monotonic
/// for the life of the process — `ccdb stats` surfaces it so operators can
/// tell "no slow ops" apart from "slow ops scrolled out of the buffer".
pub fn slow_op_count() -> u64 {
    SLOW_OP_COUNT.load(Ordering::Relaxed)
}

/// Deterministic sampler: keep trace `n` iff `floor(n·r)` advanced over
/// `floor((n-1)·r)` in parts-per-million arithmetic.
fn sample_next_trace() -> bool {
    let ppm = SAMPLE_PPM.load(Ordering::Relaxed);
    if ppm == 0 {
        return false;
    }
    if ppm >= 1_000_000 {
        return true;
    }
    let n = TRACE_SEQ.fetch_add(1, Ordering::Relaxed) + 1;
    (n * ppm) / 1_000_000 > ((n - 1) * ppm) / 1_000_000
}

// ---------------------------------------------------------------------
// Trace buffer
// ---------------------------------------------------------------------

struct BufferState {
    spans: VecDeque<SpanRecord>,
    capacity: usize,
    dropped: u64,
}

fn buffer() -> &'static Mutex<BufferState> {
    static BUF: OnceLock<Mutex<BufferState>> = OnceLock::new();
    BUF.get_or_init(|| {
        Mutex::new(BufferState {
            spans: VecDeque::new(),
            capacity: DEFAULT_BUFFER_CAPACITY,
            dropped: 0,
        })
    })
}

/// Default capacity of the in-memory span buffer.
pub const DEFAULT_BUFFER_CAPACITY: usize = 4096;

fn push_span(rec: SpanRecord) {
    let mut b = buffer().lock().unwrap_or_else(|p| p.into_inner());
    if b.spans.len() == b.capacity {
        b.spans.pop_front();
        b.dropped += 1;
    }
    b.spans.push_back(rec);
}

/// Resizes the span buffer (min 1). Shrinking drops the oldest spans,
/// counting them as dropped.
pub fn set_buffer_capacity(capacity: usize) {
    let mut b = buffer().lock().unwrap_or_else(|p| p.into_inner());
    b.capacity = capacity.max(1);
    while b.spans.len() > b.capacity {
        b.spans.pop_front();
        b.dropped += 1;
    }
}

/// Spans evicted from the buffer (or lost to shrinking) so far.
pub fn dropped_spans() -> u64 {
    buffer().lock().unwrap_or_else(|p| p.into_inner()).dropped
}

/// Copies out every buffered span, oldest first, without clearing.
pub fn snapshot_spans() -> Vec<SpanRecord> {
    buffer()
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .spans
        .iter()
        .cloned()
        .collect()
}

/// Removes and returns every buffered span, oldest first.
pub fn take_spans() -> Vec<SpanRecord> {
    buffer()
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .spans
        .drain(..)
        .collect()
}

/// The buffered spans of one trace, oldest first.
pub fn spans_for(trace: TraceId) -> Vec<SpanRecord> {
    buffer()
        .lock()
        .unwrap()
        .spans
        .iter()
        .filter(|s| s.trace == trace)
        .cloned()
        .collect()
}

/// Clears the buffer and zeroes the dropped-span and slow-op counts
/// (tests, `explain`).
pub fn clear() {
    let mut b = buffer().lock().unwrap_or_else(|p| p.into_inner());
    b.spans.clear();
    b.dropped = 0;
    SLOW_OP_COUNT.store(0, Ordering::Relaxed);
}

// ---------------------------------------------------------------------
// Span guards and the thread-local stack
// ---------------------------------------------------------------------

/// Thread-local stack entry: an active span to parent children under, or a
/// suppression marker (unsampled root) that mutes the whole subtree.
#[derive(Clone, Copy)]
enum StackEntry {
    Active { trace: TraceId, span: SpanId },
    Suppressed,
}

thread_local! {
    static SPAN_STACK: RefCell<Vec<StackEntry>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for one span. Dropping finishes the span and commits it to
/// the trace buffer (unless the trace was sampled out).
pub struct SpanGuard {
    /// `None` for suppressed guards, which never read the clock.
    start: Option<Instant>,
    /// `None` when this guard only marks a suppressed (unsampled) subtree.
    rec: Option<SpanRecord>,
}

impl SpanGuard {
    /// Whether this guard records anything (false inside unsampled traces).
    pub fn is_recording(&self) -> bool {
        self.rec.is_some()
    }

    /// This span's trace id, when recording.
    pub fn trace_id(&self) -> Option<TraceId> {
        self.rec.as_ref().map(|r| r.trace)
    }

    /// Attaches a `key=value` annotation.
    #[inline]
    pub fn field(&mut self, key: &'static str, value: FieldValue) {
        if let Some(rec) = &mut self.rec {
            rec.fields.push((key, value));
        }
    }

    /// Attaches an unsigned-integer annotation.
    #[inline]
    pub fn u64(&mut self, key: &'static str, value: u64) {
        self.field(key, FieldValue::U64(value));
    }

    /// Attaches a static-string annotation.
    #[inline]
    pub fn str(&mut self, key: &'static str, value: &'static str) {
        self.field(key, FieldValue::Str(value));
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        SPAN_STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        if let Some(mut rec) = self.rec.take() {
            let elapsed = self.start.map(|s| s.elapsed().as_nanos()).unwrap_or(0);
            rec.dur_ns = u64::try_from(elapsed).unwrap_or(u64::MAX);
            let is_root = rec.parent.is_none();
            if is_root {
                let threshold = SLOW_OP_THRESHOLD_NS.load(Ordering::Relaxed);
                if threshold > 0 && rec.dur_ns >= threshold {
                    let name = rec.name;
                    let trace = rec.trace.0;
                    let dur = rec.dur_ns;
                    SLOW_OP_COUNT.fetch_add(1, Ordering::Relaxed);
                    event::emit(|| {
                        Event::now(
                            "obs.slow_op",
                            vec![
                                ("op", FieldValue::Str(name)),
                                ("trace", FieldValue::U64(trace)),
                                ("dur_ns", FieldValue::U64(dur)),
                            ],
                        )
                    });
                }
            }
            push_span(rec);
        }
    }
}

fn now_unix_ns() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// Opens a span named `name`.
///
/// Returns `None` when tracing is off — one relaxed load and a branch, no
/// other work. When tracing is on: inside an active trace the span becomes
/// a child of the innermost open span on this thread; otherwise it is a
/// trace *root* and consults the sampler (an unsampled root returns a
/// non-recording guard so its descendants stay muted rather than becoming
/// spurious roots).
#[inline]
pub fn span(name: &'static str) -> Option<SpanGuard> {
    if !tracing() {
        return None;
    }
    Some(span_slow(name))
}

/// Opens a span inside a *caller-supplied* trace, bypassing the sampler.
///
/// This is the continuation point for distributed traces: a client stamps
/// its trace id on a wire frame, and the server opens the frame's handling
/// span with [`span_in_trace`] so both halves share one trace id and the
/// server-side subtree is never sampled away. With no enclosing span on
/// this thread the span is a root of `trace`; inside an enclosing span of
/// the *same* trace it nests normally (other traces' spans are ignored —
/// worker threads are reused across unrelated requests). Returns `None`
/// when tracing is off.
#[inline]
pub fn span_in_trace(name: &'static str, trace: TraceId) -> Option<SpanGuard> {
    if !tracing() {
        return None;
    }
    Some(span_in_trace_slow(name, trace))
}

#[cold]
fn span_in_trace_slow(name: &'static str, trace: TraceId) -> SpanGuard {
    SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let parent = match stack.last() {
            Some(StackEntry::Active { trace: t, span }) if *t == trace => Some(*span),
            _ => None,
        };
        let id = SpanId(NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed));
        stack.push(StackEntry::Active { trace, span: id });
        SpanGuard {
            start: Some(Instant::now()),
            rec: Some(SpanRecord {
                trace,
                span: id,
                parent,
                name,
                start_ns: now_unix_ns(),
                dur_ns: 0,
                fields: Vec::new(),
            }),
        }
    })
}

#[cold]
fn span_slow(name: &'static str) -> SpanGuard {
    SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let (entry, rec) = match stack.last() {
            Some(StackEntry::Suppressed) => (StackEntry::Suppressed, None),
            Some(StackEntry::Active { trace, span }) => {
                let trace = *trace;
                let parent = *span;
                let id = SpanId(NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed));
                (
                    StackEntry::Active { trace, span: id },
                    Some(SpanRecord {
                        trace,
                        span: id,
                        parent: Some(parent),
                        name,
                        start_ns: now_unix_ns(),
                        dur_ns: 0,
                        fields: Vec::new(),
                    }),
                )
            }
            None => {
                if sample_next_trace() {
                    let trace = TraceId(NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed));
                    let id = SpanId(NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed));
                    (
                        StackEntry::Active { trace, span: id },
                        Some(SpanRecord {
                            trace,
                            span: id,
                            parent: None,
                            name,
                            start_ns: now_unix_ns(),
                            dur_ns: 0,
                            fields: Vec::new(),
                        }),
                    )
                } else {
                    (StackEntry::Suppressed, None)
                }
            }
        };
        stack.push(entry);
        SpanGuard {
            // Suppressed guards skip the clock read: their only job is to
            // hold the stack marker that mutes the subtree.
            start: rec.is_some().then(Instant::now),
            rec,
        }
    })
}

// ---------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------

/// Escapes a string for inclusion in a JSON string literal.
fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn write_field_value(v: &FieldValue, out: &mut String) {
    match v {
        FieldValue::U64(n) => {
            let _ = write!(out, "{n}");
        }
        FieldValue::I64(n) => {
            let _ = write!(out, "{n}");
        }
        FieldValue::Str(s) => {
            out.push('"');
            escape_json(s, out);
            out.push('"');
        }
        FieldValue::Owned(s) => {
            out.push('"');
            escape_json(s, out);
            out.push('"');
        }
    }
}

fn write_args_object(rec: &SpanRecord, out: &mut String) {
    out.push('{');
    for (i, (k, v)) in rec.fields.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push('"');
        escape_json(k, out);
        out.push_str("\": ");
        write_field_value(v, out);
    }
    out.push('}');
}

/// Renders spans in the Chrome-trace (`chrome://tracing` / Perfetto) JSON
/// format: complete (`"ph": "X"`) events with microsecond timestamps, one
/// `tid` per trace so concurrent operations land on separate tracks.
pub fn export_chrome_trace(spans: &[SpanRecord]) -> String {
    let mut out = String::from("{\"traceEvents\": [");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {\"name\": \"");
        escape_json(s.name, &mut out);
        let _ = write!(
            out,
            "\", \"cat\": \"ccdb\", \"ph\": \"X\", \"ts\": {}.{:03}, \"dur\": {}.{:03}, \
             \"pid\": 1, \"tid\": {}, \"id\": {}, \"args\": ",
            s.start_ns / 1_000,
            s.start_ns % 1_000,
            s.dur_ns / 1_000,
            s.dur_ns % 1_000,
            s.trace.0,
            s.span.0,
        );
        write_args_object(s, &mut out);
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

/// Renders one span as a single-line JSON object.
pub fn span_to_json(s: &SpanRecord) -> String {
    let mut out = String::from("{\"trace\": ");
    let _ = write!(out, "{}", s.trace.0);
    let _ = write!(out, ", \"span\": {}", s.span.0);
    match s.parent {
        Some(p) => {
            let _ = write!(out, ", \"parent\": {}", p.0);
        }
        None => out.push_str(", \"parent\": null"),
    }
    out.push_str(", \"name\": \"");
    escape_json(s.name, &mut out);
    let _ = write!(
        out,
        "\", \"start_ns\": {}, \"dur_ns\": {}, \"fields\": ",
        s.start_ns, s.dur_ns
    );
    write_args_object(s, &mut out);
    out.push('}');
    out
}

/// Renders spans as JSONL: one JSON object per line, oldest first.
pub fn export_jsonl(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    for s in spans {
        out.push_str(&span_to_json(s));
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------
// Tree construction (for pretty-printers and tests)
// ---------------------------------------------------------------------

/// One node of a reconstructed trace tree.
#[derive(Debug)]
pub struct TraceNode {
    /// The span at this node.
    pub record: SpanRecord,
    /// Child nodes, in buffer (= completion) order.
    pub children: Vec<TraceNode>,
}

/// Rebuilds the span trees contained in `spans` (roots in buffer order).
/// Spans whose parent is missing from the set are treated as roots, so a
/// partially evicted trace still renders.
pub fn build_trees(spans: &[SpanRecord]) -> Vec<TraceNode> {
    // Index spans by id, then attach children to parents bottom-up.
    fn attach(node_span: &SpanRecord, spans: &[SpanRecord]) -> TraceNode {
        let children = spans
            .iter()
            .filter(|s| s.parent == Some(node_span.span) && s.trace == node_span.trace)
            .map(|s| attach(s, spans))
            .collect();
        TraceNode {
            record: node_span.clone(),
            children,
        }
    }
    let ids: std::collections::HashSet<SpanId> = spans.iter().map(|s| s.span).collect();
    spans
        .iter()
        .filter(|s| match s.parent {
            None => true,
            Some(p) => !ids.contains(&p),
        })
        .map(|s| attach(s, spans))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// Tracing state (enable flag, sampler, buffer) is process-global;
    /// serialize the tests that touch it.
    pub(super) static SERIAL: StdMutex<()> = StdMutex::new(());

    struct TraceSession;

    impl TraceSession {
        fn start(rate: f64) -> Self {
            set_sample_rate(rate);
            set_tracing(true);
            clear();
            TraceSession
        }
    }

    impl Drop for TraceSession {
        fn drop(&mut self) {
            set_tracing(false);
            set_sample_rate(1.0);
            set_slow_op_threshold_ns(0);
            clear();
        }
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        let _g = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        set_tracing(false);
        clear();
        assert!(span("quiet").is_none());
        assert!(take_spans().is_empty());
    }

    #[test]
    fn nested_spans_link_parents() {
        let _g = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        let _s = TraceSession::start(1.0);
        {
            let mut root = span("op.root").unwrap();
            root.u64("object", 42);
            {
                let mut child = span("op.child").unwrap();
                child.str("kind", "first");
                let _grand = span("op.grandchild").unwrap();
            }
            let _sibling = span("op.child2").unwrap();
        }
        let spans = take_spans();
        assert_eq!(spans.len(), 4);
        // Completion order: grandchild, child, child2, root.
        let root = spans.iter().find(|s| s.name == "op.root").unwrap();
        let child = spans.iter().find(|s| s.name == "op.child").unwrap();
        let grand = spans.iter().find(|s| s.name == "op.grandchild").unwrap();
        let sib = spans.iter().find(|s| s.name == "op.child2").unwrap();
        assert_eq!(root.parent, None);
        assert_eq!(child.parent, Some(root.span));
        assert_eq!(grand.parent, Some(child.span));
        assert_eq!(sib.parent, Some(root.span));
        assert!(spans.iter().all(|s| s.trace == root.trace));
        assert_eq!(root.field("object"), Some(&FieldValue::U64(42)));

        let trees = build_trees(&spans);
        assert_eq!(trees.len(), 1);
        assert_eq!(trees[0].record.name, "op.root");
        assert_eq!(trees[0].children.len(), 2);
        assert_eq!(trees[0].children[0].record.name, "op.child");
        assert_eq!(trees[0].children[0].children.len(), 1);
    }

    #[test]
    fn sample_rate_zero_suppresses_subtrees() {
        let _g = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        let _s = TraceSession::start(0.0);
        {
            let root = span("op.root").unwrap();
            assert!(!root.is_recording());
            // A child under a suppressed root must not become a root.
            let child = span("op.child").unwrap();
            assert!(!child.is_recording());
        }
        assert!(take_spans().is_empty());
    }

    #[test]
    fn sample_rate_one_keeps_every_trace() {
        let _g = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        let _s = TraceSession::start(1.0);
        for _ in 0..5 {
            let _ = span("op").unwrap();
        }
        assert_eq!(take_spans().len(), 5);
    }

    #[test]
    fn fractional_sampling_keeps_proportional_subset() {
        let _g = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        let _s = TraceSession::start(0.25);
        let mut kept = 0;
        for _ in 0..100 {
            if let Some(g) = span("op") {
                if g.is_recording() {
                    kept += 1;
                }
            }
        }
        assert_eq!(kept, 25, "deterministic 1-in-4 sampler");
    }

    #[test]
    fn buffer_bounds_and_counts_drops() {
        let _g = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        let _s = TraceSession::start(1.0);
        set_buffer_capacity(4);
        let dropped_before = dropped_spans();
        for _ in 0..10 {
            let _ = span("op").unwrap();
        }
        assert_eq!(snapshot_spans().len(), 4);
        assert_eq!(dropped_spans() - dropped_before, 6);
        set_buffer_capacity(DEFAULT_BUFFER_CAPACITY);
    }

    #[test]
    fn slow_op_threshold_mirrors_roots_to_events() {
        let _g = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        let _s = TraceSession::start(1.0);
        let rb = std::sync::Arc::new(crate::RingBuffer::new(16));
        event::set_subscriber(Some(rb.clone()));
        set_slow_op_threshold_ns(1); // every op is "slow"
        {
            let _root = span("slow.root").unwrap();
            let _child = span("fast.child").unwrap();
            std::hint::black_box(0);
        }
        event::set_subscriber(None);
        let events = rb.drain();
        let slow: Vec<_> = events.iter().filter(|e| e.name == "obs.slow_op").collect();
        // Only the root is mirrored, not the child.
        assert_eq!(slow.len(), 1, "{events:?}");
        assert_eq!(slow[0].field("op"), Some(&FieldValue::Str("slow.root")));
        assert!(slow[0].field("dur_ns").is_some());
    }

    #[test]
    fn exporters_render_ids_and_fields() {
        let fixture = vec![
            SpanRecord {
                trace: TraceId(7),
                span: SpanId(1),
                parent: None,
                name: "core.attr",
                start_ns: 1_000,
                dur_ns: 2_500,
                fields: vec![
                    ("object", FieldValue::U64(3)),
                    ("attr", FieldValue::Owned("Len\"gth".into())),
                ],
            },
            SpanRecord {
                trace: TraceId(7),
                span: SpanId(2),
                parent: Some(SpanId(1)),
                name: "core.attr.hop",
                start_ns: 1_200,
                dur_ns: 800,
                fields: vec![("permeable", FieldValue::Str("yes"))],
            },
        ];
        let jsonl = export_jsonl(&fixture);
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.contains("\"parent\": null"));
        assert!(jsonl.contains("\"parent\": 1"));
        assert!(jsonl.contains("\\\"gth")); // escaped quote survives
        let chrome = export_chrome_trace(&fixture);
        assert!(chrome.starts_with("{\"traceEvents\": ["));
        assert!(chrome.contains("\"ph\": \"X\""));
        assert!(chrome.contains("\"ts\": 1.000"));
        assert!(chrome.contains("\"dur\": 2.500"));
        assert_eq!(chrome.matches('{').count(), chrome.matches('}').count());
    }
}
