//! A flight recorder for completed requests: a bounded, process-global
//! ring that answers "what did the slowest recent requests spend their
//! time on?" *after the fact*, without tracing having been enabled.
//!
//! Each entry is one finished request's phase timeline (the eight server
//! phases: recv → parse → queue → snapshot → lock → handle → serialize →
//! write) plus
//! its verb, outcome, and — when the client stamped one — the trace id
//! linking it to a span tree in the trace buffer.
//!
//! Retention keeps two views under one lock, both bounded:
//!
//! - **most-recent-M** ([`RECENT_CAP`] default): a FIFO ring of the last
//!   completed requests, whatever their speed — the "what is happening
//!   right now" view;
//! - **slowest-N** ([`SLOWEST_CAP`] default): the slowest requests *ever*
//!   (by total ns) since the last [`clear`], kept sorted slowest-first —
//!   the "what should I look at" view. A fast request never evicts a slow
//!   one; a new slow request evicts the fastest of the current N.
//!
//! The server dumps both views over the wire (`flight` verb; `ccdb flight`
//! renders them).

use std::collections::VecDeque;
use std::sync::{Mutex, OnceLock};

/// Names of the eight request phases, in timeline order. Indexes into
/// [`FlightRecord::phases`]. `snapshot` is MVCC snapshot acquisition
/// (shared-mode store pin); `lock` is exclusive write-lock and
/// transaction-lock wait.
pub const PHASE_NAMES: [&str; 8] = [
    "recv",
    "parse",
    "queue",
    "snapshot",
    "lock",
    "handle",
    "serialize",
    "write",
];

/// Default capacity of the most-recent ring.
pub const RECENT_CAP: usize = 128;
/// Default capacity of the slowest-retained set.
pub const SLOWEST_CAP: usize = 64;

/// One completed request, as remembered by the flight recorder.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightRecord {
    /// Request verb (`attr`, `set_attr`, `batch`, ...).
    pub verb: String,
    /// `"ok"` or the error kind (`"core"`, `"overloaded"`, ...).
    pub outcome: String,
    /// Wall-clock completion time, ns since the Unix epoch.
    pub end_unix_ns: u64,
    /// First byte read to response written, ns.
    pub total_ns: u64,
    /// Per-phase ns, indexed like [`PHASE_NAMES`].
    pub phases: [u64; 8],
    /// Client-supplied trace id, when the frame carried one.
    pub trace: Option<u64>,
    /// Server session the request arrived on.
    pub session: u64,
    /// Wire protocol the session had negotiated (1 = JSON, 2 = binary).
    pub proto: u8,
}

/// A copied-out view of the recorder.
#[derive(Clone, Debug)]
pub struct FlightSnapshot {
    /// Most recent completions, oldest first.
    pub recent: Vec<FlightRecord>,
    /// Slowest completions since the last clear, slowest first.
    pub slowest: Vec<FlightRecord>,
    /// Configured capacity of `recent`.
    pub recent_cap: usize,
    /// Configured capacity of `slowest`.
    pub slowest_cap: usize,
    /// Requests recorded since the last clear (≥ what is retained).
    pub recorded: u64,
}

struct RecorderState {
    recent: VecDeque<FlightRecord>,
    slowest: Vec<FlightRecord>,
    recent_cap: usize,
    slowest_cap: usize,
    recorded: u64,
}

fn recorder() -> &'static Mutex<RecorderState> {
    static REC: OnceLock<Mutex<RecorderState>> = OnceLock::new();
    REC.get_or_init(|| {
        Mutex::new(RecorderState {
            recent: VecDeque::new(),
            slowest: Vec::new(),
            recent_cap: RECENT_CAP,
            slowest_cap: SLOWEST_CAP,
            recorded: 0,
        })
    })
}

/// Commits one completed request. No-op when observability is disabled.
pub fn record(rec: FlightRecord) {
    if !crate::enabled() {
        return;
    }
    let mut r = recorder().lock().unwrap_or_else(|p| p.into_inner());
    r.recorded += 1;
    if r.recent.len() == r.recent_cap {
        r.recent.pop_front();
    }
    if r.recent_cap > 0 {
        r.recent.push_back(rec.clone());
    }
    if r.slowest_cap == 0 {
        return;
    }
    if r.slowest.len() == r.slowest_cap
        && r.slowest.last().is_some_and(|s| s.total_ns >= rec.total_ns)
    {
        return; // Faster than everything retained: not interesting.
    }
    // Insert in sorted (slowest-first) position; ties keep insertion order.
    let at = r.slowest.partition_point(|s| s.total_ns >= rec.total_ns);
    r.slowest.insert(at, rec);
    if r.slowest.len() > r.slowest_cap {
        r.slowest.pop();
    }
}

/// Copies out both retained views.
pub fn snapshot() -> FlightSnapshot {
    let r = recorder().lock().unwrap_or_else(|p| p.into_inner());
    FlightSnapshot {
        recent: r.recent.iter().cloned().collect(),
        slowest: r.slowest.clone(),
        recent_cap: r.recent_cap,
        slowest_cap: r.slowest_cap,
        recorded: r.recorded,
    }
}

/// Reconfigures the retention capacities, trimming existing entries to
/// fit (recent drops oldest, slowest drops fastest).
pub fn configure(recent_cap: usize, slowest_cap: usize) {
    let mut r = recorder().lock().unwrap_or_else(|p| p.into_inner());
    r.recent_cap = recent_cap;
    r.slowest_cap = slowest_cap;
    while r.recent.len() > recent_cap {
        r.recent.pop_front();
    }
    r.slowest.truncate(slowest_cap);
}

/// Forgets everything (tests; also resets the recorded count).
pub fn clear() {
    let mut r = recorder().lock().unwrap_or_else(|p| p.into_inner());
    r.recent.clear();
    r.slowest.clear();
    r.recorded = 0;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// The recorder is process-global; these tests serialize on it.
    static SERIAL: StdMutex<()> = StdMutex::new(());

    fn rec(verb: &str, total_ns: u64) -> FlightRecord {
        FlightRecord {
            verb: verb.into(),
            outcome: "ok".into(),
            end_unix_ns: 0,
            total_ns,
            phases: [total_ns / 8; 8],
            trace: None,
            session: 1,
            proto: 1,
        }
    }

    #[test]
    fn recent_is_a_fifo_ring_and_slowest_is_sorted() {
        let _g = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        clear();
        configure(4, 3);
        // One slow outlier early, then a stream of fast requests.
        record(rec("attr", 9_000));
        for i in 0..10 {
            record(rec("attr", 100 + i));
        }
        let s = snapshot();
        assert_eq!(s.recorded, 11);
        // Recent holds only the last 4, oldest first...
        let recent: Vec<u64> = s.recent.iter().map(|r| r.total_ns).collect();
        assert_eq!(recent, vec![106, 107, 108, 109]);
        // ...but the early outlier survives in the slowest view.
        let slowest: Vec<u64> = s.slowest.iter().map(|r| r.total_ns).collect();
        assert_eq!(slowest, vec![9_000, 109, 108]);
        clear();
        configure(RECENT_CAP, SLOWEST_CAP);
    }

    #[test]
    fn fast_requests_never_evict_slow_ones() {
        let _g = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        clear();
        configure(2, 2);
        record(rec("a", 500));
        record(rec("b", 400));
        record(rec("c", 10)); // Too fast to retain in `slowest`.
        let s = snapshot();
        let slowest: Vec<&str> = s.slowest.iter().map(|r| r.verb.as_str()).collect();
        assert_eq!(slowest, vec!["a", "b"]);
        assert_eq!(s.recent.len(), 2, "but it still shows up in recent");
        clear();
        configure(RECENT_CAP, SLOWEST_CAP);
    }
}
