//! Telemetry time-series: a background sampler that materializes the
//! history of every registered metric server-side.
//!
//! The [`TimeSeries`] store keeps one bounded ring per metric. Rings are
//! **delta-encoded**: each sampler tick appends the change since the
//! previous tick, not the absolute value —
//!
//! - counters store the per-tick increment (`u64`),
//! - gauges store the sampled value (`i64`; gauges are already levels),
//! - histograms store per-bucket count deltas, or a one-word `None` when
//!   the histogram did not move, so hundreds of idle series cost almost
//!   nothing per tick.
//!
//! Windowed queries (rates, sparkline point vectors, windowed quantiles)
//! are served directly from the rings: a rate is a sum of counter deltas
//! divided by the window, and a windowed quantile interpolates over the
//! summed bucket deltas — no client-side diffing of cumulative scrapes.
//!
//! The [global sampler](start_global_sampler) is a single background
//! thread snapshotting the [`crate::global`] registry into
//! [`global_series`] every `interval_ms` via one
//! [`Registry::snapshot`](crate::Registry::snapshot) pass. Retention
//! defaults to [`DEFAULT_RETENTION`] samples of
//! [`DEFAULT_INTERVAL_MS`] ms (≈ 2 minutes of history).

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, SystemTime};

use crate::metrics::HistogramSnapshot;
use crate::registry::{Registry, RegistrySnapshot};

/// Default sampler interval in milliseconds.
pub const DEFAULT_INTERVAL_MS: u64 = 250;

/// Default ring retention, in samples.
pub const DEFAULT_RETENTION: usize = 512;

/// What kind of metric a series tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// Monotonic counter; ring holds per-tick deltas.
    Counter,
    /// Level; ring holds sampled values.
    Gauge,
    /// Fixed-bucket histogram; ring holds per-tick bucket deltas.
    Histogram,
}

impl SeriesKind {
    /// Lower-case wire name (`counter` / `gauge` / `histogram`).
    pub fn as_str(self) -> &'static str {
        match self {
            SeriesKind::Counter => "counter",
            SeriesKind::Gauge => "gauge",
            SeriesKind::Histogram => "histogram",
        }
    }
}

/// One series' change over a query window, as returned by
/// [`TimeSeries::frame_since`].
#[derive(Debug, Clone)]
pub enum SeriesDelta {
    /// Counter increment over the window.
    Counter {
        /// Total increment across the window's ticks.
        delta: u64,
    },
    /// Gauge level at the window's end.
    Gauge {
        /// Most recently sampled value.
        value: i64,
    },
    /// Histogram movement over the window.
    Histogram {
        /// Bucket deltas summed across the window (same shape as a
        /// cumulative snapshot, so [`HistogramSnapshot::quantile`] works
        /// on it directly).
        delta: HistogramSnapshot,
    },
}

/// An incremental telemetry frame: every selected series' change between
/// two ticks. This is what the server's `watch` verb streams.
#[derive(Debug, Clone)]
pub struct TelemetryFrame {
    /// First tick covered (exclusive; the frame covers `(from_tick, tick]`).
    pub from_tick: u64,
    /// Last tick covered (the store's current tick).
    pub tick: u64,
    /// Sampler interval the ticks were taken at, in milliseconds.
    pub interval_ms: u64,
    /// Wall-clock time of the last covered sample (ms since Unix epoch).
    pub unix_ms: u64,
    /// `(name, delta)` per selected series, in name order. Counters with
    /// zero delta and histograms that did not move are omitted; gauges are
    /// always present (a level is news even when unchanged).
    pub series: Vec<(String, SeriesDelta)>,
}

struct CounterRing {
    prev: u64,
    deltas: VecDeque<u64>,
}

struct GaugeRing {
    values: VecDeque<i64>,
}

/// Per-tick histogram movement; `None` in the ring means "no change".
/// The count is not stored — queries derive it by summing the buckets.
struct HistDelta {
    buckets: Box<[u64]>,
    sum: u64,
}

struct HistRing {
    bounds: Arc<Vec<u64>>,
    prev_buckets: Vec<u64>,
    prev_sum: u64,
    deltas: VecDeque<Option<HistDelta>>,
}

struct Rings {
    counters: BTreeMap<String, CounterRing>,
    gauges: BTreeMap<String, GaugeRing>,
    hists: BTreeMap<String, HistRing>,
    /// Total samples taken since process start (not capped by retention).
    tick: u64,
    /// Wall clock of the latest sample, ms since the Unix epoch.
    last_unix_ms: u64,
    interval_ms: u64,
    retention: usize,
}

/// Bounded, delta-encoded store of metric history. One instance exists
/// per process ([`global_series`]); tests may build their own.
pub struct TimeSeries {
    rings: Mutex<Rings>,
}

impl TimeSeries {
    /// Creates an empty store with the given sampling interval and ring
    /// retention. `interval_ms` is clamped to ≥ 1, `retention` to ≥ 2.
    pub fn new(interval_ms: u64, retention: usize) -> Self {
        TimeSeries {
            rings: Mutex::new(Rings {
                counters: BTreeMap::new(),
                gauges: BTreeMap::new(),
                hists: BTreeMap::new(),
                tick: 0,
                last_unix_ms: 0,
                interval_ms: interval_ms.max(1),
                retention: retention.max(2),
            }),
        }
    }

    /// Reconfigures interval and retention. Existing rings are trimmed to
    /// the new retention; history is otherwise kept.
    pub fn configure(&self, interval_ms: u64, retention: usize) {
        let mut r = self.lock();
        r.interval_ms = interval_ms.max(1);
        r.retention = retention.max(2);
        let cap = r.retention;
        for s in r.counters.values_mut() {
            while s.deltas.len() > cap {
                s.deltas.pop_front();
            }
        }
        for s in r.gauges.values_mut() {
            while s.values.len() > cap {
                s.values.pop_front();
            }
        }
        for s in r.hists.values_mut() {
            while s.deltas.len() > cap {
                s.deltas.pop_front();
            }
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Rings> {
        self.rings.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Sampler interval in milliseconds.
    pub fn interval_ms(&self) -> u64 {
        self.lock().interval_ms
    }

    /// Ring retention in samples.
    pub fn retention(&self) -> usize {
        self.lock().retention
    }

    /// Samples taken so far.
    pub fn tick(&self) -> u64 {
        self.lock().tick
    }

    /// Takes one sample: a single [`Registry::snapshot`] pass folded into
    /// the rings. Called by the background sampler; callable directly in
    /// tests and benches for deterministic ticks.
    pub fn sample(&self, registry: &Registry) {
        let snap = registry.snapshot();
        self.ingest(&snap);
    }

    /// Folds an already-taken registry snapshot into the rings.
    pub fn ingest(&self, snap: &RegistrySnapshot) {
        let unix_ms = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let mut r = self.lock();
        let cap = r.retention;
        for (name, value) in &snap.counters {
            let s = r.counters.entry(name.clone()).or_insert(CounterRing {
                // First sight: baseline at the current value so history
                // accumulated before the series was tracked does not show
                // up as one giant spike.
                prev: *value,
                deltas: VecDeque::with_capacity(cap.min(64)),
            });
            // saturating: a reset_all() between ticks floors the delta at 0.
            s.deltas.push_back(value.saturating_sub(s.prev));
            s.prev = *value;
            if s.deltas.len() > cap {
                s.deltas.pop_front();
            }
        }
        for (name, value) in &snap.gauges {
            let s = r.gauges.entry(name.clone()).or_insert(GaugeRing {
                values: VecDeque::with_capacity(cap.min(64)),
            });
            s.values.push_back(*value);
            if s.values.len() > cap {
                s.values.pop_front();
            }
        }
        for (name, hs) in &snap.histograms {
            let s = r.hists.entry(name.clone()).or_insert(HistRing {
                bounds: Arc::new(hs.bounds.clone()),
                prev_buckets: hs.buckets.clone(),
                prev_sum: hs.sum,
                deltas: VecDeque::with_capacity(cap.min(16)),
            });
            let moved = hs.buckets != s.prev_buckets;
            let entry = if moved {
                let buckets: Box<[u64]> = hs
                    .buckets
                    .iter()
                    .zip(s.prev_buckets.iter().chain(std::iter::repeat(&0)))
                    .map(|(now, prev)| now.saturating_sub(*prev))
                    .collect();
                Some(HistDelta {
                    buckets,
                    sum: hs.sum.saturating_sub(s.prev_sum),
                })
            } else {
                None
            };
            s.deltas.push_back(entry);
            s.prev_buckets = hs.buckets.clone();
            s.prev_sum = hs.sum;
            if s.deltas.len() > cap {
                s.deltas.pop_front();
            }
        }
        r.tick += 1;
        r.last_unix_ms = unix_ms;
    }

    /// Per-tick counter increments for the last `n` samples, oldest
    /// first. `None` if the counter has never been sampled.
    pub fn counter_points(&self, name: &str, n: usize) -> Option<Vec<u64>> {
        let r = self.lock();
        let s = r.counters.get(name)?;
        let take = n.min(s.deltas.len());
        Some(
            s.deltas
                .iter()
                .skip(s.deltas.len() - take)
                .copied()
                .collect(),
        )
    }

    /// Total counter increment over the last `n` samples.
    pub fn counter_delta(&self, name: &str, n: usize) -> Option<u64> {
        self.counter_points(name, n).map(|p| p.iter().sum())
    }

    /// Sampled gauge values for the last `n` samples, oldest first.
    pub fn gauge_points(&self, name: &str, n: usize) -> Option<Vec<i64>> {
        let r = self.lock();
        let s = r.gauges.get(name)?;
        let take = n.min(s.values.len());
        Some(
            s.values
                .iter()
                .skip(s.values.len() - take)
                .copied()
                .collect(),
        )
    }

    /// Histogram movement over the last `n` samples, as a snapshot whose
    /// buckets are the summed deltas — quantiles over it describe only
    /// the window, not process lifetime. `None` if never sampled.
    pub fn hist_window(&self, name: &str, n: usize) -> Option<HistogramSnapshot> {
        let r = self.lock();
        let s = r.hists.get(name)?;
        let take = n.min(s.deltas.len());
        let mut buckets = vec![0u64; s.prev_buckets.len()];
        let mut sum = 0u64;
        for d in s.deltas.iter().skip(s.deltas.len() - take).flatten() {
            for (acc, b) in buckets.iter_mut().zip(d.buckets.iter()) {
                *acc += b;
            }
            sum += d.sum;
        }
        let count = buckets.iter().sum();
        Some(HistogramSnapshot {
            bounds: s.bounds.as_ref().clone(),
            buckets,
            sum,
            count,
        })
    }

    /// All series names matching `patterns` (see [`name_matches`]), with
    /// their kinds, in name order.
    pub fn names_matching(&self, patterns: &[String]) -> Vec<(String, SeriesKind)> {
        let r = self.lock();
        let mut out = Vec::new();
        for name in r.counters.keys() {
            if patterns.iter().any(|p| name_matches(p, name)) {
                out.push((name.clone(), SeriesKind::Counter));
            }
        }
        for name in r.gauges.keys() {
            if patterns.iter().any(|p| name_matches(p, name)) {
                out.push((name.clone(), SeriesKind::Gauge));
            }
        }
        for name in r.hists.keys() {
            if patterns.iter().any(|p| name_matches(p, name)) {
                out.push((name.clone(), SeriesKind::Histogram));
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Builds an incremental frame covering `(from_tick, current tick]`
    /// for every series matching `patterns`. The number of ring samples
    /// summed per series is `tick - from_tick`, capped by what the ring
    /// still holds. Quiet counters/histograms are omitted (that is the
    /// point of delta frames); gauges always report their level.
    pub fn frame_since(&self, from_tick: u64, patterns: &[String]) -> TelemetryFrame {
        let r = self.lock();
        let tick = r.tick;
        let window = (tick.saturating_sub(from_tick)) as usize;
        let mut series: Vec<(String, SeriesDelta)> = Vec::new();
        for (name, s) in &r.counters {
            if !patterns.iter().any(|p| name_matches(p, name)) {
                continue;
            }
            let take = window.min(s.deltas.len());
            let delta: u64 = s.deltas.iter().skip(s.deltas.len() - take).sum();
            if delta > 0 {
                series.push((name.clone(), SeriesDelta::Counter { delta }));
            }
        }
        for (name, s) in &r.gauges {
            if !patterns.iter().any(|p| name_matches(p, name)) {
                continue;
            }
            let value = s.values.back().copied().unwrap_or(0);
            series.push((name.clone(), SeriesDelta::Gauge { value }));
        }
        for (name, s) in &r.hists {
            if !patterns.iter().any(|p| name_matches(p, name)) {
                continue;
            }
            let take = window.min(s.deltas.len());
            let mut buckets = vec![0u64; s.prev_buckets.len()];
            let mut sum = 0u64;
            let mut moved = false;
            for d in s.deltas.iter().skip(s.deltas.len() - take).flatten() {
                moved = true;
                for (acc, b) in buckets.iter_mut().zip(d.buckets.iter()) {
                    *acc += b;
                }
                sum += d.sum;
            }
            if moved {
                let count = buckets.iter().sum();
                series.push((
                    name.clone(),
                    SeriesDelta::Histogram {
                        delta: HistogramSnapshot {
                            bounds: s.bounds.as_ref().clone(),
                            buckets,
                            sum,
                            count,
                        },
                    },
                ));
            }
        }
        series.sort_by(|a, b| a.0.cmp(&b.0));
        TelemetryFrame {
            from_tick,
            tick,
            interval_ms: r.interval_ms,
            unix_ms: r.last_unix_ms,
            series,
        }
    }
}

/// Series-name pattern match: exact, or prefix when the pattern ends in
/// `*` (`"ccdb_server_*"` matches every server series; `"*"` matches
/// everything).
pub fn name_matches(pattern: &str, name: &str) -> bool {
    match pattern.strip_suffix('*') {
        Some(prefix) => name.starts_with(prefix),
        None => pattern == name,
    }
}

/// The process-global time-series store the global sampler feeds.
pub fn global_series() -> &'static TimeSeries {
    static STORE: OnceLock<TimeSeries> = OnceLock::new();
    STORE.get_or_init(|| TimeSeries::new(DEFAULT_INTERVAL_MS, DEFAULT_RETENTION))
}

struct SamplerState {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

fn sampler_slot() -> &'static Mutex<Option<SamplerState>> {
    static SAMPLER: OnceLock<Mutex<Option<SamplerState>>> = OnceLock::new();
    SAMPLER.get_or_init(|| Mutex::new(None))
}

/// Starts the global sampler thread if it is not already running:
/// every `interval_ms` it folds one snapshot of [`crate::global`] into
/// [`global_series`]. Idempotent — a second caller (another in-process
/// server) joins the running sampler and its configuration. Returns
/// `true` if this call started the thread.
pub fn start_global_sampler(interval_ms: u64, retention: usize) -> bool {
    let mut slot = sampler_slot().lock().unwrap_or_else(|p| p.into_inner());
    if slot.is_some() {
        return false;
    }
    global_series().configure(interval_ms, retention);
    let stop = Arc::new(AtomicBool::new(false));
    let thread_stop = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("ccdb-sampler".into())
        .spawn(move || {
            let interval = Duration::from_millis(interval_ms.max(1));
            while !thread_stop.load(Ordering::Relaxed) {
                if crate::enabled() {
                    global_series().sample(crate::global());
                }
                std::thread::sleep(interval);
            }
        })
        .expect("spawn sampler thread");
    *slot = Some(SamplerState {
        stop,
        handle: Some(handle),
    });
    true
}

/// Stops and joins the global sampler thread, if running. History in
/// [`global_series`] is kept. Used by benches that need a sampler-off
/// baseline; servers normally leave the sampler running for the process
/// lifetime.
pub fn stop_global_sampler() {
    let state = {
        let mut slot = sampler_slot().lock().unwrap_or_else(|p| p.into_inner());
        slot.take()
    };
    if let Some(mut state) = state {
        state.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = state.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Whether the global sampler thread is currently running.
pub fn global_sampler_running() -> bool {
    sampler_slot()
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_rings_are_delta_encoded() {
        let reg = Registry::new();
        let ts = TimeSeries::new(100, 8);
        let c = reg.counter("ops_total");
        c.add(10);
        ts.sample(&reg); // first sight baselines at 10 → delta 0
        c.add(3);
        ts.sample(&reg);
        c.add(7);
        ts.sample(&reg);
        assert_eq!(ts.counter_points("ops_total", 10), Some(vec![0, 3, 7]));
        assert_eq!(ts.counter_delta("ops_total", 2), Some(10));
        assert_eq!(ts.counter_delta("ops_total", 1), Some(7));
        assert_eq!(ts.tick(), 3);
    }

    #[test]
    fn gauge_rings_hold_levels() {
        let reg = Registry::new();
        let ts = TimeSeries::new(100, 8);
        let g = reg.gauge("depth");
        g.set(5);
        ts.sample(&reg);
        g.set(-2);
        ts.sample(&reg);
        assert_eq!(ts.gauge_points("depth", 10), Some(vec![5, -2]));
        assert_eq!(ts.gauge_points("missing", 10), None);
    }

    #[test]
    fn hist_windows_sum_bucket_deltas() {
        let reg = Registry::new();
        let ts = TimeSeries::new(100, 8);
        let h = reg.histogram("lat_ns", &[10, 20]);
        h.observe(5);
        ts.sample(&reg); // baseline: first sight, delta None
        h.observe(15);
        h.observe(15);
        ts.sample(&reg);
        ts.sample(&reg); // idle tick → None in ring
        let w = ts.hist_window("lat_ns", 2).unwrap();
        assert_eq!(w.count, 2);
        assert_eq!(w.buckets, vec![0, 2, 0]);
        assert_eq!(w.sum, 30);
        // p50 of the window interpolates inside (10, 20].
        assert_eq!(w.quantile(0.5), Some(15.0));
        // Window of 1 covers only the idle tick.
        assert_eq!(ts.hist_window("lat_ns", 1).unwrap().count, 0);
    }

    #[test]
    fn retention_bounds_the_rings() {
        let reg = Registry::new();
        let ts = TimeSeries::new(100, 4);
        let c = reg.counter("ops_total");
        for _ in 0..10 {
            c.inc();
            ts.sample(&reg);
        }
        let points = ts.counter_points("ops_total", 100).unwrap();
        assert_eq!(points.len(), 4);
        assert!(points.iter().all(|&d| d == 1));
        assert_eq!(ts.tick(), 10);
    }

    #[test]
    fn reset_between_ticks_floors_deltas_at_zero() {
        let reg = Registry::new();
        let ts = TimeSeries::new(100, 8);
        let c = reg.counter("ops_total");
        c.add(5);
        ts.sample(&reg);
        reg.reset_all();
        ts.sample(&reg);
        c.add(2);
        ts.sample(&reg);
        assert_eq!(ts.counter_points("ops_total", 10), Some(vec![0, 0, 2]));
    }

    #[test]
    fn frames_carry_only_movement() {
        let reg = Registry::new();
        let ts = TimeSeries::new(100, 16);
        let busy = reg.counter("busy_total");
        let quiet = reg.counter("quiet_total");
        let g = reg.gauge("depth");
        let h = reg.histogram("lat_ns", &[10]);
        busy.add(1);
        quiet.add(1);
        ts.sample(&reg);
        let t0 = ts.tick();
        busy.add(4);
        g.set(9);
        h.observe(3);
        ts.sample(&reg);
        ts.sample(&reg);
        let frame = ts.frame_since(t0, &["*".into()]);
        assert_eq!(frame.from_tick, t0);
        assert_eq!(frame.tick, t0 + 2);
        let names: Vec<&str> = frame.series.iter().map(|(n, _)| n.as_str()).collect();
        // busy moved, quiet did not; the gauge always reports; the
        // histogram moved.
        assert!(names.contains(&"busy_total"), "{names:?}");
        assert!(!names.contains(&"quiet_total"), "{names:?}");
        assert!(names.contains(&"depth"), "{names:?}");
        assert!(names.contains(&"lat_ns"), "{names:?}");
        for (name, d) in &frame.series {
            match (name.as_str(), d) {
                ("busy_total", SeriesDelta::Counter { delta }) => assert_eq!(*delta, 4),
                ("depth", SeriesDelta::Gauge { value }) => assert_eq!(*value, 9),
                ("lat_ns", SeriesDelta::Histogram { delta }) => {
                    assert_eq!(delta.count, 1);
                    assert_eq!(delta.sum, 3);
                }
                other => panic!("unexpected series {other:?}"),
            }
        }
    }

    #[test]
    fn frame_patterns_filter_by_prefix() {
        let reg = Registry::new();
        let ts = TimeSeries::new(100, 8);
        reg.counter("ccdb_server_requests_total").add(1);
        reg.counter("ccdb_core_hops_total").add(1);
        ts.sample(&reg);
        reg.counter("ccdb_server_requests_total").add(2);
        reg.counter("ccdb_core_hops_total").add(2);
        ts.sample(&reg);
        let frame = ts.frame_since(0, &["ccdb_server_*".into()]);
        assert_eq!(frame.series.len(), 1);
        assert_eq!(frame.series[0].0, "ccdb_server_requests_total");
    }

    #[test]
    fn name_matching_rules() {
        assert!(name_matches("a_total", "a_total"));
        assert!(!name_matches("a_total", "a_total_2"));
        assert!(name_matches("a_*", "a_total"));
        assert!(name_matches("*", "anything"));
        assert!(!name_matches("b_*", "a_total"));
    }

    #[test]
    fn global_sampler_starts_and_stops() {
        // Serialize against other tests that may toggle the sampler.
        let started = start_global_sampler(10, 32);
        assert!(global_sampler_running());
        // Second start is a no-op join.
        assert!(!start_global_sampler(10, 32));
        std::thread::sleep(Duration::from_millis(50));
        stop_global_sampler();
        assert!(!global_sampler_running());
        if !started {
            // Another component owned the sampler; leave it stopped — the
            // owner restarts lazily.
            return;
        }
        assert!(global_series().tick() > 0);
    }

    #[test]
    fn names_matching_reports_kinds() {
        let reg = Registry::new();
        let ts = TimeSeries::new(100, 8);
        reg.counter("c_total").inc();
        reg.gauge("g");
        reg.histogram("h_ns", &[1]);
        ts.sample(&reg);
        let names = ts.names_matching(&["*".into()]);
        assert_eq!(
            names,
            vec![
                ("c_total".to_string(), SeriesKind::Counter),
                ("g".to_string(), SeriesKind::Gauge),
                ("h_ns".to_string(), SeriesKind::Histogram),
            ]
        );
    }
}
