//! Named metric registry with Prometheus-text and JSON exporters.
//!
//! The [`global`] registry is the process-wide sink instrumented crates
//! report into. Metrics are created lazily on first access and live for
//! the process lifetime; handles are `Arc`s, so instrumented code caches
//! them in statics and pays only the atomic update on the hot path.
//!
//! Every lock here recovers from poisoning (`unwrap_or_else(into_inner)`):
//! the maps only ever gain entries, so a panic mid-insert leaves them
//! structurally sound, and observability must keep working in exactly the
//! situations (a surviving handler panic in the server) where some thread
//! has already panicked.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, OnceLock};

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};

/// A point-in-time copy of every metric in a [`Registry`], taken in a
/// single pass per metric kind with no rendering work done under the
/// registry locks. All exporters (`metrics` verb, Prometheus scrape, the
/// time-series sampler) read through this type, so a counter and a gauge
/// derived from it can never be observed torn across one reply.
#[derive(Debug, Clone, Default)]
pub struct RegistrySnapshot {
    /// `(name, value)` for every counter, in name order.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, in name order.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` for every histogram, in name order.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// A process-global (or test-local) collection of named metrics.
///
/// Names follow `ccdb_<crate>_<subsystem>_<name>`; counters end in
/// `_total`, latency histograms in `_ns`.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// Creates an empty registry (tests; production code uses [`global`]).
    pub fn new() -> Self {
        Registry::default()
    }

    /// Returns the counter registered under `name`, creating it if absent.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(c) = map.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::new());
        map.insert(name.to_string(), Arc::clone(&c));
        c
    }

    /// Returns the gauge registered under `name`, creating it if absent.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(g) = map.get(name) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::new());
        map.insert(name.to_string(), Arc::clone(&g));
        g
    }

    /// Returns the histogram registered under `name`, creating it with
    /// `bounds` if absent. Bounds are fixed at first registration; later
    /// callers get the existing histogram regardless of the bounds they
    /// pass.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(h) = map.get(name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new(bounds));
        map.insert(name.to_string(), Arc::clone(&h));
        h
    }

    /// Looks up an existing counter without creating it.
    pub fn find_counter(&self, name: &str) -> Option<Arc<Counter>> {
        self.counters
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(name)
            .cloned()
    }

    /// Looks up an existing gauge without creating it.
    pub fn find_gauge(&self, name: &str) -> Option<Arc<Gauge>> {
        self.gauges
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(name)
            .cloned()
    }

    /// Looks up an existing histogram without creating it.
    pub fn find_histogram(&self, name: &str) -> Option<Arc<Histogram>> {
        self.histograms
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(name)
            .cloned()
    }

    /// Zeroes every registered metric. Handles held by instrumented code
    /// stay valid; only the values reset. Used by the CLI and benches to
    /// scope a snapshot to one workload.
    pub fn reset_all(&self) {
        for c in self
            .counters
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .values()
        {
            c.reset();
        }
        for g in self
            .gauges
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .values()
        {
            g.set(0);
        }
        for h in self
            .histograms
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .values()
        {
            h.reset();
        }
    }

    /// Copies every metric's current value out in one pass per metric
    /// kind. Values are read back-to-back under each map lock — no
    /// formatting, no allocation beyond the output vectors — so the
    /// snapshot is as close to a consistent cut as the relaxed-atomic
    /// metrics allow. Renderers format from the snapshot after the locks
    /// are released.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let counters = {
            let map = self.counters.lock().unwrap_or_else(|p| p.into_inner());
            map.iter().map(|(n, c)| (n.clone(), c.get())).collect()
        };
        let gauges = {
            let map = self.gauges.lock().unwrap_or_else(|p| p.into_inner());
            map.iter().map(|(n, g)| (n.clone(), g.get())).collect()
        };
        let histograms = {
            let map = self.histograms.lock().unwrap_or_else(|p| p.into_inner());
            map.iter().map(|(n, h)| (n.clone(), h.snapshot())).collect()
        };
        RegistrySnapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Renders every metric in the Prometheus text exposition format.
    ///
    /// Histograms render cumulative `_bucket{le="..."}` series plus
    /// `_sum` and `_count`, matching what a Prometheus scraper expects.
    /// Values come from one [`Registry::snapshot`], so a single scrape is
    /// internally consistent.
    pub fn render_prometheus(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::new();
        for (name, v) in &snap.counters {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, v) in &snap.gauges {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, s) in &snap.histograms {
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for (bound, n) in s.bounds.iter().zip(&s.buckets) {
                cumulative += n;
                let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
            }
            cumulative += s.buckets.last().copied().unwrap_or(0);
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
            let _ = writeln!(out, "{name}_sum {}", s.sum);
            let _ = writeln!(out, "{name}_count {}", s.count);
        }
        out
    }

    /// Renders every metric as a JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}` with
    /// each histogram as `{"bounds": [...], "buckets": [...], "sum": n,
    /// "count": n, "p50": x, "p95": x, "p99": x}` (quantiles estimated
    /// from the buckets; `null` when empty). Keys are sorted (BTreeMap
    /// order), so output is deterministic. Hand-rolled to keep this crate
    /// dependency-free.
    pub fn render_json(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, v)) in snap.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{name}\": {v}");
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, v)) in snap.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{name}\": {v}");
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (name, s)) in snap.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{name}\": {{\"bounds\": [");
            for (j, b) in s.bounds.iter().enumerate() {
                let _ = write!(out, "{}{b}", if j == 0 { "" } else { ", " });
            }
            out.push_str("], \"buckets\": [");
            for (j, n) in s.buckets.iter().enumerate() {
                let _ = write!(out, "{}{n}", if j == 0 { "" } else { ", " });
            }
            let _ = write!(out, "], \"sum\": {}, \"count\": {}", s.sum, s.count);
            for (label, q) in [("p50", 0.5), ("p95", 0.95), ("p99", 0.99)] {
                match s.quantile(q) {
                    Some(v) => {
                        let _ = write!(out, ", \"{label}\": {v:.1}");
                    }
                    None => {
                        let _ = write!(out, ", \"{label}\": null");
                    }
                }
            }
            out.push('}');
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Renders a human-oriented summary: counters and gauges as
    /// `name value`, histograms as one line with `count`, `sum`, and
    /// p50/p95/p99 estimates derived from the buckets — no raw bucket
    /// dumps (use [`Registry::render_prometheus`] for scrapers).
    pub fn render_text_summary(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::new();
        for (name, v) in &snap.counters {
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, v) in &snap.gauges {
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, s) in &snap.histograms {
            let _ = write!(out, "{name} count={} sum={}", s.count, s.sum);
            for (label, q) in [("p50", 0.5), ("p95", 0.95), ("p99", 0.99)] {
                match s.quantile(q) {
                    Some(v) => {
                        let _ = write!(out, " {label}={v:.1}");
                    }
                    None => {
                        let _ = write!(out, " {label}=-");
                    }
                }
            }
            out.push('\n');
        }
        out
    }
}

/// The process-global registry all ccdb crates report into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_are_shared() {
        let r = Registry::new();
        let a = r.counter("ccdb_test_x_total");
        let b = r.counter("ccdb_test_x_total");
        a.inc();
        b.add(2);
        assert_eq!(r.counter("ccdb_test_x_total").get(), 3);
    }

    #[test]
    fn histogram_bounds_fixed_at_first_registration() {
        let r = Registry::new();
        let a = r.histogram("ccdb_test_h", &[1, 2]);
        let b = r.histogram("ccdb_test_h", &[99]);
        assert_eq!(b.bounds(), &[1, 2]);
        a.observe(2);
        assert_eq!(b.count(), 1);
    }

    #[test]
    fn prometheus_rendering_shape() {
        let r = Registry::new();
        r.counter("ccdb_test_ops_total").add(7);
        r.gauge("ccdb_test_depth").set(-2);
        let h = r.histogram("ccdb_test_lat_ns", &[10, 20]);
        h.observe(5);
        h.observe(15);
        h.observe(100);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE ccdb_test_ops_total counter"));
        assert!(text.contains("ccdb_test_ops_total 7"));
        assert!(text.contains("ccdb_test_depth -2"));
        // Cumulative buckets: le=10 → 1, le=20 → 2, +Inf → 3.
        assert!(text.contains("ccdb_test_lat_ns_bucket{le=\"10\"} 1"));
        assert!(text.contains("ccdb_test_lat_ns_bucket{le=\"20\"} 2"));
        assert!(text.contains("ccdb_test_lat_ns_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("ccdb_test_lat_ns_sum 120"));
        assert!(text.contains("ccdb_test_lat_ns_count 3"));
    }

    #[test]
    fn json_rendering_is_valid_and_complete() {
        let r = Registry::new();
        r.counter("a_total").inc();
        r.gauge("g").set(4);
        r.histogram("h", &[1]).observe(9);
        let json = r.render_json();
        assert!(json.contains("\"a_total\": 1"));
        assert!(json.contains("\"g\": 4"));
        assert!(json.contains("\"bounds\": [1], \"buckets\": [0, 1], \"sum\": 9, \"count\": 1"));
        // Must parse as JSON (via the workspace serde shim in integration
        // tests; here a structural sanity check suffices).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn text_summary_has_quantiles_not_buckets() {
        let r = Registry::new();
        r.counter("ccdb_test_ops_total").add(3);
        let h = r.histogram("ccdb_test_lat_ns", &[100]);
        h.observe(50);
        h.observe(50);
        let text = r.render_text_summary();
        assert!(text.contains("ccdb_test_ops_total 3"));
        assert!(
            text.contains("ccdb_test_lat_ns count=2 sum=100 p50=50.0 p95=95.0 p99=99.0"),
            "{text}"
        );
        assert!(!text.contains("_bucket"), "{text}");
        // Empty histograms render placeholder quantiles.
        let r2 = Registry::new();
        r2.histogram("ccdb_test_empty", &[1]);
        assert!(r2.render_text_summary().contains("p50=- p95=- p99=-"));
    }

    #[test]
    fn json_includes_quantile_estimates() {
        let r = Registry::new();
        let h = r.histogram("h", &[10]);
        h.observe(5);
        let json = r.render_json();
        assert!(json.contains("\"p50\": 5.0"), "{json}");
        assert!(json.contains("\"p99\": 9.9"), "{json}");
        let r2 = Registry::new();
        r2.histogram("h", &[10]);
        assert!(r2.render_json().contains("\"p50\": null"));
    }

    #[test]
    fn reset_all_zeroes_but_keeps_handles() {
        let r = Registry::new();
        let c = r.counter("c_total");
        let h = r.histogram("h", &[1]);
        c.add(5);
        h.observe(1);
        r.reset_all();
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        c.inc();
        assert_eq!(r.counter("c_total").get(), 1);
    }

    #[test]
    fn snapshot_is_one_pass_and_sorted() {
        let r = Registry::new();
        r.counter("b_total").add(2);
        r.counter("a_total").add(1);
        r.gauge("g").set(-7);
        r.histogram("h", &[10]).observe(3);
        let s = r.snapshot();
        assert_eq!(
            s.counters,
            vec![("a_total".into(), 1), ("b_total".into(), 2)]
        );
        assert_eq!(s.gauges, vec![("g".into(), -7)]);
        assert_eq!(s.histograms.len(), 1);
        assert_eq!(s.histograms[0].0, "h");
        assert_eq!(s.histograms[0].1.count, 1);
        assert_eq!(s.histograms[0].1.sum, 3);
    }

    #[test]
    fn global_is_a_singleton() {
        let a = global().counter("ccdb_test_global_total");
        global().counter("ccdb_test_global_total").add(2);
        assert!(a.get() >= 2);
    }
}
