//! `ccdb top` and `ccdb flight`: live latency decomposition for a running
//! server, over the regular wire protocol (no side channel).
//!
//! - [`cmd_top`] scrapes the `metrics` verb (Prometheus text) twice per
//!   frame, reconstructs the histograms by de-cumulating the `_bucket`
//!   lines, and renders a refreshing text dashboard: request rate,
//!   per-verb p50/p95/p99, the seven-phase time bar, store-lock wait/hold
//!   quantiles, queue depth, and resolution-cache hit rate. `--once`
//!   prints a single frame (CI smoke); otherwise it refreshes until the
//!   connection drops.
//! - [`cmd_flight`] dumps the server's flight recorder (`flight` verb):
//!   the slowest-N and most-recent-M completed requests with their
//!   per-phase timelines.

use std::collections::BTreeMap;
use std::time::Duration;

use ccdb_server::Client;
use serde_json::Value as Json;

use crate::CliError;

fn net(e: impl std::fmt::Display) -> CliError {
    CliError {
        message: format!("cannot reach server: {e}"),
        code: 1,
    }
}

/// One histogram reconstructed from a Prometheus scrape: per-bucket
/// (upper bound, non-cumulative count), plus sum and count.
#[derive(Debug, Clone, Default)]
pub struct ScrapedHist {
    bounds: Vec<f64>,
    buckets: Vec<u64>,
    sum: f64,
    count: u64,
}

impl ScrapedHist {
    /// Quantile estimate: upper bound of the bucket where the q-th sample
    /// falls (the same estimator the registry uses). `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (bound, n) in self.bounds.iter().zip(&self.buckets) {
            cum += n;
            if cum >= target {
                return Some(*bound);
            }
        }
        // Overflow bucket: all we know is "above the largest bound".
        self.bounds.last().copied()
    }
}

/// A parsed Prometheus-text scrape: scalar series (counters and gauges)
/// plus reconstructed histograms.
#[derive(Debug, Clone, Default)]
pub struct Scrape {
    scalars: BTreeMap<String, f64>,
    hists: BTreeMap<String, ScrapedHist>,
}

impl Scrape {
    /// Parses the Prometheus text exposition format the server's
    /// `metrics` verb returns. `_bucket{le="..."}` series are
    /// de-cumulated back into per-bucket counts under the base name;
    /// `_sum`/`_count` attach to the same histogram; everything else is a
    /// scalar.
    pub fn parse(text: &str) -> Scrape {
        let mut s = Scrape::default();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((series, value)) = line.rsplit_once(' ') else {
                continue;
            };
            let Ok(value) = value.parse::<f64>() else {
                continue;
            };
            if let Some((name, rest)) = series.split_once("_bucket{le=\"") {
                let Some(bound) = rest.strip_suffix("\"}") else {
                    continue;
                };
                if bound == "+Inf" {
                    continue; // implied by _count
                }
                let Ok(bound) = bound.parse::<f64>() else {
                    continue;
                };
                let h = s.hists.entry(name.to_string()).or_default();
                h.bounds.push(bound);
                h.buckets.push(value as u64); // cumulative for now
            } else if let Some(name) = series.strip_suffix("_sum") {
                if s.hists.contains_key(name) {
                    s.hists.entry(name.to_string()).or_default().sum = value;
                } else {
                    s.scalars.insert(series.to_string(), value);
                }
            } else if let Some(name) = series.strip_suffix("_count") {
                if s.hists.contains_key(name) {
                    s.hists.entry(name.to_string()).or_default().count = value as u64;
                } else {
                    s.scalars.insert(series.to_string(), value);
                }
            } else {
                s.scalars.insert(series.to_string(), value);
            }
        }
        // De-cumulate the bucket counts.
        for h in s.hists.values_mut() {
            let mut prev = 0u64;
            for b in h.buckets.iter_mut() {
                let cum = *b;
                *b = cum.saturating_sub(prev);
                prev = cum;
            }
        }
        s
    }

    /// Scalar value, 0 when absent.
    pub fn scalar(&self, name: &str) -> f64 {
        self.scalars.get(name).copied().unwrap_or(0.0)
    }

    /// Histogram by base name, if scraped.
    pub fn hist(&self, name: &str) -> Option<&ScrapedHist> {
        self.hists.get(name)
    }
}

/// Formats nanoseconds compactly (`950ns`, `12.3µs`, `4.5ms`, `1.2s`).
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0}ns")
    } else if ns < 1_000_000.0 {
        format!("{:.1}µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.1}ms", ns / 1_000_000.0)
    } else {
        format!("{:.2}s", ns / 1_000_000_000.0)
    }
}

fn fmt_q(h: Option<&ScrapedHist>, q: f64) -> String {
    match h.and_then(|h| h.quantile(q)) {
        Some(v) => fmt_ns(v),
        None => "-".into(),
    }
}

/// The verbs that have non-zero phase totals in this scrape, derived from
/// the series names themselves so the CLI needs no verb list of its own.
fn active_verbs(s: &Scrape) -> Vec<String> {
    s.hists
        .keys()
        .filter_map(|k| {
            k.strip_prefix("ccdb_server_phase_")
                .and_then(|r| r.strip_suffix("_total_ns"))
        })
        .filter(|v| *v != "all")
        .filter(|v| {
            s.hist(&format!("ccdb_server_phase_{v}_total_ns"))
                .map(|h| h.count > 0)
                .unwrap_or(false)
        })
        .map(str::to_string)
        .collect()
}

/// Renders one dashboard frame from two scrapes `dt_secs` apart. Pure —
/// unit tests feed synthetic scrapes.
pub fn render_frame(addr: &str, info: &Json, prev: &Scrape, cur: &Scrape, dt_secs: f64) -> String {
    let mut out = String::new();
    let gets = |k: &str| {
        info.get(k)
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string()
    };
    let getu = |k: &str| info.get(k).and_then(Json::as_u64).unwrap_or(0);
    out.push_str(&format!(
        "ccdb top — {addr} | v{} up {:.0}s | workers {} | queue cap {} | rescache shards {}\n",
        gets("version"),
        getu("uptime_ms") as f64 / 1000.0,
        getu("workers"),
        getu("queue_depth"),
        getu("rescache_shards"),
    ));

    let d_req =
        cur.scalar("ccdb_server_requests_total") - prev.scalar("ccdb_server_requests_total");
    let rate = if dt_secs > 0.0 { d_req / dt_secs } else { 0.0 };
    let hits = cur.scalar("ccdb_core_rescache_hits_total");
    let misses = cur.scalar("ccdb_core_rescache_misses_total");
    let hit_rate = if hits + misses > 0.0 {
        100.0 * hits / (hits + misses)
    } else {
        0.0
    };
    out.push_str(&format!(
        "req/s {rate:.1} | queue depth {} | overloaded {} | rescache hit rate {hit_rate:.1}%\n",
        cur.scalar("ccdb_server_queue_depth"),
        cur.scalar("ccdb_server_overloaded_total"),
    ));
    out.push_str(&format!(
        "sessions: {} (v1 json {}, v2 binary {})\n",
        cur.scalar("ccdb_server_sessions_active"),
        cur.scalar("ccdb_server_sessions_v1"),
        cur.scalar("ccdb_server_sessions_v2"),
    ));

    // Store-lock contention probes (ccdb_core::lockprobe).
    out.push_str("store lock: ");
    for mode in ["shared", "exclusive"] {
        let wait = cur.hist(&format!("ccdb_core_storelock_{mode}_wait_ns"));
        let hold = cur.hist(&format!("ccdb_core_storelock_{mode}_hold_ns"));
        out.push_str(&format!(
            "{mode} wait p95 {} hold p95 {} (contended {}) | ",
            fmt_q(wait, 0.95),
            fmt_q(hold, 0.95),
            cur.scalar(&format!("ccdb_core_storelock_{mode}_contended_total")),
        ));
    }
    out.push_str(&format!(
        "waiters now {}\n",
        cur.scalar("ccdb_core_storelock_waiters")
    ));

    // Phase decomposition across all verbs: p95 per phase + a share-of-sum
    // bar that shows where the time actually goes.
    let phase_sums: Vec<(&str, f64)> = ccdb_obs::flight::PHASE_NAMES
        .iter()
        .map(|p| {
            (
                *p,
                cur.hist(&format!("ccdb_server_phase_all_{p}_ns"))
                    .map(|h| h.sum)
                    .unwrap_or(0.0),
            )
        })
        .collect();
    let total_sum: f64 = phase_sums.iter().map(|(_, s)| s).sum();
    out.push_str("phase p95: ");
    for p in ccdb_obs::flight::PHASE_NAMES {
        out.push_str(&format!(
            "{p} {} | ",
            fmt_q(cur.hist(&format!("ccdb_server_phase_all_{p}_ns")), 0.95)
        ));
    }
    out.push('\n');
    if total_sum > 0.0 {
        out.push_str("phase share: ");
        for (p, s) in &phase_sums {
            let pct = 100.0 * s / total_sum;
            let ticks = (pct / 2.5).round() as usize; // 40 chars = 100%
            out.push_str(&format!("{p} {pct:.0}% {} ", "#".repeat(ticks)));
        }
        out.push('\n');
    }

    // Per-verb latency table (first byte → response written).
    out.push_str(&format!(
        "{:<10} {:>10} {:>9} {:>9} {:>9}\n",
        "verb", "count", "p50", "p95", "p99"
    ));
    let mut verbs = active_verbs(cur);
    verbs.sort();
    for v in verbs {
        let h = cur.hist(&format!("ccdb_server_phase_{v}_total_ns"));
        let count = h.map(|h| h.count).unwrap_or(0);
        out.push_str(&format!(
            "{v:<10} {count:>10} {:>9} {:>9} {:>9}\n",
            fmt_q(h, 0.5),
            fmt_q(h, 0.95),
            fmt_q(h, 0.99),
        ));
    }
    out
}

fn scrape(c: &mut Client) -> Result<Scrape, CliError> {
    Ok(Scrape::parse(&c.metrics().map_err(net)?))
}

/// `top`: refreshing dashboard over the `metrics` verb. `--once` renders a
/// single frame and returns it; otherwise frames stream to stdout every
/// `interval_ms` until the connection drops.
pub fn cmd_top(addr: &str, once: bool, interval_ms: u64) -> Result<String, CliError> {
    let mut c = Client::connect(addr).map_err(net)?;
    c.set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(net)?;
    let info = c.ping_info().map_err(net)?;
    let mut prev = scrape(&mut c)?;
    let dt = Duration::from_millis(interval_ms.max(100));
    loop {
        std::thread::sleep(dt);
        let cur = scrape(&mut c)?;
        let frame = render_frame(addr, &info, &prev, &cur, dt.as_secs_f64());
        if once {
            return Ok(frame);
        }
        // ANSI clear + home, then the frame.
        print!("\x1b[2J\x1b[H{frame}");
        use std::io::Write;
        let _ = std::io::stdout().flush();
        prev = cur;
    }
}

/// Renders a flight-recorder dump (the `flight` verb's result) as text.
/// Pure — unit tests feed a synthetic payload.
pub fn render_flight(r: &Json) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "flight recorder: {} recorded | recent cap {} | slowest cap {}\n",
        r.get("recorded").and_then(Json::as_u64).unwrap_or(0),
        r.get("recent_cap").and_then(Json::as_u64).unwrap_or(0),
        r.get("slowest_cap").and_then(Json::as_u64).unwrap_or(0),
    ));
    for section in ["slowest", "recent"] {
        let records = r
            .get(section)
            .and_then(Json::as_array)
            .map(|a| a.to_vec())
            .unwrap_or_default();
        out.push_str(&format!("\n{section} ({}):\n", records.len()));
        out.push_str(&format!(
            "  {:<10} {:<10} {:>9}  {}\n",
            "verb", "outcome", "total", "phases"
        ));
        for rec in &records {
            let verb = rec.get("verb").and_then(Json::as_str).unwrap_or("?");
            let outcome = rec.get("outcome").and_then(Json::as_str).unwrap_or("?");
            let total = rec.get("total_ns").and_then(Json::as_u64).unwrap_or(0);
            let phases = rec.get("phases");
            let mut parts = Vec::new();
            for p in ccdb_obs::flight::PHASE_NAMES {
                let ns = phases
                    .and_then(|ph| ph.get(p))
                    .and_then(Json::as_u64)
                    .unwrap_or(0);
                parts.push(format!("{p} {}", fmt_ns(ns as f64)));
            }
            let trace = rec
                .get("trace")
                .and_then(Json::as_u64)
                .map(|t| format!(" trace={t}"))
                .unwrap_or_default();
            out.push_str(&format!(
                "  {verb:<10} {outcome:<10} {:>9}  {}{trace}\n",
                fmt_ns(total as f64),
                parts.join(" | "),
            ));
        }
    }
    out
}

/// `flight`: dump the server's flight recorder, as text or raw JSON.
pub fn cmd_flight(addr: &str, json: bool) -> Result<String, CliError> {
    let mut c = Client::connect(addr).map_err(net)?;
    c.set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(net)?;
    let r = c.flight().map_err(net)?;
    Ok(if json {
        r.to_json_string()
    } else {
        render_flight(&r)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCRAPE: &str = "\
# TYPE ccdb_server_requests_total counter
ccdb_server_requests_total 100
# TYPE ccdb_server_queue_depth gauge
ccdb_server_queue_depth 2
ccdb_server_sessions_active 3
ccdb_server_sessions_v1 1
ccdb_server_sessions_v2 2
# TYPE ccdb_core_rescache_hits_total counter
ccdb_core_rescache_hits_total 90
ccdb_core_rescache_misses_total 10
# TYPE ccdb_server_phase_attr_total_ns histogram
ccdb_server_phase_attr_total_ns_bucket{le=\"1000\"} 5
ccdb_server_phase_attr_total_ns_bucket{le=\"10000\"} 9
ccdb_server_phase_attr_total_ns_bucket{le=\"+Inf\"} 10
ccdb_server_phase_attr_total_ns_sum 50000
ccdb_server_phase_attr_total_ns_count 10
ccdb_server_phase_all_handle_ns_bucket{le=\"1000\"} 10
ccdb_server_phase_all_handle_ns_sum 9000
ccdb_server_phase_all_handle_ns_count 10
";

    #[test]
    fn scrape_parses_scalars_and_decumulates_buckets() {
        let s = Scrape::parse(SCRAPE);
        assert_eq!(s.scalar("ccdb_server_requests_total"), 100.0);
        assert_eq!(s.scalar("ccdb_server_queue_depth"), 2.0);
        let h = s.hist("ccdb_server_phase_attr_total_ns").unwrap();
        assert_eq!(h.buckets, vec![5, 4]); // de-cumulated, +Inf implied
        assert_eq!(h.count, 10);
        assert_eq!(h.sum, 50000.0);
        // p50 of 10 samples → 5th sample → first bucket's bound.
        assert_eq!(h.quantile(0.5), Some(1000.0));
        assert_eq!(h.quantile(0.95), Some(10000.0));
    }

    #[test]
    fn counter_sum_suffixes_stay_scalars() {
        // `_sum`-suffixed counters without buckets must not become
        // phantom histograms.
        let s = Scrape::parse("my_weird_sum 7\nmy_weird_count 3\n");
        assert_eq!(s.scalar("my_weird_sum"), 7.0);
        assert_eq!(s.scalar("my_weird_count"), 3.0);
        assert!(s.hist("my_weird").is_none());
    }

    #[test]
    fn frame_renders_rate_table_and_lock_lines() {
        let prev = Scrape::parse("ccdb_server_requests_total 50\n");
        let cur = Scrape::parse(SCRAPE);
        let info = serde_json::from_str(
            r#"{"version": "0.1.0", "uptime_ms": 5000, "workers": 4,
                "queue_depth": 64, "rescache_shards": 16}"#,
        )
        .unwrap();
        let frame = render_frame("127.0.0.1:7878", &info, &prev, &cur, 1.0);
        assert!(frame.contains("req/s 50.0"), "{frame}");
        assert!(frame.contains("rescache hit rate 90.0%"), "{frame}");
        assert!(frame.contains("store lock:"), "{frame}");
        assert!(frame.contains("workers 4"), "{frame}");
        assert!(
            frame.contains("sessions: 3 (v1 json 1, v2 binary 2)"),
            "{frame}"
        );
        // attr appears in the verb table with its scraped count.
        assert!(
            frame
                .lines()
                .any(|l| l.starts_with("attr") && l.contains("10")),
            "{frame}"
        );
        // The phase share bar covers the handle phase we fed in.
        assert!(frame.contains("handle 100%"), "{frame}");
    }

    #[test]
    fn flight_render_shows_phases_and_trace() {
        let payload = serde_json::from_str(
            r#"{"recorded": 3, "recent_cap": 128, "slowest_cap": 64,
                "slowest": [{"verb": "attr", "outcome": "ok", "total_ns": 12345,
                             "phases": {"recv": 100, "parse": 200, "queue": 300,
                                        "lock": 400, "handle": 10000,
                                        "serialize": 500, "write": 845},
                             "trace": 42, "session": 1}],
                "recent": []}"#,
        )
        .unwrap();
        let out = render_flight(&payload);
        assert!(out.contains("3 recorded"), "{out}");
        assert!(out.contains("attr"), "{out}");
        assert!(out.contains("handle 10.0µs"), "{out}");
        assert!(out.contains("trace=42"), "{out}");
        assert!(out.contains("12.3µs"), "{out}");
    }

    #[test]
    fn ns_formatting_scales() {
        assert_eq!(fmt_ns(950.0), "950ns");
        assert_eq!(fmt_ns(1_500.0), "1.5µs");
        assert_eq!(fmt_ns(2_500_000.0), "2.5ms");
        assert_eq!(fmt_ns(1_200_000_000.0), "1.20s");
    }
}
