//! `ccdb top` and `ccdb flight`: live latency decomposition for a running
//! server, over the regular wire protocol (no side channel).
//!
//! - [`cmd_top`] queries the server's `telemetry` verb each frame: the
//!   server computes windowed rates and quantiles from its own sampler
//!   ring, so the dashboard needs no client-side scrape-diffing and every
//!   number is a *windowed* figure, not a since-boot cumulative. Counter
//!   and gauge series come back with per-tick point vectors, rendered as
//!   sparklines (req/s, queue depth, worker utilization, rescache hit
//!   rate). `--once` prints a single frame (CI smoke); otherwise it
//!   refreshes until the connection drops.
//! - [`cmd_flight`] dumps the server's flight recorder (`flight` verb):
//!   the slowest-N and most-recent-M completed requests with their
//!   per-phase timelines.

use std::time::Duration;

use ccdb_server::Client;
use serde_json::Value as Json;

use crate::CliError;

fn net(e: impl std::fmt::Display) -> CliError {
    CliError {
        message: format!("cannot reach server: {e}"),
        code: 1,
    }
}

/// Formats nanoseconds compactly (`950ns`, `12.3µs`, `4.5ms`, `1.2s`).
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0}ns")
    } else if ns < 1_000_000.0 {
        format!("{:.1}µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.1}ms", ns / 1_000_000.0)
    } else {
        format!("{:.2}s", ns / 1_000_000_000.0)
    }
}

const SPARK: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders per-tick points as a sparkline scaled to the window maximum
/// (an all-zero window renders as a flat baseline).
pub fn sparkline(points: &[f64]) -> String {
    let max = points.iter().copied().fold(0.0_f64, f64::max);
    points
        .iter()
        .map(|p| {
            if max <= 0.0 || *p <= 0.0 {
                SPARK[0]
            } else {
                SPARK[(((p / max) * 7.0).round() as usize).min(7)]
            }
        })
        .collect()
}

/// Finds a series entry by name in a `telemetry` response.
fn series<'a>(t: &'a Json, name: &str) -> Option<&'a Json> {
    t.get("series")?
        .as_array()?
        .iter()
        .find(|s| s.get("name").and_then(Json::as_str) == Some(name))
}

/// A counter/gauge series' per-tick point vector, as f64.
fn points_f64(t: &Json, name: &str) -> Vec<f64> {
    series(t, name)
        .and_then(|s| s.get("points"))
        .and_then(Json::as_array)
        .map(|pts| pts.iter().filter_map(Json::as_f64).collect())
        .unwrap_or_default()
}

/// A counter series' windowed delta (0 when absent).
fn counter_delta(t: &Json, name: &str) -> f64 {
    series(t, name)
        .and_then(|s| s.get("delta"))
        .and_then(Json::as_f64)
        .unwrap_or(0.0)
}

/// A counter series' windowed per-second rate (0 when absent).
fn counter_rate(t: &Json, name: &str) -> f64 {
    series(t, name)
        .and_then(|s| s.get("rate"))
        .and_then(Json::as_f64)
        .unwrap_or(0.0)
}

/// A gauge series' latest value (0 when absent).
fn gauge_value(t: &Json, name: &str) -> f64 {
    series(t, name)
        .and_then(|s| s.get("value"))
        .and_then(Json::as_f64)
        .unwrap_or(0.0)
}

/// A windowed histogram field (`p50`/`p95`/`p99`/`sum`), `-` when absent.
fn hist_field(t: &Json, name: &str, field: &str) -> Option<f64> {
    series(t, name)
        .and_then(|s| s.get(field))
        .and_then(Json::as_f64)
}

fn fmt_q(t: &Json, name: &str, field: &str) -> String {
    match hist_field(t, name, field) {
        Some(v) => fmt_ns(v),
        None => "-".into(),
    }
}

/// Per-tick ratio sparkline: `num[i] / (num[i] + den[i])`, in percent.
fn ratio_points(num: &[f64], den: &[f64]) -> Vec<f64> {
    num.iter()
        .zip(den)
        .map(|(n, d)| {
            if n + d > 0.0 {
                100.0 * n / (n + d)
            } else {
                0.0
            }
        })
        .collect()
}

/// Renders one dashboard frame from a `ping` info object and a
/// `telemetry` response. Pure — unit tests feed synthetic payloads.
pub fn render_top(addr: &str, info: &Json, t: &Json) -> String {
    let mut out = String::new();
    let gets = |k: &str| {
        info.get(k)
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string()
    };
    let getu = |k: &str| info.get(k).and_then(Json::as_u64).unwrap_or(0);
    let window_ms = t.get("window_ms").and_then(Json::as_u64).unwrap_or(0);
    let interval_ms = t.get("interval_ms").and_then(Json::as_u64).unwrap_or(0);
    out.push_str(&format!(
        "ccdb top — {addr} | v{} up {:.0}s | workers {} | queue cap {} | rescache shards {}\n",
        gets("version"),
        getu("uptime_ms") as f64 / 1000.0,
        getu("workers"),
        getu("queue_depth"),
        getu("rescache_shards"),
    ));
    out.push_str(&format!(
        "window {:.1}s @ {interval_ms}ms samples (server-side ring, tick {})\n",
        window_ms as f64 / 1000.0,
        t.get("tick").and_then(Json::as_u64).unwrap_or(0),
    ));

    if t.get("sampler_running").and_then(Json::as_bool) == Some(false) {
        out.push_str("telemetry sampler disabled on this server — numbers below are empty\n");
    }

    // Headline rates with per-tick sparklines.
    let req_pts = points_f64(t, "ccdb_server_requests_total");
    out.push_str(&format!(
        "req/s {:>8.1} {}\n",
        counter_rate(t, "ccdb_server_requests_total"),
        sparkline(&req_pts),
    ));
    let depth_pts = points_f64(t, "ccdb_server_queue_depth");
    out.push_str(&format!(
        "queue depth {:>3.0} {}  overloaded/s {:.1}\n",
        gauge_value(t, "ccdb_server_queue_depth"),
        sparkline(&depth_pts),
        counter_rate(t, "ccdb_server_overloaded_total"),
    ));

    // Worker utilization: busy ns / (busy + idle) ns, windowed and per tick.
    let busy_pts = points_f64(t, "ccdb_server_workers_busy_ns_total");
    let idle_pts = points_f64(t, "ccdb_server_workers_idle_ns_total");
    let busy = counter_delta(t, "ccdb_server_workers_busy_ns_total");
    let idle = counter_delta(t, "ccdb_server_workers_idle_ns_total");
    let util = if busy + idle > 0.0 {
        100.0 * busy / (busy + idle)
    } else {
        0.0
    };
    out.push_str(&format!(
        "workers {util:>5.1}% busy {}  busy now {:.0}\n",
        sparkline(&ratio_points(&busy_pts, &idle_pts)),
        gauge_value(t, "ccdb_server_workers_busy"),
    ));

    // Resolution-cache hit rate over the window, with a per-tick sparkline.
    let hit_pts = points_f64(t, "ccdb_core_rescache_hits_total");
    let miss_pts = points_f64(t, "ccdb_core_rescache_misses_total");
    let hits = counter_delta(t, "ccdb_core_rescache_hits_total");
    let misses = counter_delta(t, "ccdb_core_rescache_misses_total");
    let hit_rate = if hits + misses > 0.0 {
        100.0 * hits / (hits + misses)
    } else {
        0.0
    };
    out.push_str(&format!(
        "rescache hit rate {hit_rate:>5.1}% {}\n",
        sparkline(&ratio_points(&hit_pts, &miss_pts)),
    ));

    out.push_str(&format!(
        "sessions: {} (v1 json {}, v2 binary {}) | watch subs {} frames/s {:.1}\n",
        gauge_value(t, "ccdb_server_sessions_active"),
        gauge_value(t, "ccdb_server_sessions_v1"),
        gauge_value(t, "ccdb_server_sessions_v2"),
        gauge_value(t, "ccdb_server_watch_subscribers"),
        counter_rate(t, "ccdb_server_watch_frames_total"),
    ));

    // Dispatch tiers: readiness backend and event-loop iteration rate,
    // the inline fast path's share of the request stream, and per-worker
    // steal rates from the sharded queue.
    let inline = counter_delta(t, "ccdb_server_inline_requests_total");
    let reqs = counter_delta(t, "ccdb_server_requests_total");
    let inline_share = if reqs > 0.0 {
        100.0 * inline / reqs
    } else {
        0.0
    };
    let mut steal_parts: Vec<String> = Vec::new();
    if let Some(all) = t.get("series").and_then(Json::as_array) {
        let mut workers: Vec<(usize, f64)> = all
            .iter()
            .filter_map(|s| {
                let name = s.get("name").and_then(Json::as_str)?;
                let idx: usize = name
                    .strip_prefix("ccdb_server_worker")?
                    .strip_suffix("_steals_total")?
                    .parse()
                    .ok()?;
                Some((idx, s.get("rate").and_then(Json::as_f64).unwrap_or(0.0)))
            })
            .collect();
        workers.sort_unstable_by_key(|(i, _)| *i);
        steal_parts = workers
            .iter()
            .map(|(i, r)| format!("w{i} {r:.1}"))
            .collect();
    }
    out.push_str(&format!(
        "dispatch: {} backend (inline reads {}) | loop {:.0} iters/s | \
         inline {inline_share:.1}% of requests ({:.1}/s fallback) | steals/s {:.1}{}\n",
        gets("backend"),
        if info
            .get("inline_reads")
            .and_then(Json::as_bool)
            .unwrap_or(false)
        {
            "on"
        } else {
            "off"
        },
        counter_rate(t, "ccdb_server_eventloop_iterations_total"),
        counter_rate(t, "ccdb_server_inline_fallback_total"),
        counter_rate(t, "ccdb_server_steals_total"),
        if steal_parts.is_empty() {
            String::new()
        } else {
            format!(" [{}]", steal_parts.join(" "))
        },
    ));

    // Scheduler wakeup latency: the queue's own enqueue→dequeue histogram.
    if let Some(w) = t.get("wakeup").filter(|w| !matches!(w, Json::Null)) {
        let q = |f: &str| {
            w.get(f)
                .and_then(Json::as_f64)
                .map(fmt_ns)
                .unwrap_or_else(|| "-".into())
        };
        out.push_str(&format!(
            "wakeup latency: {} dequeues | p50 {} p95 {} p99 {}\n",
            w.get("count").and_then(Json::as_u64).unwrap_or(0),
            q("p50_ns"),
            q("p95_ns"),
            q("p99_ns"),
        ));
    }

    // Store-lock contention probes, windowed.
    out.push_str("store lock: ");
    for mode in ["shared", "exclusive"] {
        out.push_str(&format!(
            "{mode} wait p95 {} hold p95 {} | ",
            fmt_q(t, &format!("ccdb_core_storelock_{mode}_wait_ns"), "p95"),
            fmt_q(t, &format!("ccdb_core_storelock_{mode}_hold_ns"), "p95"),
        ));
    }
    out.push('\n');

    // MVCC snapshot health: reader-visible staleness, publish cost, and
    // the windowed publish rate.
    out.push_str(&format!(
        "snapshot: v{:.0} age {:.0}ms | publish p95 {} ({:.1}/s) | txn begin/commit/abort/conflict {:.0}/{:.0}/{:.0}/{:.0}\n",
        gauge_value(t, "ccdb_core_snapshot_version"),
        gauge_value(t, "ccdb_core_snapshot_age_ms"),
        fmt_q(t, "ccdb_core_snapshot_publish_ns", "p95"),
        counter_rate(t, "ccdb_core_snapshot_publishes_total"),
        counter_delta(t, "ccdb_txn_wire_begins_total"),
        counter_delta(t, "ccdb_txn_wire_commits_total"),
        counter_delta(t, "ccdb_txn_wire_aborts_total"),
        counter_delta(t, "ccdb_txn_wire_conflicts_total"),
    ));

    // Phase decomposition across all verbs, from the windowed sums.
    let phase_sums: Vec<(&str, f64)> = ccdb_obs::flight::PHASE_NAMES
        .iter()
        .map(|p| {
            (
                *p,
                hist_field(t, &format!("ccdb_server_phase_all_{p}_ns"), "sum").unwrap_or(0.0),
            )
        })
        .collect();
    let total_sum: f64 = phase_sums.iter().map(|(_, s)| s).sum();
    out.push_str("phase p95: ");
    for p in ccdb_obs::flight::PHASE_NAMES {
        out.push_str(&format!(
            "{p} {} | ",
            fmt_q(t, &format!("ccdb_server_phase_all_{p}_ns"), "p95")
        ));
    }
    out.push('\n');
    if total_sum > 0.0 {
        out.push_str("phase share: ");
        for (p, s) in &phase_sums {
            let pct = 100.0 * s / total_sum;
            let ticks = (pct / 2.5).round() as usize; // 40 chars = 100%
            out.push_str(&format!("{p} {pct:.0}% {} ", "#".repeat(ticks)));
        }
        out.push('\n');
    }

    // Per-verb latency table, computed server-side over the same window.
    out.push_str(&format!(
        "{:<10} {:>10} {:>9} {:>9} {:>9}\n",
        "verb", "count", "p50", "p95", "p99"
    ));
    let mut verbs: Vec<&Json> = t
        .get("verbs")
        .and_then(Json::as_array)
        .map(|a| a.iter().collect())
        .unwrap_or_default();
    verbs.sort_by_key(|v| v.get("verb").and_then(Json::as_str).unwrap_or(""));
    for v in verbs {
        let name = v.get("verb").and_then(Json::as_str).unwrap_or("?");
        let count = v.get("count").and_then(Json::as_u64).unwrap_or(0);
        let q = |f: &str| {
            v.get(f)
                .and_then(Json::as_f64)
                .map(fmt_ns)
                .unwrap_or_else(|| "-".into())
        };
        out.push_str(&format!(
            "{name:<10} {count:>10} {:>9} {:>9} {:>9}\n",
            q("p50_ns"),
            q("p95_ns"),
            q("p99_ns"),
        ));
    }
    out
}

/// The series patterns `ccdb top` asks the server to digest: the server's
/// own metrics plus the core-layer cache and lock probes.
const TOP_SERIES: &[&str] = &[
    "ccdb_server_*",
    "ccdb_core_rescache_*",
    "ccdb_core_storelock_*",
    "ccdb_core_snapshot_*",
    "ccdb_txn_wire_*",
];

fn query_telemetry(c: &mut Client, points: u64) -> Result<Json, CliError> {
    c.telemetry(serde_json::json!({
        "points": points,
        "series": TOP_SERIES,
    }))
    .map_err(net)
}

/// `top`: refreshing dashboard over the `telemetry` verb. `--once`
/// renders a single frame and returns it; otherwise frames stream to
/// stdout every `interval_ms` until the connection drops.
pub fn cmd_top(addr: &str, once: bool, interval_ms: u64) -> Result<String, CliError> {
    let mut c = Client::connect(addr).map_err(net)?;
    c.set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(net)?;
    let info = c.ping_info().map_err(net)?;
    loop {
        let t = query_telemetry(&mut c, 32)?;
        let frame = render_top(addr, &info, &t);
        if once {
            return Ok(frame);
        }
        // ANSI clear + home, then the frame.
        print!("\x1b[2J\x1b[H{frame}");
        use std::io::Write;
        let _ = std::io::stdout().flush();
        std::thread::sleep(Duration::from_millis(interval_ms.max(100)));
    }
}

/// Renders a flight-recorder dump (the `flight` verb's result) as text.
/// Pure — unit tests feed a synthetic payload.
pub fn render_flight(r: &Json) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "flight recorder: {} recorded | recent cap {} | slowest cap {}\n",
        r.get("recorded").and_then(Json::as_u64).unwrap_or(0),
        r.get("recent_cap").and_then(Json::as_u64).unwrap_or(0),
        r.get("slowest_cap").and_then(Json::as_u64).unwrap_or(0),
    ));
    for section in ["slowest", "recent"] {
        let records = r
            .get(section)
            .and_then(Json::as_array)
            .map(|a| a.to_vec())
            .unwrap_or_default();
        out.push_str(&format!("\n{section} ({}):\n", records.len()));
        out.push_str(&format!(
            "  {:<10} {:<10} {:>9}  {}\n",
            "verb", "outcome", "total", "phases"
        ));
        for rec in &records {
            let verb = rec.get("verb").and_then(Json::as_str).unwrap_or("?");
            let outcome = rec.get("outcome").and_then(Json::as_str).unwrap_or("?");
            let total = rec.get("total_ns").and_then(Json::as_u64).unwrap_or(0);
            let phases = rec.get("phases");
            let mut parts = Vec::new();
            for p in ccdb_obs::flight::PHASE_NAMES {
                let ns = phases
                    .and_then(|ph| ph.get(p))
                    .and_then(Json::as_u64)
                    .unwrap_or(0);
                parts.push(format!("{p} {}", fmt_ns(ns as f64)));
            }
            let trace = rec
                .get("trace")
                .and_then(Json::as_u64)
                .map(|t| format!(" trace={t}"))
                .unwrap_or_default();
            out.push_str(&format!(
                "  {verb:<10} {outcome:<10} {:>9}  {}{trace}\n",
                fmt_ns(total as f64),
                parts.join(" | "),
            ));
        }
    }
    out
}

/// `flight`: dump the server's flight recorder, as text or raw JSON.
pub fn cmd_flight(addr: &str, json: bool) -> Result<String, CliError> {
    let mut c = Client::connect(addr).map_err(net)?;
    c.set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(net)?;
    let r = c.flight().map_err(net)?;
    Ok(if json {
        r.to_json_string()
    } else {
        render_flight(&r)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic `telemetry` response in the server's shape.
    fn payload() -> Json {
        serde_json::from_str(
            r#"{
            "tick": 40, "interval_ms": 250, "retention": 512,
            "points": 8, "window_ms": 2000, "window_samples": 8,
            "sampler_running": true,
            "series": [
                {"name": "ccdb_server_requests_total", "kind": "counter",
                 "delta": 100, "rate": 50.0,
                 "points": [0, 5, 10, 20, 25, 20, 15, 5]},
                {"name": "ccdb_server_queue_depth", "kind": "gauge",
                 "value": 2, "points": [0, 0, 1, 3, 4, 3, 2, 2]},
                {"name": "ccdb_server_sessions_active", "kind": "gauge",
                 "value": 3, "points": [3]},
                {"name": "ccdb_server_sessions_v1", "kind": "gauge",
                 "value": 1, "points": [1]},
                {"name": "ccdb_server_sessions_v2", "kind": "gauge",
                 "value": 2, "points": [2]},
                {"name": "ccdb_server_workers_busy_ns_total", "kind": "counter",
                 "delta": 900, "rate": 450.0,
                 "points": [100, 100, 100, 100, 100, 100, 100, 200]},
                {"name": "ccdb_server_workers_idle_ns_total", "kind": "counter",
                 "delta": 100, "rate": 50.0,
                 "points": [10, 10, 10, 10, 10, 10, 10, 30]},
                {"name": "ccdb_core_rescache_hits_total", "kind": "counter",
                 "delta": 90, "rate": 45.0, "points": [10, 10, 10, 15]},
                {"name": "ccdb_core_rescache_misses_total", "kind": "counter",
                 "delta": 10, "rate": 5.0, "points": [2, 1, 1, 1]},
                {"name": "ccdb_core_storelock_shared_wait_ns", "kind": "histogram",
                 "count": 40, "sum": 40000, "p50": 500.0, "p95": 2000.0, "p99": 4000.0},
                {"name": "ccdb_core_snapshot_version", "kind": "gauge",
                 "value": 17, "points": [17]},
                {"name": "ccdb_core_snapshot_age_ms", "kind": "gauge",
                 "value": 12, "points": [12]},
                {"name": "ccdb_core_snapshot_publish_ns", "kind": "histogram",
                 "count": 9, "sum": 90000, "p50": 6000.0, "p95": 30000.0, "p99": 50000.0},
                {"name": "ccdb_core_snapshot_publishes_total", "kind": "counter",
                 "delta": 9, "rate": 4.5, "points": [1, 1, 2, 5]},
                {"name": "ccdb_txn_wire_begins_total", "kind": "counter",
                 "delta": 6, "rate": 3.0, "points": [6]},
                {"name": "ccdb_txn_wire_commits_total", "kind": "counter",
                 "delta": 4, "rate": 2.0, "points": [4]},
                {"name": "ccdb_txn_wire_aborts_total", "kind": "counter",
                 "delta": 2, "rate": 1.0, "points": [2]},
                {"name": "ccdb_txn_wire_conflicts_total", "kind": "counter",
                 "delta": 1, "rate": 0.5, "points": [1]},
                {"name": "ccdb_server_phase_all_handle_ns", "kind": "histogram",
                 "count": 100, "sum": 90000, "p50": 700.0, "p95": 1000.0, "p99": 1500.0},
                {"name": "ccdb_server_eventloop_iterations_total", "kind": "counter",
                 "delta": 2400, "rate": 1200.0, "points": [300, 300, 300, 300]},
                {"name": "ccdb_server_inline_requests_total", "kind": "counter",
                 "delta": 60, "rate": 30.0, "points": [15, 15, 15, 15]},
                {"name": "ccdb_server_inline_fallback_total", "kind": "counter",
                 "delta": 4, "rate": 2.0, "points": [1, 1, 1, 1]},
                {"name": "ccdb_server_steals_total", "kind": "counter",
                 "delta": 12, "rate": 6.0, "points": [3, 3, 3, 3]},
                {"name": "ccdb_server_worker0_steals_total", "kind": "counter",
                 "delta": 8, "rate": 4.0, "points": [2, 2, 2, 2]},
                {"name": "ccdb_server_worker1_steals_total", "kind": "counter",
                 "delta": 4, "rate": 2.0, "points": [1, 1, 1, 1]}
            ],
            "verbs": [
                {"verb": "attr", "count": 80,
                 "p50_ns": 4000.0, "p95_ns": 9000.0, "p99_ns": 20000.0},
                {"verb": "ping", "count": 20,
                 "p50_ns": 1000.0, "p95_ns": 2000.0, "p99_ns": 2500.0}
            ],
            "wakeup": {"count": 100, "p50_ns": 1500.0,
                       "p95_ns": 8000.0, "p99_ns": 16000.0}
        }"#,
        )
        .unwrap()
    }

    fn info() -> Json {
        serde_json::from_str(
            r#"{"version": "0.1.0", "uptime_ms": 5000, "workers": 4,
                "queue_depth": 64, "rescache_shards": 16,
                "backend": "epoll", "inline_reads": true}"#,
        )
        .unwrap()
    }

    #[test]
    fn sparkline_scales_to_window_max() {
        let s = sparkline(&[0.0, 1.0, 2.0, 4.0, 8.0]);
        assert_eq!(s.chars().count(), 5);
        assert!(s.starts_with('▁'), "{s}");
        assert!(s.ends_with('█'), "{s}");
        // All-zero windows render flat instead of dividing by zero.
        assert_eq!(sparkline(&[0.0, 0.0]), "▁▁");
    }

    #[test]
    fn frame_renders_server_side_rates_sparklines_and_verbs() {
        let frame = render_top("127.0.0.1:7878", &info(), &payload());
        assert!(frame.contains("ccdb top"), "{frame}");
        assert!(frame.contains("req/s     50.0"), "{frame}");
        assert!(frame.contains('█'), "no sparkline in frame: {frame}");
        assert!(frame.contains("rescache hit rate  90.0%"), "{frame}");
        assert!(frame.contains("workers  90.0% busy"), "{frame}");
        // The per-verb table comes straight from the server-side digest.
        assert!(
            frame
                .lines()
                .any(|l| l.starts_with("attr") && l.contains("80") && l.contains("4.0µs")),
            "{frame}"
        );
        // Scheduler wakeup latency is surfaced.
        assert!(
            frame.contains("wakeup latency: 100 dequeues | p50 1.5µs"),
            "{frame}"
        );
        // Dispatch line: resolved backend, loop iteration rate, inline
        // share of the request stream, and per-worker steal rates.
        assert!(
            frame.contains("dispatch: epoll backend (inline reads on)"),
            "{frame}"
        );
        assert!(frame.contains("loop 1200 iters/s"), "{frame}");
        assert!(
            frame.contains("inline 60.0% of requests (2.0/s fallback)"),
            "{frame}"
        );
        assert!(frame.contains("steals/s 6.0 [w0 4.0 w1 2.0]"), "{frame}");
        assert!(frame.contains("shared wait p95 2.0µs"), "{frame}");
        assert!(frame.contains("window 2.0s @ 250ms samples"), "{frame}");
        // MVCC snapshot health line: version, age, publish p95 + rate,
        // and the wire-transaction counters.
        assert!(
            frame.contains("snapshot: v17 age 12ms | publish p95 30.0µs (4.5/s)"),
            "{frame}"
        );
        assert!(
            frame.contains("txn begin/commit/abort/conflict 6/4/2/1"),
            "{frame}"
        );
    }

    #[test]
    fn frame_flags_a_disabled_sampler() {
        let t = serde_json::from_str(
            r#"{"tick": 0, "interval_ms": 250, "window_ms": 0,
                "sampler_running": false, "series": [], "verbs": [],
                "wakeup": null}"#,
        )
        .unwrap();
        let frame = render_top("x", &info(), &t);
        assert!(frame.contains("sampler disabled"), "{frame}");
    }

    #[test]
    fn flight_render_shows_phases_and_trace() {
        let payload = serde_json::from_str(
            r#"{"recorded": 3, "recent_cap": 128, "slowest_cap": 64,
                "slowest": [{"verb": "attr", "outcome": "ok", "total_ns": 12345,
                             "phases": {"recv": 100, "parse": 200, "queue": 300,
                                        "lock": 400, "handle": 10000,
                                        "serialize": 500, "write": 845},
                             "trace": 42, "session": 1}],
                "recent": []}"#,
        )
        .unwrap();
        let out = render_flight(&payload);
        assert!(out.contains("3 recorded"), "{out}");
        assert!(out.contains("attr"), "{out}");
        assert!(out.contains("handle 10.0µs"), "{out}");
        assert!(out.contains("trace=42"), "{out}");
        assert!(out.contains("12.3µs"), "{out}");
    }

    #[test]
    fn ns_formatting_scales() {
        assert_eq!(fmt_ns(950.0), "950ns");
        assert_eq!(fmt_ns(1_500.0), "1.5µs");
        assert_eq!(fmt_ns(2_500_000.0), "2.5ms");
        assert_eq!(fmt_ns(1_200_000_000.0), "1.20s");
    }
}
