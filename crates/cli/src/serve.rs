//! `ccdb serve`: expose a schema's store over TCP, and `ccdb bench-net`:
//! a closed-loop load generator against that wire protocol.
//!
//! `serve` compiles the schema into a fresh [`SharedStore`] and blocks in
//! the server's drain loop until some client sends the `shutdown` verb
//! (there is no signal handling — the wire is the control plane, which
//! keeps the smoke tests portable).

use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use ccdb_core::schema::Catalog;
use ccdb_core::shared::SharedStore;
use ccdb_core::Value;
use ccdb_server::{Client, PollBackend, Server, ServerConfig};
use serde_json::Value as Json;

use crate::{load_catalog, CliError};

fn internal(e: impl std::fmt::Display) -> CliError {
    CliError {
        message: e.to_string(),
        code: 1,
    }
}

/// Flags shared by `serve` and accepted by `bench-net` where meaningful.
#[derive(Debug)]
pub struct ServeFlags {
    /// Bind address (`serve`) or target address (`bench-net`, optional).
    pub addr: Option<String>,
    /// Worker-pool size.
    pub threads: Option<usize>,
    /// Bounded queue capacity.
    pub queue_depth: Option<usize>,
    /// `bench-net`: concurrent client connections.
    pub clients: Option<usize>,
    /// `bench-net`: requests per client.
    pub requests: Option<u64>,
    /// `bench-net`: sub-requests per `batch` frame (1 = plain frames).
    pub batch: Option<u64>,
    /// `bench-net`: percentage of operations that are transmitter writes
    /// (0–100; the rest are resolved reads). Default 10.
    pub write_pct: Option<u8>,
    /// Wire protocol: `serve` pins the server's maximum (1 = JSON only),
    /// `bench-net` selects the client dialect. Default: v2.
    pub proto: Option<u8>,
    /// Event-loop readiness backend (`poll`, `epoll`, or `auto`).
    pub backend: Option<PollBackend>,
    /// `bench-net`: idle v2 sessions parked on the server for the whole
    /// measurement (the E15 "designers at workstations" crowd).
    pub idle_sessions: Option<usize>,
}

impl ServeFlags {
    /// Parses `--addr A --threads N --queue-depth N --clients N
    /// --requests N --batch N --write-pct N --proto v1|v2
    /// --backend poll|epoll|auto --idle-sessions N` in any order; rejects
    /// unknown flags and bad numbers.
    pub fn parse(args: &[String]) -> Result<ServeFlags, CliError> {
        let mut flags = ServeFlags {
            addr: None,
            threads: None,
            queue_depth: None,
            clients: None,
            requests: None,
            batch: None,
            write_pct: None,
            proto: None,
            backend: None,
            idle_sessions: None,
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut num = |name: &str| -> Result<u64, CliError> {
                let v = it.next().ok_or_else(|| CliError {
                    message: format!("{name} requires a value"),
                    code: 2,
                })?;
                v.parse().map_err(|_| CliError {
                    message: format!("{name}: `{v}` is not a positive integer"),
                    code: 2,
                })
            };
            match flag.as_str() {
                "--addr" => {
                    flags.addr = Some(
                        it.next()
                            .ok_or_else(|| CliError {
                                message: "--addr requires a value".into(),
                                code: 2,
                            })?
                            .clone(),
                    )
                }
                "--threads" => flags.threads = Some(num("--threads")?.max(1) as usize),
                "--queue-depth" => flags.queue_depth = Some(num("--queue-depth")?.max(1) as usize),
                "--clients" => flags.clients = Some(num("--clients")?.max(1) as usize),
                "--requests" => flags.requests = Some(num("--requests")?.max(1)),
                "--batch" => flags.batch = Some(num("--batch")?.max(1)),
                "--write-pct" => {
                    let pct = num("--write-pct")?;
                    if pct > 100 {
                        return Err(CliError {
                            message: format!("--write-pct: `{pct}` is not in 0..=100"),
                            code: 2,
                        });
                    }
                    flags.write_pct = Some(pct as u8);
                }
                "--backend" => {
                    let v = it.next().ok_or_else(|| CliError {
                        message: "--backend requires a value (poll, epoll, or auto)".into(),
                        code: 2,
                    })?;
                    flags.backend = Some(PollBackend::parse(v).ok_or_else(|| CliError {
                        message: format!("--backend: `{v}` is not poll, epoll, or auto"),
                        code: 2,
                    })?);
                }
                "--idle-sessions" => flags.idle_sessions = Some(num("--idle-sessions")? as usize),
                "--proto" => {
                    let v = it.next().ok_or_else(|| CliError {
                        message: "--proto requires a value (v1 or v2)".into(),
                        code: 2,
                    })?;
                    flags.proto = Some(match v.as_str() {
                        "v1" | "1" => 1,
                        "v2" | "2" => 2,
                        other => {
                            return Err(CliError {
                                message: format!("--proto: `{other}` is not v1 or v2"),
                                code: 2,
                            })
                        }
                    });
                }
                other => {
                    return Err(CliError {
                        message: format!("unknown flag `{other}`"),
                        code: 2,
                    })
                }
            }
        }
        Ok(flags)
    }

    fn config(&self, default_addr: &str) -> ServerConfig {
        ServerConfig {
            addr: self.addr.clone().unwrap_or_else(|| default_addr.into()),
            workers: self.threads.unwrap_or(4),
            queue_depth: self.queue_depth.unwrap_or(64),
            max_proto: self.proto.unwrap_or(ccdb_server::PROTOCOL_V2),
            poll_backend: self.backend.unwrap_or_default(),
            ..ServerConfig::default()
        }
    }
}

/// `serve`: bind, announce, block until a client sends `shutdown`.
pub fn cmd_serve(source: &str, flags: &ServeFlags) -> Result<String, CliError> {
    let catalog = load_catalog(source)?;
    let store = SharedStore::new(catalog).map_err(internal)?;
    let cfg = flags.config("127.0.0.1:7878");
    let server = Server::start(cfg.clone(), store).map_err(|e| CliError {
        message: format!("cannot bind `{}`: {e}", cfg.addr),
        code: 2,
    })?;
    // Announce before blocking so scripted callers (CI smoke) can wait for
    // this line, then connect.
    println!(
        "ccdb-server listening on {} ({} workers, queue depth {}, max proto v{}, {} backend)",
        server.local_addr(),
        cfg.workers,
        cfg.queue_depth,
        cfg.max_proto,
        server.backend()
    );
    let _ = std::io::stdout().flush();
    server.run_until_shutdown();
    Ok("shutdown complete\n".to_string())
}

/// The transmitter/relationship/inheritor triple `bench-net` drives:
/// the first inheritance relationship whose transmitter declares an
/// integer permeable attribute (the adaptation path the paper cares
/// about), plus any type that can be its inheritor.
fn bench_triple(catalog: &Catalog) -> Result<(String, String, String, String), CliError> {
    for rel in catalog.inher_rel_type_names() {
        let def = catalog.inher_rel_type(rel).map_err(internal)?;
        let t_def = catalog
            .object_type(&def.transmitter_type)
            .map_err(internal)?;
        let Some(attr) = def.inheriting.iter().find(|item| {
            t_def
                .attributes
                .iter()
                .any(|a| &a.name == *item && matches!(a.domain, ccdb_core::domain::Domain::Int))
        }) else {
            continue;
        };
        let Some(inh_ty) = catalog
            .object_type_names()
            .into_iter()
            .find(|t| {
                catalog
                    .object_type(t)
                    .map(|d| d.inheritor_in.iter().any(|r| r == rel))
                    .unwrap_or(false)
            })
            .map(str::to_string)
        else {
            continue;
        };
        return Ok((
            def.transmitter_type.clone(),
            rel.to_string(),
            inh_ty,
            attr.clone(),
        ));
    }
    Err(CliError {
        message: "bench-net: schema has no inheritance relationship with an integer \
                  permeable attribute"
            .into(),
        code: 1,
    })
}

/// Backoff window for `overloaded` retries starts here, doubles per
/// consecutive rejection, and is capped at [`BACKOFF_CAP_US`]. The actual
/// sleep is drawn uniformly from the window ("full jitter"), so a herd of
/// rejected clients does not re-arrive in lockstep and hammer the queue.
const BACKOFF_BASE_US: u64 = 500;
const BACKOFF_CAP_US: u64 = 50_000;

/// One client's closed loop: create its own transmitter/inheritor pair,
/// then alternate resolved reads with occasional transmitter writes.
/// With `batch > 1` the same operation mix is shipped as `batch`
/// sub-requests per wire frame (one admission, one guard per frame).
/// Returns (per-frame latencies ns, overloaded retries, server errors).
///
/// Error accounting: `overloaded` responses are retried after a capped
/// exponential backoff with jitter (backpressure is not a failure); any
/// other *server* error response is counted and the loop moves on — a
/// healthy run reports zero. Transport failures (socket or protocol)
/// abort the client.
fn bench_client(
    addr: std::net::SocketAddr,
    triple: &(String, String, String, String),
    requests: u64,
    batch: u64,
    write_pct: u8,
    proto: u8,
    seed: u64,
) -> Result<(Vec<u64>, u64, u64), String> {
    let (t_ty, rel, inh_ty, attr) = triple;
    let mut c = Client::connect_proto(addr, proto).map_err(|e| e.to_string())?;
    c.set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| e.to_string())?;
    let mut overloaded = 0u64;
    let mut errors = 0u64;
    // Cheap xorshift64 for the backoff jitter; seeded per client so the
    // sleep sequences decorrelate without pulling in an RNG dependency.
    let mut jitter = (seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)) | 1;
    // Ok(true) = succeeded; Ok(false) = server rejected the op (counted).
    let mut with_retry =
        |f: &mut dyn FnMut(&mut Client) -> Result<(), ccdb_server::ClientError>,
         c: &mut Client|
         -> Result<bool, String> {
            let mut attempt = 0u32;
            loop {
                match f(c) {
                    Ok(()) => return Ok(true),
                    Err(e) if e.is_overloaded() => {
                        overloaded += 1;
                        let window = (BACKOFF_BASE_US << attempt.min(16)).min(BACKOFF_CAP_US);
                        jitter ^= jitter << 13;
                        jitter ^= jitter >> 7;
                        jitter ^= jitter << 17;
                        thread::sleep(Duration::from_micros(1 + jitter % window));
                        attempt += 1;
                    }
                    Err(ccdb_server::ClientError::Server { .. }) => {
                        errors += 1;
                        return Ok(false);
                    }
                    Err(e) => return Err(e.to_string()),
                }
            }
        };

    let mut transmitter = None;
    if !with_retry(
        &mut |c| {
            transmitter = Some(c.create(t_ty, &[(attr, Value::Int(seed as i64))])?);
            Ok(())
        },
        &mut c,
    )? {
        return Err("bench-net: setup create rejected by server".into());
    }
    let transmitter = transmitter.unwrap();
    let mut inheritor = None;
    if !with_retry(
        &mut |c| {
            inheritor = Some(c.create(inh_ty, &[])?);
            Ok(())
        },
        &mut c,
    )? {
        return Err("bench-net: setup create rejected by server".into());
    }
    let inheritor = inheritor.unwrap();
    if !with_retry(
        &mut |c| c.bind(rel, transmitter, inheritor).map(|_| ()),
        &mut c,
    )? {
        return Err("bench-net: setup bind rejected by server".into());
    }

    // The n-th operation of the mix: `write_pct`% transmitter writes (the
    // adaptation path), the rest resolved reads through the binding.
    // Shared by the plain and batched loops so both ship the identical
    // workload.
    let is_write = move |n: u64| n % 100 < write_pct as u64;
    let op_params = |n: u64| -> (&'static str, Json) {
        if is_write(n) {
            (
                "set_attr",
                Json::Object(vec![
                    ("obj".into(), Json::UInt(transmitter.0)),
                    ("name".into(), Json::String(attr.clone())),
                    (
                        "value".into(),
                        serde_json::to_value(&Value::Int((seed + n) as i64)),
                    ),
                ]),
            )
        } else {
            (
                "attr",
                Json::Object(vec![
                    ("obj".into(), Json::UInt(inheritor.0)),
                    ("name".into(), Json::String(attr.clone())),
                ]),
            )
        }
    };

    let mut latencies = Vec::with_capacity(requests.div_ceil(batch.max(1)) as usize);
    if batch <= 1 {
        for n in 0..requests {
            let start = Instant::now();
            if is_write(n) {
                with_retry(
                    &mut |c| c.set_attr(transmitter, attr, Value::Int((seed + n) as i64)),
                    &mut c,
                )?;
            } else {
                with_retry(&mut |c| c.attr(inheritor, attr).map(|_| ()), &mut c)?;
            }
            latencies.push(start.elapsed().as_nanos() as u64);
        }
    } else {
        let mut n = 0;
        while n < requests {
            let frame: Vec<u64> = (n..(n + batch).min(requests)).collect();
            let start = Instant::now();
            with_retry(
                &mut |c| {
                    let subs = frame.iter().map(|&k| op_params(k)).collect();
                    for slot in c.batch(subs)? {
                        slot?;
                    }
                    Ok(())
                },
                &mut c,
            )?;
            latencies.push(start.elapsed().as_nanos() as u64);
            n += batch;
        }
    }
    Ok((latencies, overloaded, errors))
}

/// Queries the target's telemetry ring for the scheduler's
/// enqueue→dequeue wakeup-latency digest over (at least) the bench
/// window. Returns a ready-to-print fragment; a server whose sampler has
/// not ticked yet (very short runs) reports that instead of numbers.
fn wakeup_summary(addr: std::net::SocketAddr, elapsed: Duration) -> String {
    let digest = (|| -> Result<Json, ccdb_server::ClientError> {
        let mut c = Client::connect(addr)?;
        c.set_read_timeout(Some(Duration::from_secs(5)))?;
        c.telemetry(serde_json::json!({
            "window_ms": (elapsed.as_millis() as u64).max(1_000),
            "series": &["ccdb_server_wakeup_latency_ns"][..],
        }))
    })();
    let fmt = |w: &Json, f: &str| {
        w.get(f)
            .and_then(Json::as_f64)
            .map(|v| format!("{v:.0}"))
            .unwrap_or_else(|| "-".into())
    };
    match digest {
        Ok(t) => match t.get("wakeup") {
            Some(w) if w.get("count").and_then(Json::as_u64).unwrap_or(0) > 0 => format!(
                "p50={} p95={} (ns enqueue→dequeue, {} dequeues sampled)",
                fmt(w, "p50_ns"),
                fmt(w, "p95_ns"),
                w.get("count").and_then(Json::as_u64).unwrap_or(0),
            ),
            _ => "no samples in window (sampler idle or run shorter than one tick)".into(),
        },
        Err(e) => format!("unavailable ({e})"),
    }
}

/// Parks `n` idle v2 sessions on the target: each completes the HELLO_V2
/// exchange and then sits silent, so the event loop carries their
/// registered-but-never-ready fds for the whole measurement (the E15
/// "designers at idle workstations" crowd, reproducible from one
/// command). Returns the held sockets — dropping them ends the crowd —
/// plus the count of connect/handshake failures.
fn park_idle_sessions(addr: std::net::SocketAddr, n: usize) -> (Vec<std::net::TcpStream>, usize) {
    if n == 0 {
        return (Vec::new(), 0);
    }
    // Headroom over the crowd: each session is one fd here plus one
    // server-side, and the bench clients need their own on top.
    let _ = polling::raise_nofile_limit((n as u64 * 3) + 2_000);
    let mut held = Vec::with_capacity(n);
    let mut failures = 0usize;
    for _ in 0..n {
        match std::net::TcpStream::connect(addr) {
            Ok(mut s) => {
                let handshake = s
                    .set_read_timeout(Some(Duration::from_secs(5)))
                    .and_then(|()| s.write_all(&ccdb_server::HELLO_V2))
                    .and_then(|()| {
                        let mut ack = [0u8; 4];
                        std::io::Read::read_exact(&mut s, &mut ack)
                    });
                match handshake {
                    Ok(()) => held.push(s),
                    Err(_) => failures += 1,
                }
            }
            Err(_) => failures += 1,
        }
    }
    (held, failures)
}

fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// `bench-net`: drive the wire protocol with N concurrent clients.
///
/// Without `--addr` an in-process server is started on an ephemeral port
/// (self-contained benchmark); with `--addr` an already-running `ccdb
/// serve` is the target.
pub fn cmd_bench_net(source: &str, flags: &ServeFlags) -> Result<String, CliError> {
    let catalog = load_catalog(source)?;
    let triple = bench_triple(&catalog)?;
    let clients = flags.clients.unwrap_or(8);
    let requests = flags.requests.unwrap_or(200);
    let batch = flags.batch.unwrap_or(1);
    let write_pct = flags.write_pct.unwrap_or(10);
    let proto = flags.proto.unwrap_or(ccdb_server::PROTOCOL_V2);

    // Own server only when no target was given.
    let (addr, server) = match &flags.addr {
        Some(a) => {
            let addr = a.parse().map_err(|_| CliError {
                message: format!("--addr: `{a}` is not a socket address"),
                code: 2,
            })?;
            (addr, None)
        }
        None => {
            let store = SharedStore::new(catalog.clone()).map_err(internal)?;
            let mut cfg = flags.config("127.0.0.1:0");
            cfg.addr = "127.0.0.1:0".into(); // never collide on a fixed port
            let server = Server::start(cfg, store).map_err(internal)?;
            (server.local_addr(), Some(server))
        }
    };

    // The idle crowd must be in place before measurement starts: its
    // point is to load the event loop's readiness scan while the timed
    // clients run.
    let idle_requested = flags.idle_sessions.unwrap_or(0);
    let (idle_crowd, idle_failures) = park_idle_sessions(addr, idle_requested);

    let total_overloaded = Arc::new(AtomicU64::new(0));
    let total_errors = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|i| {
            let triple = triple.clone();
            let total_overloaded = Arc::clone(&total_overloaded);
            let total_errors = Arc::clone(&total_errors);
            thread::spawn(move || -> Result<Vec<u64>, String> {
                let (lat, over, errs) = bench_client(
                    addr,
                    &triple,
                    requests,
                    batch,
                    write_pct,
                    proto,
                    i as u64 * 1000,
                )?;
                total_overloaded.fetch_add(over, Ordering::Relaxed);
                total_errors.fetch_add(errs, Ordering::Relaxed);
                Ok(lat)
            })
        })
        .collect();

    let mut all = Vec::with_capacity(clients * requests as usize);
    let mut failed = 0usize;
    for h in handles {
        match h.join() {
            Ok(Ok(lat)) => all.extend(lat),
            Ok(Err(msg)) => {
                failed += 1;
                eprintln!("ccdb: bench-net client failed: {msg}");
            }
            Err(_) => failed += 1,
        }
    }
    let elapsed = started.elapsed();
    // Pull the scheduler's wakeup-latency digest while the server is
    // still up: it comes from the server-side telemetry ring, not from
    // anything the clients measured. The idle crowd stays parked until
    // after the clock stops so it loads the whole measurement.
    let wakeup = wakeup_summary(addr, elapsed);
    let idle_parked = idle_crowd.len();
    drop(idle_crowd);
    if let Some(server) = server {
        server.shutdown();
    }
    if failed > 0 {
        return Err(CliError {
            message: format!("bench-net: {failed} client(s) failed"),
            code: 1,
        });
    }

    all.sort_unstable();
    let frames = all.len() as u64;
    // Throughput counts operations (sub-requests), so batched and plain
    // runs are directly comparable; latency quantiles are per frame.
    let ops = clients as u64 * requests;
    let rps = ops as f64 / elapsed.as_secs_f64().max(1e-9);
    let (t_ty, rel, inh_ty, attr) = &triple;
    Ok(format!(
        "bench-net: {clients} clients x {requests} requests ({t_ty} -[{rel}]-> {inh_ty}, attr {attr})\n\
           protocol   : v{proto} ({})\n\
           requests   : {ops}\n\
           mix        : {write_pct}% writes / {}% resolved reads\n\
           batching   : {batch} sub-requests/frame ({frames} frames)\n\
           elapsed    : {:.3}s\n\
           throughput : {rps:.0} req/s\n\
           latency    : p50={} p95={} p99={} (ns/frame)\n\
           retries    : {} (overloaded, capped exp backoff + jitter)\n\
           errors     : {} (server error responses)\n\
           idle crowd : {idle_parked} parked sessions ({idle_failures} connect failures)\n\
           wakeup     : {wakeup}\n",
        if proto >= 2 { "binary framing" } else { "JSON framing" },
        100 - write_pct as u64,
        elapsed.as_secs_f64(),
        quantile(&all, 0.50),
        quantile(&all, 0.95),
        quantile(&all, 0.99),
        total_overloaded.load(Ordering::Relaxed),
        total_errors.load(Ordering::Relaxed),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCHEMA: &str = r#"
        obj-type If =
            attributes: Length: integer;
        end If;
        inher-rel-type AllOf_If =
            transmitter: object-of-type If;
            inheritor: object;
            inheriting: Length;
        end AllOf_If;
        obj-type Impl =
            inheritor-in: AllOf_If;
            attributes: Cost: integer;
        end Impl;
    "#;

    #[test]
    fn flags_parse_and_reject() {
        let f = ServeFlags::parse(&[
            "--addr".into(),
            "127.0.0.1:9999".into(),
            "--threads".into(),
            "2".into(),
            "--queue-depth".into(),
            "8".into(),
            "--batch".into(),
            "32".into(),
            "--write-pct".into(),
            "40".into(),
            "--proto".into(),
            "v1".into(),
            "--backend".into(),
            "epoll".into(),
            "--idle-sessions".into(),
            "128".into(),
        ])
        .unwrap();
        assert_eq!(f.addr.as_deref(), Some("127.0.0.1:9999"));
        assert_eq!(f.threads, Some(2));
        assert_eq!(f.queue_depth, Some(8));
        assert_eq!(f.batch, Some(32));
        assert_eq!(f.write_pct, Some(40));
        assert_eq!(f.proto, Some(1));
        assert_eq!(f.backend, Some(PollBackend::Epoll));
        assert_eq!(f.idle_sessions, Some(128));

        let f = ServeFlags::parse(&["--backend".into(), "poll".into()]).unwrap();
        assert_eq!(f.backend, Some(PollBackend::Poll));
        let f = ServeFlags::parse(&["--backend".into(), "auto".into()]).unwrap();
        assert_eq!(f.backend, Some(PollBackend::Auto));
        assert_eq!(
            ServeFlags::parse(&["--backend".into(), "kqueue".into()])
                .unwrap_err()
                .code,
            2
        );
        assert_eq!(
            ServeFlags::parse(&["--backend".into()]).unwrap_err().code,
            2
        );
        assert_eq!(
            ServeFlags::parse(&["--idle-sessions".into(), "some".into()])
                .unwrap_err()
                .code,
            2
        );

        // 0 is a legal mix (pure reads); 101 is not a percentage.
        let f = ServeFlags::parse(&["--write-pct".into(), "0".into()]).unwrap();
        assert_eq!(f.write_pct, Some(0));
        assert_eq!(
            ServeFlags::parse(&["--write-pct".into(), "101".into()])
                .unwrap_err()
                .code,
            2
        );

        let f = ServeFlags::parse(&["--proto".into(), "2".into()]).unwrap();
        assert_eq!(f.proto, Some(2));
        assert_eq!(
            ServeFlags::parse(&["--proto".into(), "v3".into()])
                .unwrap_err()
                .code,
            2
        );
        assert_eq!(ServeFlags::parse(&["--proto".into()]).unwrap_err().code, 2);

        assert_eq!(ServeFlags::parse(&["--bogus".into()]).unwrap_err().code, 2);
        assert_eq!(
            ServeFlags::parse(&["--threads".into(), "lots".into()])
                .unwrap_err()
                .code,
            2
        );
        assert_eq!(
            ServeFlags::parse(&["--threads".into()]).unwrap_err().code,
            2
        );
    }

    #[test]
    fn bench_triple_discovers_the_inheritance_path() {
        let catalog = crate::load_catalog(SCHEMA).unwrap();
        let (t, rel, i, attr) = bench_triple(&catalog).unwrap();
        assert_eq!(t, "If");
        assert_eq!(rel, "AllOf_If");
        assert_eq!(i, "Impl");
        assert_eq!(attr, "Length");
    }

    #[test]
    fn bench_net_runs_self_contained() {
        let flags = ServeFlags {
            addr: None,
            threads: Some(2),
            queue_depth: Some(16),
            clients: Some(4),
            requests: Some(20),
            batch: None,
            write_pct: None,
            proto: None,
            backend: None,
            idle_sessions: None,
        };
        let out = cmd_bench_net(SCHEMA, &flags).unwrap();
        assert!(out.contains("4 clients x 20 requests"), "{out}");
        assert!(out.contains("protocol   : v2"), "{out}");
        assert!(out.contains("requests   : 80"), "{out}");
        assert!(out.contains("throughput"), "{out}");
        assert!(out.contains("p95="), "{out}");
        assert!(
            out.contains("errors     : 0"),
            "healthy run must report zero server errors: {out}"
        );
        assert!(out.contains("idle crowd : 0 parked sessions"), "{out}");
        // The wakeup line is always present; short runs may report that
        // the sampler has not ticked rather than numbers.
        assert!(out.contains("wakeup     :"), "{out}");
    }

    #[test]
    fn bench_net_parks_an_idle_crowd_for_the_whole_run() {
        let flags = ServeFlags {
            addr: None,
            threads: Some(2),
            queue_depth: Some(16),
            clients: Some(2),
            requests: Some(20),
            batch: None,
            write_pct: None,
            proto: None,
            backend: None,
            idle_sessions: Some(32),
        };
        let out = cmd_bench_net(SCHEMA, &flags).unwrap();
        assert!(
            out.contains("idle crowd : 32 parked sessions (0 connect failures)"),
            "{out}"
        );
        assert!(out.contains("errors     : 0"), "{out}");
    }

    #[test]
    fn bench_net_still_speaks_v1_when_pinned() {
        let flags = ServeFlags {
            addr: None,
            threads: Some(2),
            queue_depth: Some(16),
            clients: Some(2),
            requests: Some(10),
            batch: None,
            write_pct: None,
            proto: Some(1),
            backend: None,
            idle_sessions: None,
        };
        let out = cmd_bench_net(SCHEMA, &flags).unwrap();
        assert!(out.contains("protocol   : v1"), "{out}");
        assert!(out.contains("errors     : 0"), "{out}");
    }

    #[test]
    fn bench_net_batched_ships_the_same_ops_in_fewer_frames() {
        let flags = ServeFlags {
            addr: None,
            threads: Some(2),
            queue_depth: Some(16),
            clients: Some(2),
            requests: Some(20),
            batch: Some(8),
            write_pct: None,
            proto: None,
            backend: None,
            idle_sessions: None,
        };
        let out = cmd_bench_net(SCHEMA, &flags).unwrap();
        assert!(out.contains("requests   : 40"), "{out}");
        // 20 ops at 8/frame = 3 frames per client, 2 clients.
        assert!(out.contains("8 sub-requests/frame (6 frames)"), "{out}");
    }
}
