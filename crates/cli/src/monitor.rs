//! `ccdb monitor`: dump or replay a server's telemetry stream.
//!
//! - `ccdb monitor <addr> [--record <file>] [--interval-ms N]
//!   [--duration-ms N] [--series p1,p2] [--proto v1|v2]` subscribes with
//!   the `watch` verb and writes each streamed frame as one JSON line.
//!   Without `--record` the JSONL goes to stdout (pipe it to `jq`); with
//!   `--record` it goes to the file and stdout gets a one-line summary.
//! - `ccdb monitor --replay <file>` reads a recorded JSONL stream back
//!   and prints a per-frame digest plus totals — post-mortem analysis of
//!   a capture without a live server.
//!
//! Frames are the server's incremental telemetry deltas (see the `watch`
//! verb): what arrived on the wire is exactly what lands in the file, so
//! a recording replays byte-for-byte into any JSONL tooling.

use std::io::Write as _;
use std::time::{Duration, Instant};

use ccdb_server::Client;
use serde_json::Value as Json;

use crate::CliError;

fn net(e: impl std::fmt::Display) -> CliError {
    CliError {
        message: format!("cannot reach server: {e}"),
        code: 1,
    }
}

/// Parsed `monitor` arguments.
pub struct MonitorFlags {
    /// Replay path (`--replay`); mutually exclusive with a live address.
    pub replay: Option<String>,
    /// Live server address.
    pub addr: Option<String>,
    /// Record frames into this file instead of stdout.
    pub record: Option<String>,
    /// Requested frame interval.
    pub interval_ms: u64,
    /// Stop after this long (run until the connection drops when absent).
    pub duration_ms: Option<u64>,
    /// Series name patterns to subscribe to (server default when empty).
    pub series: Vec<String>,
    /// Wire protocol to speak (1 or 2).
    pub proto: u8,
}

impl MonitorFlags {
    /// Parses `monitor` args: either `--replay <file>` or
    /// `<addr> [flags]`.
    pub fn parse(args: &[String]) -> Result<MonitorFlags, CliError> {
        let mut f = MonitorFlags {
            replay: None,
            addr: None,
            record: None,
            interval_ms: 500,
            duration_ms: None,
            series: Vec::new(),
            proto: 2,
        };
        let bad = |m: &str| CliError {
            message: format!("monitor: {m}"),
            code: 2,
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--replay" => {
                    f.replay = Some(
                        it.next()
                            .ok_or_else(|| bad("--replay needs a file"))?
                            .clone(),
                    )
                }
                "--record" => {
                    f.record = Some(
                        it.next()
                            .ok_or_else(|| bad("--record needs a file"))?
                            .clone(),
                    )
                }
                "--interval-ms" => {
                    f.interval_ms = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| bad("--interval-ms needs a number"))?
                }
                "--duration-ms" => {
                    f.duration_ms = Some(
                        it.next()
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| bad("--duration-ms needs a number"))?,
                    )
                }
                "--series" => {
                    let list = it.next().ok_or_else(|| bad("--series needs patterns"))?;
                    f.series = list.split(',').map(str::to_string).collect();
                }
                "--proto" => {
                    f.proto = match it.next().map(String::as_str) {
                        Some("v1") | Some("1") => 1,
                        Some("v2") | Some("2") => 2,
                        _ => return Err(bad("--proto must be v1 or v2")),
                    }
                }
                other if f.addr.is_none() && !other.starts_with("--") => {
                    f.addr = Some(other.to_string())
                }
                other => return Err(bad(&format!("unknown flag `{other}`"))),
            }
        }
        if f.replay.is_none() && f.addr.is_none() {
            return Err(bad("need a server address or --replay <file>"));
        }
        Ok(f)
    }
}

/// Live capture: subscribe, stream frames as JSONL, stop after
/// `duration_ms` (or when the connection drops).
fn monitor_live(f: &MonitorFlags) -> Result<String, CliError> {
    let addr = f.addr.as_deref().expect("checked by parse");
    let mut c = Client::connect_proto(addr, f.proto).map_err(net)?;
    c.set_read_timeout(Some(Duration::from_millis(f.interval_ms * 2 + 5_000)))
        .map_err(net)?;
    let patterns: Vec<&str> = f.series.iter().map(String::as_str).collect();
    let ack = c.watch(f.interval_ms, &patterns).map_err(net)?;
    if ack.get("watching").and_then(Json::as_bool) != Some(true) {
        return Err(net(format!("watch not acknowledged: {ack:?}")));
    }

    let mut sink: Box<dyn std::io::Write> = match &f.record {
        Some(path) => Box::new(std::fs::File::create(path).map_err(|e| CliError {
            message: format!("cannot create `{path}`: {e}"),
            code: 2,
        })?),
        None => Box::new(std::io::stdout()),
    };
    let deadline = f
        .duration_ms
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    let mut frames = 0u64;
    loop {
        if deadline.is_some_and(|d| Instant::now() >= d) {
            break;
        }
        let frame = match c.recv_watch_frame() {
            Ok(frame) => frame,
            // The server went away (shutdown, stall-kill): stop cleanly
            // with whatever was captured.
            Err(_) if frames > 0 => break,
            Err(e) => return Err(net(e)),
        };
        writeln!(sink, "{}", frame.to_json_string()).map_err(|e| CliError {
            message: format!("write failed: {e}"),
            code: 1,
        })?;
        frames += 1;
    }
    let _ = sink.flush();
    let _ = c.watch_stop();
    Ok(match &f.record {
        Some(path) => format!("recorded {frames} frames to {path}\n"),
        None => String::new(),
    })
}

/// Renders a recorded JSONL stream back into a per-frame digest. Pure —
/// unit tests feed captured text.
pub fn render_replay(content: &str) -> Result<String, CliError> {
    let mut out = String::new();
    let mut frames = 0u64;
    let mut first_ms = None;
    let mut last_ms = 0u64;
    let mut total_series = 0u64;
    for (lineno, line) in content.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let frame: Json = serde_json::from_str(line).map_err(|e| CliError {
            message: format!("replay: line {} is not a frame: {e}", lineno + 1),
            code: 1,
        })?;
        let seq = frame.get("seq").and_then(Json::as_u64).unwrap_or(0);
        let tick = frame.get("tick").and_then(Json::as_u64).unwrap_or(0);
        let unix_ms = frame.get("unix_ms").and_then(Json::as_u64).unwrap_or(0);
        let series = frame
            .get("series")
            .and_then(Json::as_array)
            .map(|a| a.len())
            .unwrap_or(0);
        let rel_ms = match first_ms {
            None => {
                first_ms = Some(unix_ms);
                0
            }
            Some(f) => unix_ms.saturating_sub(f),
        };
        last_ms = unix_ms;
        total_series += series as u64;
        frames += 1;
        // The request counter's delta is the one number every capture
        // wants at a glance.
        let req = frame
            .get("series")
            .and_then(Json::as_array)
            .and_then(|a| {
                a.iter().find(|s| {
                    s.get("name").and_then(Json::as_str) == Some("ccdb_server_requests_total")
                })
            })
            .and_then(|s| s.get("delta"))
            .and_then(Json::as_u64);
        out.push_str(&format!(
            "+{:>6}ms seq {seq:>4} tick {tick:>6} series {series:>3}{}\n",
            rel_ms,
            req.map(|d| format!(" req +{d}")).unwrap_or_default(),
        ));
    }
    if frames == 0 {
        return Err(CliError {
            message: "replay: no frames in file".into(),
            code: 1,
        });
    }
    let span_ms = first_ms.map(|f| last_ms.saturating_sub(f)).unwrap_or(0);
    out.push_str(&format!(
        "{frames} frames over {:.1}s, {:.1} series/frame\n",
        span_ms as f64 / 1000.0,
        total_series as f64 / frames as f64,
    ));
    Ok(out)
}

/// `monitor`: live capture or replay, per the flags.
pub fn cmd_monitor(f: &MonitorFlags) -> Result<String, CliError> {
    match &f.replay {
        Some(path) => {
            let content = std::fs::read_to_string(path).map_err(|e| CliError {
                message: format!("cannot read `{path}`: {e}"),
                code: 2,
            })?;
            render_replay(&content)
        }
        None => monitor_live(f),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_live_flags() {
        let f = MonitorFlags::parse(&[
            "127.0.0.1:7878".into(),
            "--record".into(),
            "out.jsonl".into(),
            "--interval-ms".into(),
            "100".into(),
            "--duration-ms".into(),
            "2000".into(),
            "--series".into(),
            "ccdb_server_*,ccdb_core_*".into(),
            "--proto".into(),
            "v1".into(),
        ])
        .unwrap();
        assert_eq!(f.addr.as_deref(), Some("127.0.0.1:7878"));
        assert_eq!(f.record.as_deref(), Some("out.jsonl"));
        assert_eq!(f.interval_ms, 100);
        assert_eq!(f.duration_ms, Some(2000));
        assert_eq!(f.series, vec!["ccdb_server_*", "ccdb_core_*"]);
        assert_eq!(f.proto, 1);
    }

    #[test]
    fn parse_requires_addr_or_replay() {
        assert!(MonitorFlags::parse(&[]).is_err());
        assert!(MonitorFlags::parse(&["--replay".into(), "f.jsonl".into()]).is_ok());
        assert!(MonitorFlags::parse(&["--bogus".into()]).is_err());
    }

    #[test]
    fn replay_digests_recorded_frames() {
        let capture = concat!(
            r#"{"watch": true, "seq": 1, "from_tick": 0, "tick": 4, "interval_ms": 500, "window_ms": 2000, "unix_ms": 1000, "series": [{"name": "ccdb_server_requests_total", "kind": "counter", "delta": 42, "rate": 21.0}]}"#,
            "\n",
            r#"{"watch": true, "seq": 2, "from_tick": 4, "tick": 6, "interval_ms": 500, "window_ms": 1000, "unix_ms": 1500, "series": []}"#,
            "\n",
        );
        let out = render_replay(capture).unwrap();
        assert!(out.contains("seq    1"), "{out}");
        assert!(out.contains("req +42"), "{out}");
        assert!(out.contains("+   500ms"), "{out}");
        assert!(out.contains("2 frames over 0.5s"), "{out}");
    }

    #[test]
    fn replay_rejects_garbage() {
        assert!(render_replay("not json\n").is_err());
        assert!(render_replay("").is_err());
    }
}
