#![warn(missing_docs)]

//! # ccdb-cli
//!
//! Schema tooling for the paper's definition language:
//!
//! - `ccdb check <file>` — parse, compile, and validate a schema; print a
//!   summary of the declared types;
//! - `ccdb effective <file> <type>` — show a type's *effective schema*
//!   (local + inherited items with their provenance);
//! - `ccdb render <file>` — normalize: compile and render back to source;
//! - `ccdb stats <file> [--json]` — run a synthetic workload over the schema
//!   and dump the process-global metrics snapshot ([`stats`]);
//! - `ccdb explain <file> <type> <attr> [--json]` — resolve one attribute
//!   with tracing forced on and print the causal span tree ([`explain`]);
//! - `ccdb serve <file> [--addr A] [--threads N] [--queue-depth N]
//!   [--proto v1|v2] [--backend poll|epoll|auto]` — serve the schema's
//!   store over TCP until a client sends `shutdown`; `--proto v1` pins
//!   the server to the JSON dialect, `--backend` selects the event loop's
//!   readiness primitive (auto-detected by default) ([`serve`]);
//! - `ccdb bench-net <file> [--clients N] [--requests N] [--batch N]
//!   [--addr A] [--proto v1|v2] [--backend poll|epoll|auto]
//!   [--idle-sessions N]` — drive the wire protocol with concurrent
//!   closed-loop clients, optionally shipping `--batch` sub-requests per
//!   frame, over the binary v2 framing (default) or v1 JSON;
//!   `--idle-sessions` parks that many silent connections for the whole
//!   measurement so event-loop scan cost under a connection crowd is
//!   reproducible from one command ([`serve`]);
//! - `ccdb top <addr> [--once] [--interval-ms N]` — refreshing latency
//!   dashboard for a running server, computed server-side from the
//!   telemetry ring: req/s and queue-depth sparklines, worker
//!   utilization, per-verb windowed quantiles, phase decomposition,
//!   wakeup latency, store-lock contention ([`top`]);
//! - `ccdb monitor <addr> [--record F] [--interval-ms N] [--duration-ms N]
//!   [--series p1,p2] [--proto v1|v2]` — subscribe to the server's
//!   `watch` stream and dump each telemetry frame as JSONL;
//!   `ccdb monitor --replay F` digests a recording offline ([`monitor`]);
//! - `ccdb flight <addr> [--json]` — dump the server's flight recorder:
//!   slowest and most recent requests with per-phase timelines ([`top`]).
//!
//! The functions are exposed as a library so they are unit-testable; the
//! binary is a thin wrapper.
//!
//! Setting the environment variable `CCDB_SLOW_OP_NS` to a nanosecond
//! threshold turns on the slow-operation log for the process: traced root
//! operations at least that slow are mirrored as `obs.slow_op` events.

use ccdb_core::schema::{Catalog, ItemSource};
use ccdb_lang::{compile_str, render};

pub mod explain;
pub mod monitor;
pub mod serve;
pub mod stats;
pub mod top;
pub use explain::cmd_explain;
pub use monitor::{cmd_monitor, MonitorFlags};
pub use serve::{cmd_bench_net, cmd_serve, ServeFlags};
pub use stats::cmd_stats;
pub use top::{cmd_flight, cmd_top};

/// CLI failure: message for stderr + suggested exit code.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// Process exit code.
    pub code: i32,
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CliError {}

fn fail<T>(message: impl Into<String>, code: i32) -> Result<T, CliError> {
    Err(CliError {
        message: message.into(),
        code,
    })
}

/// Compile and validate schema text into a catalog.
pub fn load_catalog(source: &str) -> Result<Catalog, CliError> {
    let mut catalog = Catalog::new();
    compile_str(source, &mut catalog).map_err(|e| CliError {
        message: e.to_string(),
        code: 1,
    })?;
    catalog.validate().map_err(|e| CliError {
        message: e.to_string(),
        code: 1,
    })?;
    Ok(catalog)
}

/// `check`: validate and summarize.
pub fn cmd_check(source: &str) -> Result<String, CliError> {
    let catalog = load_catalog(source)?;
    let mut out = String::from("schema OK\n");
    let obj_names: Vec<&str> = catalog
        .object_type_names()
        .into_iter()
        .filter(|n| !n.contains('.'))
        .collect();
    out.push_str(&format!("  object types        : {}\n", obj_names.len()));
    for n in &obj_names {
        let def = catalog.object_type(n).expect("listed");
        let mut notes = Vec::new();
        if !def.inheritor_in.is_empty() {
            notes.push(format!("inheritor-in {}", def.inheritor_in.join(", ")));
        }
        if !def.subclasses.is_empty() {
            notes.push(format!("{} subclass(es)", def.subclasses.len()));
        }
        if !def.subrels.is_empty() {
            notes.push(format!("{} subrel(s)", def.subrels.len()));
        }
        if !def.constraints.is_empty() {
            notes.push(format!("{} constraint(s)", def.constraints.len()));
        }
        let suffix = if notes.is_empty() {
            String::new()
        } else {
            format!(" — {}", notes.join(", "))
        };
        out.push_str(&format!("    {n}{suffix}\n"));
    }
    out.push_str(&format!(
        "  relationship types  : {}\n",
        catalog.rel_type_names().len()
    ));
    for n in catalog.rel_type_names() {
        out.push_str(&format!("    {n}\n"));
    }
    out.push_str(&format!(
        "  inheritance rels    : {}\n",
        catalog.inher_rel_type_names().len()
    ));
    for n in catalog.inher_rel_type_names() {
        let def = catalog.inher_rel_type(n).expect("listed");
        out.push_str(&format!(
            "    {n}: {} ─▶ inheritor ({} item(s) permeable)\n",
            def.transmitter_type,
            def.inheriting.len()
        ));
    }
    Ok(out)
}

/// `effective`: print a type's effective schema with provenance.
pub fn cmd_effective(source: &str, type_name: &str) -> Result<String, CliError> {
    let catalog = load_catalog(source)?;
    let eff = catalog.effective_schema(type_name).map_err(|e| CliError {
        message: e.to_string(),
        code: 1,
    })?;
    let mut out = format!("effective schema of {type_name}:\n");
    out.push_str("  attributes:\n");
    for (name, domain, source) in &eff.attrs {
        out.push_str(&format!(
            "    {name}: {} {}\n",
            domain.describe(),
            provenance(source)
        ));
    }
    if !eff.subclasses.is_empty() {
        out.push_str("  subclasses:\n");
        for (name, elem, source) in &eff.subclasses {
            out.push_str(&format!("    {name}: {elem} {}\n", provenance(source)));
        }
    }
    Ok(out)
}

fn provenance(s: &ItemSource) -> String {
    match s {
        ItemSource::Local => "(local)".to_string(),
        ItemSource::Inherited { via_rel, from_type } => {
            format!("(inherited from {from_type} via {via_rel})")
        }
    }
}

/// `render`: compile then render back to normalized source.
pub fn cmd_render(source: &str) -> Result<String, CliError> {
    let catalog = load_catalog(source)?;
    render(&catalog).map_err(|e| CliError {
        message: e.to_string(),
        code: 1,
    })
}

/// Dispatch `argv[1..]`; returns the stdout text.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let usage = "usage: ccdb <check|effective|render|stats|explain|serve|bench-net> \
                 <schema-file> [type [attr]] [--json] [--addr A] [--threads N] \
                 [--queue-depth N] [--clients N] [--requests N] [--batch N] \
                 [--proto v1|v2] [--backend poll|epoll|auto] [--idle-sessions N] | \
                 ccdb top <addr> [--once] [--interval-ms N] | \
                 ccdb monitor <addr|--replay F> [--record F] [--interval-ms N] \
                 [--duration-ms N] [--series p1,p2] [--proto v1|v2] | \
                 ccdb flight <addr> [--json]";
    // Opt-in slow-op log: traced roots slower than this are mirrored as
    // `obs.slow_op` events through the installed subscriber.
    if let Some(ns) = std::env::var("CCDB_SLOW_OP_NS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        ccdb_obs::trace::set_slow_op_threshold_ns(ns);
    }
    let cmd = args.first().map(String::as_str).unwrap_or("");
    let read = |path: &str| -> Result<String, CliError> {
        std::fs::read_to_string(path).map_err(|e| CliError {
            message: format!("cannot read `{path}`: {e}"),
            code: 2,
        })
    };
    match cmd {
        "check" => {
            let path = args.get(1).map(String::as_str);
            let Some(path) = path else {
                return fail(usage, 2);
            };
            cmd_check(&read(path)?)
        }
        "effective" => {
            let (Some(path), Some(ty)) = (args.get(1), args.get(2)) else {
                return fail(usage, 2);
            };
            cmd_effective(&read(path)?, ty)
        }
        "render" => {
            let Some(path) = args.get(1) else {
                return fail(usage, 2);
            };
            cmd_render(&read(path)?)
        }
        "stats" => {
            let Some(path) = args.get(1) else {
                return fail(usage, 2);
            };
            let json = match args.get(2).map(String::as_str) {
                None => false,
                Some("--json") => true,
                Some(_) => return fail(usage, 2),
            };
            cmd_stats(&read(path)?, json)
        }
        "explain" => {
            let (Some(path), Some(ty), Some(attr)) = (args.get(1), args.get(2), args.get(3)) else {
                return fail(usage, 2);
            };
            let json = match args.get(4).map(String::as_str) {
                None => false,
                Some("--json") => true,
                Some(_) => return fail(usage, 2),
            };
            cmd_explain(&read(path)?, ty, attr, json)
        }
        "serve" => {
            let Some(path) = args.get(1) else {
                return fail(usage, 2);
            };
            let flags = serve::ServeFlags::parse(&args[2..])?;
            cmd_serve(&read(path)?, &flags)
        }
        "bench-net" => {
            let Some(path) = args.get(1) else {
                return fail(usage, 2);
            };
            let flags = serve::ServeFlags::parse(&args[2..])?;
            cmd_bench_net(&read(path)?, &flags)
        }
        "top" => {
            let Some(addr) = args.get(1) else {
                return fail(usage, 2);
            };
            let mut once = false;
            let mut interval_ms = 1000u64;
            let mut it = args[2..].iter();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--once" => once = true,
                    "--interval-ms" => {
                        interval_ms =
                            it.next()
                                .and_then(|v| v.parse().ok())
                                .ok_or_else(|| CliError {
                                    message: usage.into(),
                                    code: 2,
                                })?;
                    }
                    _ => return fail(usage, 2),
                }
            }
            cmd_top(addr, once, interval_ms)
        }
        "monitor" => {
            let flags = MonitorFlags::parse(&args[1..])?;
            cmd_monitor(&flags)
        }
        "flight" => {
            let Some(addr) = args.get(1) else {
                return fail(usage, 2);
            };
            let json = match args.get(2).map(String::as_str) {
                None => false,
                Some("--json") => true,
                Some(_) => return fail(usage, 2),
            };
            cmd_flight(addr, json)
        }
        _ => fail(usage, 2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCHEMA: &str = r#"
        obj-type If =
            attributes: Length: integer;
        end If;
        inher-rel-type AllOf_If =
            transmitter: object-of-type If;
            inheritor: object;
            inheriting: Length;
        end AllOf_If;
        obj-type Impl =
            inheritor-in: AllOf_If;
            attributes: Cost: integer;
        end Impl;
    "#;

    #[test]
    fn check_summarizes() {
        let out = cmd_check(SCHEMA).unwrap();
        assert!(out.contains("schema OK"));
        assert!(out.contains("Impl — inheritor-in AllOf_If"), "{out}");
        assert!(out.contains("AllOf_If: If"), "{out}");
    }

    #[test]
    fn check_reports_invalid_schema() {
        let err = cmd_check("obj-type Broken = attributes: X: NoDomain; end Broken;").unwrap_err();
        assert!(err.message.contains("NoDomain"));
        assert_eq!(err.code, 1);
    }

    #[test]
    fn effective_shows_provenance() {
        let out = cmd_effective(SCHEMA, "Impl").unwrap();
        assert!(out.contains("Cost: integer (local)"), "{out}");
        assert!(
            out.contains("Length: integer (inherited from If via AllOf_If)"),
            "{out}"
        );
        assert!(cmd_effective(SCHEMA, "Ghost").is_err());
    }

    #[test]
    fn render_roundtrips_through_cli() {
        let rendered = cmd_render(SCHEMA).unwrap();
        let again = cmd_check(&rendered).unwrap();
        assert!(again.contains("schema OK"));
    }

    #[test]
    fn run_dispatches_and_validates_args() {
        let dir = tempfile::tempdir().unwrap();
        let file = dir.path().join("s.ccdb");
        std::fs::write(&file, SCHEMA).unwrap();
        let path = file.to_str().unwrap().to_string();
        assert!(run(&["check".into(), path.clone()])
            .unwrap()
            .contains("schema OK"));
        assert!(run(&["effective".into(), path.clone(), "Impl".into()])
            .unwrap()
            .contains("(local)"));
        assert!(run(&["render".into(), path]).is_ok());
        assert_eq!(run(&["bogus".into()]).unwrap_err().code, 2);
        assert_eq!(run(&[]).unwrap_err().code, 2);
        assert_eq!(
            run(&["check".into(), "/no/such/file".into()])
                .unwrap_err()
                .code,
            2
        );
    }
}
