//! `ccdb explain`: resolve one attribute with tracing forced on and
//! pretty-print the causal span tree — every inheritance hop with its
//! transmitter, the permeability decision, and the resolution-cache
//! outcome.
//!
//! The command builds a minimal instance chain for the requested type by
//! walking the *effective schema*: starting from an instance of the type,
//! each `Inherited { via_rel }` step creates a transmitter of the
//! relationship's declared transmitter type and binds it, until the
//! attribute is local to the chain head, where a synthetic value is set.
//! The attribute is then resolved twice — a **cold** read that walks the
//! binding chain (one `core.attr.hop` span per hop) and a **warm** read
//! answered by the resolution cache — and both traces are printed.

use ccdb_core::schema::{Catalog, ItemSource};
use ccdb_core::{ObjectStore, Surrogate};
use ccdb_obs::trace::{self, SpanRecord, TraceNode};

use crate::stats::synth;
use crate::{load_catalog, CliError};

fn internal(e: impl std::fmt::Display) -> CliError {
    CliError {
        message: format!("explain failed: {e}"),
        code: 1,
    }
}

/// The instance chain built for the demonstration: the leaf object plus
/// one `(via_rel, transmitter)` entry per inheritance hop.
struct Chain {
    leaf: Surrogate,
    hops: Vec<(String, Surrogate)>,
}

/// Create an instance of `type_name` and the transmitter chain that makes
/// `attr` resolvable on it, setting a synthetic value at the chain head.
fn build_chain(
    store: &mut ObjectStore,
    catalog: &Catalog,
    type_name: &str,
    attr: &str,
) -> Result<Chain, CliError> {
    let leaf = store
        .create_object(type_name, Vec::new())
        .map_err(internal)?;
    let mut hops = Vec::new();
    let mut cur_ty = type_name.to_string();
    let mut cur_obj = leaf;
    loop {
        let eff = catalog.effective_schema(&cur_ty).map_err(internal)?;
        match eff.attr(attr) {
            None => {
                return Err(CliError {
                    message: format!("type `{cur_ty}` has no attribute `{attr}`"),
                    code: 1,
                })
            }
            Some((domain, ItemSource::Local)) => {
                store
                    .set_attr(cur_obj, attr, synth(domain, 7))
                    .map_err(internal)?;
                return Ok(Chain { leaf, hops });
            }
            Some((_, ItemSource::Inherited { via_rel, .. })) => {
                let via_rel = via_rel.clone();
                let rel_def = catalog.inher_rel_type(&via_rel).map_err(internal)?;
                let trans_ty = rel_def.transmitter_type.clone();
                let t = store
                    .create_object(&trans_ty, Vec::new())
                    .map_err(internal)?;
                store
                    .bind(&via_rel, t, cur_obj, Vec::new())
                    .map_err(internal)?;
                hops.push((via_rel, t));
                cur_obj = t;
                cur_ty = trans_ty;
            }
        }
    }
}

/// Formats a nanosecond duration adaptively (ns / µs / ms).
fn fmt_dur(ns: u64) -> String {
    if ns < 10_000 {
        format!("{ns}ns")
    } else if ns < 10_000_000 {
        format!("{:.1}µs", ns as f64 / 1_000.0)
    } else {
        format!("{:.1}ms", ns as f64 / 1_000_000.0)
    }
}

fn render_node(node: &TraceNode, indent: usize, out: &mut String) {
    let pad = "   ".repeat(indent);
    out.push_str(&format!(
        "{pad}└─ {} ({})",
        node.record.name,
        fmt_dur(node.record.dur_ns)
    ));
    for (k, v) in &node.record.fields {
        out.push_str(&format!(" {k}={v}"));
    }
    out.push('\n');
    for child in &node.children {
        render_node(child, indent + 1, out);
    }
}

fn render_trees(spans: &[SpanRecord], out: &mut String) {
    for tree in trace::build_trees(spans) {
        render_node(&tree, 0, out);
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::new();
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn spans_json(spans: &[SpanRecord]) -> String {
    let mut out = String::from("[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&trace::span_to_json(s));
    }
    out.push(']');
    out
}

/// `explain`: trace one attribute resolution and print the span tree.
pub fn cmd_explain(
    source: &str,
    type_name: &str,
    attr: &str,
    json: bool,
) -> Result<String, CliError> {
    let catalog = load_catalog(source)?;
    let mut store = ObjectStore::new(catalog.clone()).map_err(internal)?;
    let chain = build_chain(&mut store, &catalog, type_name, attr)?;

    // Force tracing on, unsampled, with a clean buffer: `explain` exists to
    // show the trace, so the production sampling knobs don't apply here.
    let was_tracing = trace::tracing();
    let prev_rate = trace::sample_rate();
    trace::set_sample_rate(1.0);
    trace::set_tracing(true);
    trace::clear();

    let cold_value = store.attr(chain.leaf, attr);
    let cold_spans = trace::take_spans();
    let warm_value = store.attr(chain.leaf, attr);
    let warm_spans = trace::take_spans();

    trace::set_tracing(was_tracing);
    trace::set_sample_rate(prev_rate);

    let value = cold_value.map_err(internal)?;
    let _ = warm_value;

    if json {
        let mut out = String::from("{");
        out.push_str(&format!("\"type\": \"{}\", ", json_escape(type_name)));
        out.push_str(&format!("\"attr\": \"{}\", ", json_escape(attr)));
        out.push_str(&format!("\"object\": {}, ", chain.leaf.0));
        out.push_str(&format!(
            "\"value\": \"{}\", ",
            json_escape(&value.to_string())
        ));
        out.push_str(&format!("\"hops\": {}, ", chain.hops.len()));
        out.push_str(&format!("\"cold\": {}, ", spans_json(&cold_spans)));
        out.push_str(&format!("\"warm\": {}", spans_json(&warm_spans)));
        out.push_str("}\n");
        return Ok(out);
    }

    let mut out = format!("explain {type_name}.{attr}\n\n");
    out.push_str(&format!(
        "object {} ({type_name}) — built {} inheritance hop(s):\n",
        chain.leaf.0,
        chain.hops.len()
    ));
    for (i, (rel, t)) in chain.hops.iter().enumerate() {
        out.push_str(&format!(
            "  hop {}: via {rel} to transmitter object {}\n",
            i + 1,
            t.0
        ));
    }
    out.push_str(&format!("\n{type_name}.{attr} = {value}\n\n"));
    out.push_str("cold resolution (walks the binding chain):\n");
    render_trees(&cold_spans, &mut out);
    out.push_str("\nwarm resolution (answered by the resolution cache):\n");
    render_trees(&warm_spans, &mut out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Tracing state is process-global; serialize with other trace users.
    static SERIAL: Mutex<()> = Mutex::new(());

    const SCHEMA: &str = r#"
        obj-type If =
            attributes: Length: integer;
        end If;
        inher-rel-type AllOf_If =
            transmitter: object-of-type If;
            inheritor: object;
            inheriting: Length;
        end AllOf_If;
        obj-type Impl =
            inheritor-in: AllOf_If;
            attributes: Cost: integer;
        end Impl;
    "#;

    #[test]
    fn explain_shows_hop_with_permeability_and_cache() {
        let _g = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        let out = cmd_explain(SCHEMA, "Impl", "Length", false).unwrap();
        assert!(out.contains("Impl.Length = 7"), "{out}");
        assert!(out.contains("core.attr.hop"), "{out}");
        assert!(out.contains("via_rel=AllOf_If"), "{out}");
        assert!(out.contains("permeable=yes"), "{out}");
        assert!(out.contains("rescache=miss"), "{out}");
        assert!(out.contains("rescache=hit"), "{out}");
    }

    #[test]
    fn explain_local_attribute_has_no_hops() {
        let _g = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        let out = cmd_explain(SCHEMA, "Impl", "Cost", false).unwrap();
        assert!(out.contains("built 0 inheritance hop(s)"), "{out}");
        assert!(!out.contains("core.attr.hop"), "{out}");
    }

    #[test]
    fn explain_json_is_parseable() {
        let _g = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        let out = cmd_explain(SCHEMA, "Impl", "Length", true).unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).expect("valid JSON");
        assert_eq!(v["type"].as_str(), Some("Impl"));
        assert_eq!(v["hops"].as_i64(), Some(1));
        assert!(v["cold"].as_array().unwrap().len() >= 2, "{out}");
        assert_eq!(v["warm"].as_array().unwrap().len(), 1, "{out}");
    }

    #[test]
    fn explain_unknown_attribute_fails() {
        let _g = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        assert!(cmd_explain(SCHEMA, "Impl", "Ghost", false).is_err());
    }
}
