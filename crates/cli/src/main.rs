//! The `ccdb` schema tool. See [`ccdb_cli`] for the commands.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match ccdb_cli::run(&args) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("ccdb: {e}");
            std::process::exit(e.code);
        }
    }
}
