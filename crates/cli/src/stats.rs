//! `ccdb stats`: run a small synthetic workload over a compiled schema and
//! dump the process-global [`ccdb_obs`] metrics registry.
//!
//! The workload exercises every instrumented subsystem so the snapshot is
//! representative, not empty:
//!
//! - **resolution** — for each inheritance-relationship type, bind a few
//!   transmitter/inheritor pairs and read every effective attribute of the
//!   inheritors (local *and* inherited reads, hop histogram, chains);
//! - **adaptation** — update permeable transmitter attributes so adaptation
//!   flags propagate to the bound inheritors;
//! - **locking** — a multi-granularity lock workload with deliberate
//!   contention: one waiter that is eventually granted and one that times
//!   out (waits, timeouts, acquire-latency histogram);
//! - **storage** — a transactional put/abort workload against a [`DurableKv`]
//!   in a temporary directory with a tiny buffer pool (hits, misses,
//!   evictions, WAL appends/syncs), then a simulated crash + reopen so
//!   recovery replay counters move;
//! - **serving** — an in-process server answering a plain ping and one
//!   batched frame, so the `ccdb_server_*` request and batch series are
//!   present in the snapshot.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use ccdb_core::domain::Domain;
use ccdb_core::schema::Catalog;
use ccdb_core::{ObjectStore, Surrogate, Value};
use ccdb_storage::DurableKv;
use ccdb_txn::{LockManager, LockMode, Resource, TxnId};

use crate::{load_catalog, CliError};

fn internal(e: impl std::fmt::Display) -> CliError {
    CliError {
        message: format!("stats workload failed: {e}"),
        code: 1,
    }
}

/// Synthesize a value conforming to `domain` (deterministic, seeded by `n`).
/// Shared with `ccdb explain`, which sets one synthetic value at the head
/// of its demonstration chain.
pub(crate) fn synth(domain: &Domain, n: i64) -> Value {
    match domain {
        Domain::Int => Value::Int(n),
        Domain::Real => Value::Real(n as f64 * 0.5),
        Domain::Bool => Value::Bool(n % 2 == 0),
        Domain::Text => Value::Str(format!("v{n}")),
        Domain::Enum(items) => {
            let i = (n.unsigned_abs() as usize) % items.len().max(1);
            Value::Enum(items.get(i).cloned().unwrap_or_default())
        }
        Domain::Point => Value::Point { x: n, y: n + 1 },
        Domain::Record(fields) => Value::Record(
            fields
                .iter()
                .map(|(name, d)| (name.clone(), synth(d, n)))
                .collect(),
        ),
        Domain::ListOf(inner) => Value::List(vec![synth(inner, n), synth(inner, n + 1)]),
        Domain::SetOf(inner) => Value::Set(vec![synth(inner, n)]),
        Domain::MatrixOf(inner) => {
            Value::Matrix(vec![vec![synth(inner, n)], vec![synth(inner, n + 1)]])
        }
        // A dangling reference may violate referential constraints but is
        // structurally valid for set_attr; keep it simple.
        Domain::Ref(_) => Value::Missing,
    }
}

/// Number of transmitter/inheritor pairs built per inheritance-relationship
/// type. Small, but enough for non-trivial hop/fan-out distributions.
const PAIRS_PER_REL: i64 = 4;

/// Resolution + adaptation workload over every type in the catalog.
fn core_workload(catalog: &Catalog) -> Result<(), CliError> {
    let mut store = ObjectStore::new(catalog.clone()).map_err(internal)?;

    // Plain objects of every (non-inline) type: local writes + local reads.
    for ty in catalog.object_type_names() {
        if ty.contains('.') {
            continue; // inline member types are created through their owners
        }
        let def = catalog.object_type(ty).map_err(internal)?;
        let attrs: Vec<(&str, Value)> = def
            .attributes
            .iter()
            .enumerate()
            .map(|(i, a)| (a.name.as_str(), synth(&a.domain, i as i64 + 1)))
            .collect();
        let s = store.create_object(ty, attrs).map_err(internal)?;
        for a in &def.attributes {
            let _ = store.attr(s, &a.name);
        }
    }

    // Inheritance: bind pairs, read through the binding, then mutate the
    // transmitter so adaptation propagates.
    for rel in catalog.inher_rel_type_names() {
        let def = catalog.inher_rel_type(rel).map_err(internal)?.clone();
        // Any type declaring `inheritor-in: rel` can be the inheritor.
        let Some(inh_ty) = catalog
            .object_type_names()
            .into_iter()
            .find(|t| {
                catalog
                    .object_type(t)
                    .map(|d| d.inheritor_in.iter().any(|r| r == rel))
                    .unwrap_or(false)
            })
            .map(str::to_string)
        else {
            continue;
        };
        for n in 0..PAIRS_PER_REL {
            let t = store
                .create_object(&def.transmitter_type, Vec::new())
                .map_err(internal)?;
            let i = store.create_object(&inh_ty, Vec::new()).map_err(internal)?;
            if store.bind(rel, t, i, Vec::new()).is_err() {
                continue; // e.g. abstract transmitters; skip, keep going
            }
            // Write the permeable attributes on the transmitter (adaptation
            // fan-out), then resolve them through the inheritor.
            let t_def = catalog
                .object_type(&def.transmitter_type)
                .map_err(internal)?
                .clone();
            for item in &def.inheriting {
                if let Some(a) = t_def.attributes.iter().find(|a| &a.name == item) {
                    let _ = store.set_attr(t, item, synth(&a.domain, n + 10));
                }
            }
            let eff = catalog.effective_schema(&inh_ty).map_err(internal)?;
            for (name, _, _) in &eff.attrs {
                let _ = store.attr(i, name);
                let _ = store.resolution_chain(i, name);
            }
            // Second pass answers from the resolution value cache (hits);
            // a permeable rewrite then drops the memos (invalidations) so
            // the closing pass re-walks and refills (misses).
            for (name, _, _) in &eff.attrs {
                let _ = store.attr(i, name);
            }
            for item in &def.inheriting {
                if let Some(a) = t_def.attributes.iter().find(|a| &a.name == item) {
                    let _ = store.set_attr(t, item, synth(&a.domain, n + 20));
                }
            }
            for (name, _, _) in &eff.attrs {
                let _ = store.attr(i, name);
            }
        }
    }
    Ok(())
}

/// Multi-granularity locking with deliberate contention: uncontended
/// acquires, one wait that is granted, one wait that times out.
fn lock_workload() -> Result<(), CliError> {
    let lm = Arc::new(LockManager::with_timeout(Duration::from_millis(40)));

    // Uncontended acquires populate the latency histogram cheaply.
    for k in 0..32u64 {
        let txn = TxnId(k + 100);
        lm.acquire(txn, Resource::Object(Surrogate(k)), LockMode::X)
            .map_err(internal)?;
        lm.acquire(txn, Resource::Item(Surrogate(k), "A".into()), LockMode::X)
            .map_err(internal)?;
        lm.release_all(txn);
    }

    // A wait that is eventually granted: the holder releases mid-wait.
    let holder = TxnId(1);
    let res = Resource::Object(Surrogate(500));
    lm.acquire(holder, res.clone(), LockMode::X)
        .map_err(internal)?;
    let waiter = {
        let lm = Arc::clone(&lm);
        let res = res.clone();
        thread::spawn(move || lm.acquire(TxnId(2), res, LockMode::S))
    };
    thread::sleep(Duration::from_millis(10));
    lm.release_all(holder);
    waiter
        .join()
        .map_err(|_| internal("waiter thread panicked"))?
        .map_err(internal)?;
    lm.release_all(TxnId(2));

    // A wait that times out: nobody releases.
    lm.acquire(holder, res.clone(), LockMode::X)
        .map_err(internal)?;
    let _ = lm.acquire(TxnId(3), res, LockMode::S); // Err(Timeout) expected
    lm.release_all(holder);
    lm.release_all(TxnId(3));
    Ok(())
}

/// Durable-KV workload: commits, aborts, a checkpoint, then a simulated
/// crash (in-flight transaction at drop) and reopen, which runs recovery.
fn storage_workload() -> Result<(), CliError> {
    let dir = tempfile::tempdir().map_err(internal)?;
    {
        // A tiny pool (8 pages × 8 KiB) against ~96 KiB of records forces
        // evictions; ~1 KiB values keep the record count modest.
        let kv = DurableKv::open_with_pool_size(dir.path(), 8).map_err(internal)?;
        for k in 0..96u64 {
            let tx = kv.begin().map_err(internal)?;
            kv.put(
                tx,
                k,
                format!("value-{k:04}-{}", "x".repeat(1024)).as_bytes(),
            )
            .map_err(internal)?;
            if k % 8 == 7 {
                kv.abort(tx).map_err(internal)?;
            } else {
                kv.commit(tx).map_err(internal)?;
            }
        }
        for k in 0..96u64 {
            let _ = kv.get(k).map_err(internal)?;
        }
        kv.checkpoint().map_err(internal)?;
        // Post-checkpoint work left in the WAL: one committed transaction to
        // redo and one in-flight loser to undo at the next open.
        let tx = kv.begin().map_err(internal)?;
        kv.put(tx, 1000, b"redo-me").map_err(internal)?;
        kv.commit(tx).map_err(internal)?;
        let loser = kv.begin().map_err(internal)?;
        kv.put(loser, 1001, b"undo-me").map_err(internal)?;
        // Dropped without commit/abort: simulated crash.
    }
    let kv = DurableKv::open_with_pool_size(dir.path(), 8).map_err(internal)?;
    if kv.get(1000).map_err(internal)?.is_none() {
        return Err(internal("recovery lost a committed write"));
    }
    if kv.get(1001).map_err(internal)?.is_some() {
        return Err(internal("recovery kept a loser's write"));
    }
    Ok(())
}

/// Wire workload: an in-process server on an ephemeral port answers one
/// plain ping and one batched frame, so the `ccdb_server_*` series
/// (request counters, batch frame/sub-request/size series) move.
fn server_workload(catalog: &Catalog) -> Result<(), CliError> {
    use ccdb_core::shared::SharedStore;
    use ccdb_server::{Client, Server, ServerConfig};

    let store = SharedStore::new(catalog.clone()).map_err(internal)?;
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".into(),
        ..ServerConfig::default()
    };
    let server = Server::start(cfg, store).map_err(internal)?;
    let mut c = Client::connect(server.local_addr()).map_err(internal)?;
    c.set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(internal)?;
    c.ping().map_err(internal)?;
    let slots = c
        .batch(vec![
            ("ping", serde_json::Value::Object(vec![])),
            ("check_all", serde_json::Value::Object(vec![])),
        ])
        .map_err(internal)?;
    for slot in slots {
        slot.map_err(internal)?;
    }
    server.shutdown();
    Ok(())
}

/// `stats`: run the synthetic workload and render the metrics snapshot.
///
/// Text output is the quantile summary (`count`/`sum`/`p50`/`p95`/`p99`
/// per histogram, derived from the bucket counts) rather than raw bucket
/// dumps; JSON output carries the same quantile estimates alongside the
/// buckets for machine consumers.
pub fn cmd_stats(source: &str, json: bool) -> Result<String, CliError> {
    let catalog = load_catalog(source)?;
    let registry = ccdb_obs::global();
    registry.reset_all();
    core_workload(&catalog)?;
    lock_workload()?;
    storage_workload()?;
    server_workload(&catalog)?;
    // Trace-buffer health, mirrored into the registry so the snapshot
    // shows whether the sampled span buffer overflowed and how many
    // slow-op events fired (both process-lifetime values, not reset).
    registry
        .gauge("ccdb_obs_trace_dropped_spans")
        .set(ccdb_obs::trace::dropped_spans() as i64);
    registry
        .gauge("ccdb_obs_trace_slow_ops")
        .set(ccdb_obs::trace::slow_op_count() as i64);
    Ok(if json {
        registry.render_json()
    } else {
        registry.render_text_summary()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// `cmd_stats` resets the process-global registry; serialize the tests
    /// so one run's reset cannot zero another's counters mid-workload.
    static SERIAL: Mutex<()> = Mutex::new(());

    const SCHEMA: &str = r#"
        obj-type If =
            attributes: Length: integer;
        end If;
        inher-rel-type AllOf_If =
            transmitter: object-of-type If;
            inheritor: object;
            inheriting: Length;
        end AllOf_If;
        obj-type Impl =
            inheritor-in: AllOf_If;
            attributes: Cost: integer;
        end Impl;
    "#;

    #[test]
    fn snapshot_contains_required_series() {
        let _g = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        let out = cmd_stats(SCHEMA, false).unwrap();
        for series in [
            "ccdb_core_resolution_local_reads_total",
            "ccdb_core_resolution_inherited_reads_total",
            "ccdb_core_resolution_hops",
            "ccdb_core_rescache_hits_total",
            "ccdb_core_rescache_misses_total",
            "ccdb_core_rescache_invalidations_total",
            "ccdb_core_rescache_shard_count",
            "ccdb_core_rescache_shard_sweeps_total",
            "ccdb_txn_lock_acquire_latency_ns",
            "ccdb_txn_lock_timeouts_total",
            "ccdb_storage_wal_appends_total",
            "ccdb_storage_wal_syncs_total",
            "ccdb_storage_buffer_hits_total",
            "ccdb_storage_buffer_misses_total",
            "ccdb_storage_buffer_evictions_total",
            "ccdb_server_requests_total",
            "ccdb_server_requests_batch_total",
            "ccdb_server_batch_frames_total",
            "ccdb_server_batch_subrequests_total",
            "ccdb_server_batch_size",
            "ccdb_obs_trace_dropped_spans",
            "ccdb_obs_trace_slow_ops",
        ] {
            assert!(out.contains(series), "missing {series} in:\n{out}");
        }
        // Histograms render as quantile summaries, never raw bucket dumps.
        assert!(
            out.contains("ccdb_txn_lock_acquire_latency_ns count="),
            "{out}"
        );
        assert!(out.contains(" p95="), "{out}");
        assert!(!out.contains("_bucket"), "{out}");
    }

    #[test]
    fn workload_moves_the_counters() {
        let _g = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        // The workload is the assertion: non-zero values for the headline
        // counters prove instrumentation fires end to end. Note these are
        // process-global, so read them from the snapshot produced by the
        // same call (other tests run concurrently).
        let out = cmd_stats(SCHEMA, false).unwrap();
        let value = |name: &str| -> f64 {
            out.lines()
                .find(|l| l.split_whitespace().next() == Some(name))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
                .unwrap_or(0.0)
        };
        assert!(
            value("ccdb_core_resolution_inherited_reads_total") >= 1.0,
            "{out}"
        );
        assert!(value("ccdb_core_rescache_hits_total") >= 1.0, "{out}");
        assert!(value("ccdb_core_rescache_misses_total") >= 1.0, "{out}");
        assert!(
            value("ccdb_core_rescache_invalidations_total") >= 1.0,
            "{out}"
        );
        assert!(value("ccdb_core_rescache_shard_count") >= 1.0, "{out}");
        assert!(
            value("ccdb_core_rescache_shard_sweeps_total") >= 1.0,
            "{out}"
        );
        assert!(value("ccdb_server_batch_frames_total") >= 1.0, "{out}");
        assert!(value("ccdb_server_batch_subrequests_total") >= 2.0, "{out}");
        assert!(value("ccdb_txn_lock_timeouts_total") >= 1.0, "{out}");
        assert!(value("ccdb_txn_lock_waits_total") >= 2.0, "{out}");
        assert!(value("ccdb_storage_wal_appends_total") >= 96.0, "{out}");
        assert!(value("ccdb_storage_buffer_evictions_total") >= 1.0, "{out}");
        assert!(value("ccdb_storage_recovery_replays_total") >= 1.0, "{out}");
    }

    #[test]
    fn json_snapshot_parses_and_has_histograms() {
        let _g = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        let out = cmd_stats(SCHEMA, true).unwrap();
        assert!(
            out.starts_with('{') && out.trim_end().ends_with('}'),
            "{out}"
        );
        assert!(out.contains("\"ccdb_core_resolution_hops\""), "{out}");
        assert!(
            out.contains("\"ccdb_storage_wal_sync_latency_ns\""),
            "{out}"
        );
    }
}
