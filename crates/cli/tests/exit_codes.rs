//! Error paths of the `ccdb` binary: every failure must exit nonzero with
//! a one-line rendered message on stderr — never a panic, a backtrace, or
//! a `Debug` dump.

use std::process::{Command, Output};

fn ccdb(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ccdb"))
        .args(args)
        .output()
        .expect("spawn ccdb")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Shared checks for every failure: prefixed one-liner, no panic noise.
fn assert_clean_failure(out: &Output, expect_code: i32) {
    let err = stderr(out);
    assert_eq!(out.status.code(), Some(expect_code), "stderr: {err}");
    assert!(err.starts_with("ccdb: "), "unprefixed stderr: {err}");
    assert_eq!(
        err.trim_end().lines().count(),
        1,
        "multi-line stderr: {err}"
    );
    for noise in ["panicked", "backtrace", "RUST_BACKTRACE", "CliError {"] {
        assert!(!err.contains(noise), "panic noise in stderr: {err}");
    }
    assert!(out.stdout.is_empty(), "failures must not write stdout");
}

#[test]
fn missing_schema_file_exits_2() {
    let out = ccdb(&["check", "/no/such/schema.ccdb"]);
    assert_clean_failure(&out, 2);
    assert!(stderr(&out).contains("/no/such/schema.ccdb"));
}

#[test]
fn unknown_subcommand_exits_2_with_usage() {
    let out = ccdb(&["frobnicate"]);
    assert_clean_failure(&out, 2);
    assert!(stderr(&out).contains("usage:"));
}

#[test]
fn no_arguments_exits_2_with_usage() {
    let out = ccdb(&[]);
    assert_clean_failure(&out, 2);
    assert!(stderr(&out).contains("usage:"));
}

#[test]
fn invalid_schema_exits_1_with_compile_error() {
    let dir = tempfile::tempdir().unwrap();
    let file = dir.path().join("bad.ccdb");
    std::fs::write(
        &file,
        "obj-type Broken = attributes: X: NoSuchDomain; end Broken;",
    )
    .unwrap();
    let out = ccdb(&["check", file.to_str().unwrap()]);
    assert_clean_failure(&out, 1);
    assert!(stderr(&out).contains("NoSuchDomain"));
}

#[test]
fn unknown_type_exits_1() {
    let dir = tempfile::tempdir().unwrap();
    let file = dir.path().join("s.ccdb");
    std::fs::write(&file, "obj-type If = attributes: Length: integer; end If;").unwrap();
    let out = ccdb(&["effective", file.to_str().unwrap(), "Ghost"]);
    assert_clean_failure(&out, 1);
    assert!(stderr(&out).contains("Ghost"));
}

#[test]
fn bad_serve_flags_exit_2() {
    let dir = tempfile::tempdir().unwrap();
    let file = dir.path().join("s.ccdb");
    std::fs::write(&file, "obj-type If = attributes: Length: integer; end If;").unwrap();
    let path = file.to_str().unwrap();

    let out = ccdb(&["serve", path, "--threads", "lots"]);
    assert_clean_failure(&out, 2);
    assert!(stderr(&out).contains("--threads"));

    let out = ccdb(&["serve", path, "--wat"]);
    assert_clean_failure(&out, 2);

    let out = ccdb(&["bench-net", path, "--requests"]);
    assert_clean_failure(&out, 2);
}

#[test]
fn serve_on_unbindable_address_exits_2() {
    let dir = tempfile::tempdir().unwrap();
    let file = dir.path().join("s.ccdb");
    std::fs::write(&file, "obj-type If = attributes: Length: integer; end If;").unwrap();
    let out = ccdb(&[
        "serve",
        file.to_str().unwrap(),
        "--addr",
        "256.256.256.256:1",
    ]);
    assert_clean_failure(&out, 2);
    assert!(stderr(&out).contains("cannot bind"));
}

#[test]
fn bench_net_without_inheritance_exits_1() {
    let dir = tempfile::tempdir().unwrap();
    let file = dir.path().join("flat.ccdb");
    std::fs::write(&file, "obj-type Lone = attributes: X: integer; end Lone;").unwrap();
    let out = ccdb(&[
        "bench-net",
        file.to_str().unwrap(),
        "--clients",
        "1",
        "--requests",
        "1",
    ]);
    assert_clean_failure(&out, 1);
    assert!(stderr(&out).contains("inheritance"));
}

#[test]
fn success_paths_exit_0() {
    let dir = tempfile::tempdir().unwrap();
    let file = dir.path().join("ok.ccdb");
    std::fs::write(
        &file,
        r#"
        obj-type If = attributes: Length: integer; end If;
        inher-rel-type AllOf_If =
            transmitter: object-of-type If;
            inheritor: object;
            inheriting: Length;
        end AllOf_If;
        obj-type Impl = inheritor-in: AllOf_If; end Impl;
        "#,
    )
    .unwrap();
    let path = file.to_str().unwrap();

    let out = ccdb(&["check", path]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(String::from_utf8_lossy(&out.stdout).contains("schema OK"));

    let out = ccdb(&[
        "bench-net",
        path,
        "--clients",
        "2",
        "--requests",
        "10",
        "--threads",
        "2",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(String::from_utf8_lossy(&out.stdout).contains("throughput"));
}
