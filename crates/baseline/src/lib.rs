#![warn(missing_docs)]

//! # ccdb-baseline
//!
//! The **copy-based composition** baseline — the conventional approach the
//! paper describes (and criticizes) in §2:
//!
//! > "One possibility to transport the information of a component C into the
//! > superior object O is to define a local subobject in O into which C is
//! > copied."
//!
//! and its two problems:
//!
//! 1. *no connection*: when the component is updated, composites holding
//!    copies silently go stale until an explicit re-copy pass visits them;
//! 2. *no selectivity*: the copy carries the component's data wholesale
//!    (here: optionally restricted, so E3 can compare selective copying too).
//!
//! The experiments in `ccdb-bench` run the same workloads against this
//! baseline and against the value-inheritance store of `ccdb-core`,
//! reproducing the paper's qualitative argument quantitatively (E1, E3, E9).

use std::collections::{BTreeMap, HashMap};

use ccdb_core::Value;

/// Identifier of a component in the baseline library.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ComponentId(pub u64);

/// Identifier of a composite.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct CompositeId(pub u64);

/// One embedded copy of a component inside a composite.
#[derive(Clone, Debug)]
pub struct EmbeddedCopy {
    /// Which component this copy was taken from.
    pub component: ComponentId,
    /// The copied attribute values (frozen at copy time).
    pub data: BTreeMap<String, Value>,
    /// Copy-generation: which component version the copy reflects.
    pub copied_at_version: u64,
}

#[derive(Clone, Debug, Default)]
struct Component {
    attrs: BTreeMap<String, Value>,
    /// Bumped on every update; lets us count stale copies.
    version: u64,
}

/// The copy-based store.
#[derive(Clone, Debug, Default)]
pub struct CopyBaseline {
    components: HashMap<ComponentId, Component>,
    composites: HashMap<CompositeId, Vec<EmbeddedCopy>>,
    next_component: u64,
    next_composite: u64,
    /// Attribute copies performed (propagation work; for E1).
    pub copy_ops: u64,
}

impl CopyBaseline {
    /// Empty store.
    pub fn new() -> Self {
        CopyBaseline::default()
    }

    /// Add a library component with its attribute values.
    pub fn add_component(&mut self, attrs: Vec<(&str, Value)>) -> ComponentId {
        self.next_component += 1;
        let id = ComponentId(self.next_component);
        let attrs = attrs.into_iter().map(|(k, v)| (k.to_string(), v)).collect();
        self.components.insert(id, Component { attrs, version: 1 });
        id
    }

    /// Read a component attribute (library side).
    pub fn component_attr(&self, id: ComponentId, attr: &str) -> Option<&Value> {
        self.components.get(&id)?.attrs.get(attr)
    }

    /// Build a composite embedding copies of the given components. `select`
    /// restricts which attributes are copied (`None` = all — the paper's
    /// wholesale copy).
    pub fn build_composite(
        &mut self,
        components: &[ComponentId],
        select: Option<&[&str]>,
    ) -> CompositeId {
        self.next_composite += 1;
        let id = CompositeId(self.next_composite);
        let mut copies = Vec::with_capacity(components.len());
        for c in components {
            if let Some(comp) = self.components.get(c) {
                let data: BTreeMap<String, Value> = comp
                    .attrs
                    .iter()
                    .filter(|(k, _)| select.is_none_or(|sel| sel.contains(&k.as_str())))
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                self.copy_ops += data.len() as u64;
                copies.push(EmbeddedCopy {
                    component: *c,
                    data,
                    copied_at_version: comp.version,
                });
            }
        }
        self.composites.insert(id, copies);
        id
    }

    /// Update a component attribute. Copies are NOT touched — they go stale
    /// (the paper's problem 1).
    pub fn update_component(&mut self, id: ComponentId, attr: &str, value: Value) {
        if let Some(c) = self.components.get_mut(&id) {
            c.attrs.insert(attr.to_string(), value);
            c.version += 1;
        }
    }

    /// Read an attribute out of a composite's embedded copy (always local —
    /// the baseline's one advantage).
    pub fn composite_attr(
        &self,
        id: CompositeId,
        component: ComponentId,
        attr: &str,
    ) -> Option<&Value> {
        self.composites
            .get(&id)?
            .iter()
            .find(|c| c.component == component)
            .and_then(|c| c.data.get(attr))
    }

    /// Count embedded copies that no longer reflect their component.
    pub fn stale_copies(&self) -> usize {
        self.composites
            .values()
            .flatten()
            .filter(|copy| {
                self.components
                    .get(&copy.component)
                    .map(|c| c.version != copy.copied_at_version)
                    .unwrap_or(true)
            })
            .count()
    }

    /// Re-copy every stale embedded copy from its component (the explicit
    /// propagation pass the copy approach needs). Returns copies refreshed.
    pub fn propagate(&mut self) -> usize {
        let mut refreshed = 0;
        for copies in self.composites.values_mut() {
            for copy in copies.iter_mut() {
                let Some(comp) = self.components.get(&copy.component) else {
                    continue;
                };
                if comp.version == copy.copied_at_version {
                    continue;
                }
                for (k, v) in copy.data.iter_mut() {
                    if let Some(new) = comp.attrs.get(k) {
                        *v = new.clone();
                        self.copy_ops += 1;
                    }
                }
                copy.copied_at_version = comp.version;
                refreshed += 1;
            }
        }
        refreshed
    }

    /// Total bytes held in embedded copies (duplication cost; for E9).
    pub fn copied_bytes(&self) -> usize {
        self.composites
            .values()
            .flatten()
            .map(|c| {
                c.data
                    .iter()
                    .map(|(k, v)| k.len() + v.byte_size())
                    .sum::<usize>()
            })
            .sum()
    }

    /// Total bytes held in the component library itself.
    pub fn library_bytes(&self) -> usize {
        self.components
            .values()
            .map(|c| {
                c.attrs
                    .iter()
                    .map(|(k, v)| k.len() + v.byte_size())
                    .sum::<usize>()
            })
            .sum()
    }

    /// Number of composites.
    pub fn composite_count(&self) -> usize {
        self.composites.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(v: i64) -> Value {
        Value::Int(v)
    }

    #[test]
    fn copies_freeze_component_state() {
        let mut b = CopyBaseline::new();
        let c = b.add_component(vec![("Length", int(10)), ("Width", int(4))]);
        let comp = b.build_composite(&[c], None);
        assert_eq!(b.composite_attr(comp, c, "Length"), Some(&int(10)));
        // Component changes; the copy stays stale.
        b.update_component(c, "Length", int(42));
        assert_eq!(b.composite_attr(comp, c, "Length"), Some(&int(10)));
        assert_eq!(b.stale_copies(), 1);
        // Propagation fixes it at a cost.
        let ops_before = b.copy_ops;
        assert_eq!(b.propagate(), 1);
        assert_eq!(b.composite_attr(comp, c, "Length"), Some(&int(42)));
        assert_eq!(b.stale_copies(), 0);
        assert!(b.copy_ops > ops_before);
    }

    #[test]
    fn propagation_cost_scales_with_users() {
        let mut b = CopyBaseline::new();
        let c = b.add_component(vec![("Length", int(1))]);
        for _ in 0..100 {
            b.build_composite(&[c], None);
        }
        b.update_component(c, "Length", int(2));
        assert_eq!(b.stale_copies(), 100);
        assert_eq!(b.propagate(), 100, "every composite must be visited");
    }

    #[test]
    fn selective_copy_restricts_data() {
        let mut b = CopyBaseline::new();
        let c = b.add_component(vec![
            ("Length", int(1)),
            ("Width", int(2)),
            ("Internal", int(3)),
        ]);
        let full = b.build_composite(&[c], None);
        let slim = b.build_composite(&[c], Some(&["Length"]));
        assert!(b.composite_attr(full, c, "Internal").is_some());
        assert!(b.composite_attr(slim, c, "Internal").is_none());
        assert!(b.composite_attr(slim, c, "Length").is_some());
    }

    #[test]
    fn copied_bytes_grow_with_reuse() {
        let mut b = CopyBaseline::new();
        let c = b.add_component(vec![("Blob", Value::Str("x".repeat(100)))]);
        let lib = b.library_bytes();
        for _ in 0..10 {
            b.build_composite(&[c], None);
        }
        assert!(
            b.copied_bytes() >= 10 * (lib - 8),
            "duplication ~ reuse count"
        );
    }

    #[test]
    fn deleting_nothing_missing_component_is_harmless() {
        let mut b = CopyBaseline::new();
        let ghost = ComponentId(99);
        let comp = b.build_composite(&[ghost], None);
        assert_eq!(b.composite_attr(comp, ghost, "X"), None);
        assert_eq!(b.propagate(), 0);
    }
}
