#![warn(missing_docs)]

//! # ccdb-server
//!
//! A concurrent network serving layer over [`ccdb_core::shared::SharedStore`].
//!
//! The paper's inheritance model makes one transmitter update instantly
//! visible to every inheritor — which only matters operationally when many
//! clients read inheritors concurrently while designers update
//! transmitters. This crate turns the in-process store into exactly that
//! system: a `std::net` TCP server (no async runtime; the workspace is
//! offline/shim-only) speaking a length-prefixed JSON protocol
//! ([`proto`]), with a configurable worker thread pool over the store's
//! reader-parallel `RwLock`.
//!
//! Production-shaping concerns are first-class:
//!
//! - **admission control** — sharded per-worker bounded queues with work
//!   stealing ([`queue`]); beyond the global cap the server answers
//!   `Overloaded` instead of buffering (explicit backpressure, bounded
//!   memory);
//! - **dispatch fast paths** — the event loop multiplexes connections
//!   with `poll(2)` or epoll ([`server::PollBackend`]) and executes
//!   read-only snapshot verbs inline against a pinned MVCC snapshot when
//!   the queue is shallow, skipping the worker hop entirely;
//! - **per-connection sessions** — id, peer, request/byte counters,
//!   introspectable via the `session` verb;
//! - **timeouts & hardening** — idle/read timeouts, frame-size caps
//!   enforced before allocation, protocol-version checks, handler-panic
//!   isolation;
//! - **graceful shutdown** — draining finishes queued requests and flushes
//!   their responses before threads exit;
//! - **observability** — every request runs under a `server.request` trace
//!   span and feeds `ccdb_server_*` counters/gauges/histograms; the
//!   `metrics` verb exposes the whole process registry as a plaintext
//!   Prometheus scrape over the wire.
//!
//! ## Quick start
//!
//! ```
//! use ccdb_core::domain::Domain;
//! use ccdb_core::schema::{AttrDef, Catalog, InherRelTypeDef, ObjectTypeDef};
//! use ccdb_core::shared::SharedStore;
//! use ccdb_core::Value;
//! use ccdb_server::{Client, Server, ServerConfig};
//!
//! let mut catalog = Catalog::new();
//! catalog.register_object_type(ObjectTypeDef {
//!     name: "If".into(),
//!     attributes: vec![AttrDef::new("X", Domain::Int)],
//!     ..Default::default()
//! }).unwrap();
//! catalog.register_inher_rel_type(InherRelTypeDef {
//!     name: "AllOf_If".into(),
//!     transmitter_type: "If".into(),
//!     inheritor_type: None,
//!     inheriting: vec!["X".into()],
//!     attributes: vec![],
//!     constraints: vec![],
//! }).unwrap();
//! catalog.register_object_type(ObjectTypeDef {
//!     name: "Impl".into(),
//!     inheritor_in: vec!["AllOf_If".into()],
//!     ..Default::default()
//! }).unwrap();
//!
//! let server = Server::start(
//!     ServerConfig::default(),
//!     SharedStore::new(catalog).unwrap(),
//! ).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//!
//! let interface = client.create("If", &[("X", Value::Int(10))]).unwrap();
//! let imp = client.create("Impl", &[]).unwrap();
//! client.bind("AllOf_If", interface, imp).unwrap();
//! // The implementation sees the interface's value over the wire...
//! assert_eq!(client.attr(imp, "X").unwrap(), Value::Int(10));
//! // ...and a transmitter update is instantly visible.
//! client.set_attr(interface, "X", Value::Int(12)).unwrap();
//! assert_eq!(client.attr(imp, "X").unwrap(), Value::Int(12));
//! server.shutdown();
//! ```

pub mod client;
mod handler;
mod metrics;
pub mod proto;
pub mod queue;
pub mod server;

pub use client::{Client, ClientError, ClientResult};
pub use proto::{
    ErrorKind, FrameError, Request, HELLO_V2, MAX_FRAME_BYTES, PROTOCOL_V2, PROTOCOL_VERSION,
};
pub use server::{PollBackend, Server, ServerConfig, ServerHandle};
