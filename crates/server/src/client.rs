//! A blocking client for the ccdb wire protocol.
//!
//! One [`Client`] owns one TCP connection (= one server session) and
//! issues lock-step request/response pairs. It is deliberately simple —
//! tests, the `ccdb bench-net` load generator, and the E12 harness all
//! drive the server through this type, so any protocol drift breaks them
//! first.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use ccdb_core::{Surrogate, Value};
use serde_json::Value as Json;

use crate::proto::{
    decode_response_v2, read_frame, write_frame, FrameError, Request, HELLO_V2, MAX_FRAME_BYTES,
    PROTOCOL_V2,
};

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The response frame/JSON was malformed or mismatched.
    Protocol(String),
    /// The server answered with an error response.
    Server {
        /// Machine-matchable kind (`"overloaded"`, `"core"`, ...).
        kind: String,
        /// Human-readable message.
        message: String,
    },
}

impl ClientError {
    /// Whether the server refused this request at admission (backpressure).
    pub fn is_overloaded(&self) -> bool {
        matches!(self, ClientError::Server { kind, .. } if kind == "overloaded")
    }

    /// Whether this failure is a transaction conflict (lock
    /// timeout/deadlock or first-committer-wins rejection). The
    /// transaction is already aborted server-side — retry from a fresh
    /// `begin`.
    pub fn is_conflict(&self) -> bool {
        matches!(self, ClientError::Server { kind, .. } if kind == "conflict")
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Server { kind, message } => write!(f, "server [{kind}]: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Result alias for client calls.
pub type ClientResult<T> = Result<T, ClientError>;

/// A blocking connection to a ccdb server.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
    trace: Option<u64>,
    proto: u8,
}

impl Client {
    /// Connects to `addr`, speaking v1 JSON (no handshake needed).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream,
            next_id: 1,
            trace: None,
            proto: 1,
        })
    }

    /// Connects to `addr` and negotiates protocol v2 (binary framing):
    /// sends the raw [`HELLO_V2`] magic and expects it echoed back. A
    /// v1-pinned server answers with a v1 JSON `protocol` error instead,
    /// which surfaces here as [`ClientError::Server`].
    pub fn connect_v2(addr: impl ToSocketAddrs) -> ClientResult<Client> {
        let mut client = Client::connect(addr)?;
        client.stream.write_all(&HELLO_V2)?;
        let mut ack = [0u8; 4];
        client.stream.read_exact(&mut ack)?;
        if ack == HELLO_V2 {
            client.proto = PROTOCOL_V2;
            return Ok(client);
        }
        if ack[0] == 0 {
            // Not the ack but a v1 length prefix: the server refused the
            // hello and framed a JSON error. Read it out and surface it.
            let len = u32::from_be_bytes(ack) as usize;
            if len > MAX_FRAME_BYTES {
                return Err(ClientError::Protocol(format!(
                    "refusal frame of {len} bytes exceeds cap"
                )));
            }
            let mut payload = vec![0u8; len];
            client.stream.read_exact(&mut payload)?;
            let v = parse_v1_envelope(&payload)?;
            return Err(envelope_error(&v));
        }
        Err(ClientError::Protocol(format!(
            "unexpected hello ack {ack:02x?}"
        )))
    }

    /// Connects speaking the given protocol (`1` or `2`); anything else
    /// is rejected. Convenience for flag-driven callers (`--proto`).
    pub fn connect_proto(addr: impl ToSocketAddrs, proto: u8) -> ClientResult<Client> {
        match proto {
            1 => Ok(Client::connect(addr)?),
            p if p == PROTOCOL_V2 => Client::connect_v2(addr),
            p => Err(ClientError::Protocol(format!("unsupported protocol v{p}"))),
        }
    }

    /// The wire protocol this connection negotiated (1 or 2).
    pub fn proto(&self) -> u8 {
        self.proto
    }

    /// Stamps every subsequent request with `trace` (`None` stops). The
    /// server opens its handling span inside that trace id, so a client
    /// trace continues into the server's span tree.
    pub fn set_trace(&mut self, trace: Option<u64>) {
        self.trace = trace;
    }

    /// Sets the read timeout for responses (`None` blocks forever).
    pub fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(t)
    }

    /// Sends one raw payload without waiting for the response. Test-only
    /// building block for pipelined / malformed-traffic scenarios.
    pub fn send_raw(&mut self, payload: &[u8]) -> io::Result<()> {
        write_frame(&mut self.stream, payload)
    }

    /// Reads one raw response frame.
    pub fn recv_raw(&mut self) -> Result<Vec<u8>, FrameError> {
        read_frame(&mut self.stream, MAX_FRAME_BYTES)
    }

    fn next_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Issues `verb` with `params`, returning the response's `result`.
    /// The request and response travel in whichever dialect the
    /// connection negotiated; the envelope semantics are identical.
    pub fn request(&mut self, verb: &str, params: Json) -> ClientResult<Json> {
        let id = self.next_id();
        let req = Request {
            id,
            verb: verb.into(),
            params,
            trace: self.trace,
        };
        let payload = if self.proto == PROTOCOL_V2 {
            req.encode_v2().map_err(ClientError::Protocol)?
        } else {
            req.to_json().to_json_string().into_bytes()
        };
        write_frame(&mut self.stream, &payload)?;
        let v = self.read_response_json()?;
        let got_id = v.get("id").and_then(Json::as_u64).unwrap_or(0);
        if got_id != id {
            return Err(ClientError::Protocol(format!(
                "response id {got_id} does not match request id {id}"
            )));
        }
        match v.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(v.get("result").cloned().unwrap_or(Json::Null)),
            Some(false) => Err(envelope_error(&v)),
            None => Err(ClientError::Protocol("response missing `ok`".into())),
        }
    }

    /// `ping` → `{"pong": true, "server_info": {...}}`.
    pub fn ping(&mut self) -> ClientResult<()> {
        self.request("ping", Json::Object(vec![])).map(|_| ())
    }

    /// `ping`, returning the `server_info` object (version, uptime,
    /// workers, queue depth, rescache shards).
    pub fn ping_info(&mut self) -> ClientResult<Json> {
        let r = self.request("ping", Json::Object(vec![]))?;
        r.get("server_info")
            .cloned()
            .ok_or_else(|| ClientError::Protocol("ping: missing server_info".into()))
    }

    /// The server's flight-recorder snapshot (recent + slowest requests
    /// with per-phase timelines).
    pub fn flight(&mut self) -> ClientResult<Json> {
        self.request("flight", Json::Object(vec![]))
    }

    /// `ping` with an artificial service delay (drain/load tests).
    pub fn ping_delay_ms(&mut self, ms: u64) -> ClientResult<()> {
        self.request(
            "ping",
            Json::Object(vec![("delay_ms".into(), Json::UInt(ms))]),
        )
        .map(|_| ())
    }

    /// Creates an object of `ty` with initial attributes.
    pub fn create(&mut self, ty: &str, attrs: &[(&str, Value)]) -> ClientResult<Surrogate> {
        let encoded = Json::Object(
            attrs
                .iter()
                .map(|(n, v)| (n.to_string(), serde_json::to_value(v)))
                .collect(),
        );
        let params = Json::Object(vec![
            ("type".into(), Json::String(ty.into())),
            ("attrs".into(), encoded),
        ]);
        let r = self.request("create", params)?;
        r.as_u64()
            .map(Surrogate)
            .ok_or_else(|| ClientError::Protocol("create: non-integer surrogate".into()))
    }

    /// Resolved attribute read.
    pub fn attr(&mut self, obj: Surrogate, name: &str) -> ClientResult<Value> {
        let params = Json::Object(vec![
            ("obj".into(), Json::UInt(obj.0)),
            ("name".into(), Json::String(name.into())),
        ]);
        let r = self.request("attr", params)?;
        serde_json::from_value(&r)
            .map_err(|e| ClientError::Protocol(format!("attr: bad value encoding: {e}")))
    }

    /// `begin`: opens a wire transaction on this connection's session.
    /// Returns `(txn_id, snapshot_version)` — the published version the
    /// transaction's reads are pinned to.
    pub fn begin(&mut self) -> ClientResult<(u64, u64)> {
        let r = self.request("begin", Json::Object(vec![]))?;
        match (
            r.get("txn").and_then(Json::as_u64),
            r.get("snapshot_version").and_then(Json::as_u64),
        ) {
            (Some(txn), Some(v)) => Ok((txn, v)),
            _ => Err(ClientError::Protocol("begin: malformed result".into())),
        }
    }

    /// `commit`: validates and publishes the transaction's buffered
    /// writes. Returns `(version, writes)`; version 0 means the
    /// transaction was read-only and published nothing.
    pub fn commit(&mut self) -> ClientResult<(u64, u64)> {
        let r = self.request("commit", Json::Object(vec![]))?;
        match (
            r.get("version").and_then(Json::as_u64),
            r.get("writes").and_then(Json::as_u64),
        ) {
            (Some(version), Some(writes)) => Ok((version, writes)),
            _ => Err(ClientError::Protocol("commit: malformed result".into())),
        }
    }

    /// `abort`: discards the transaction's workspace and buffered writes.
    /// Returns the number of locks released (inherited S-locks included).
    pub fn abort(&mut self) -> ClientResult<u64> {
        let r = self.request("abort", Json::Object(vec![]))?;
        r.get("released")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("abort: malformed result".into()))
    }

    /// Local attribute write.
    pub fn set_attr(&mut self, obj: Surrogate, name: &str, value: Value) -> ClientResult<()> {
        let params = Json::Object(vec![
            ("obj".into(), Json::UInt(obj.0)),
            ("name".into(), Json::String(name.into())),
            ("value".into(), serde_json::to_value(&value)),
        ]);
        self.request("set_attr", params).map(|_| ())
    }

    /// Binds `inheritor` to `transmitter` in `rel`; returns the
    /// relationship object's surrogate.
    pub fn bind(
        &mut self,
        rel: &str,
        transmitter: Surrogate,
        inheritor: Surrogate,
    ) -> ClientResult<Surrogate> {
        let params = Json::Object(vec![
            ("rel".into(), Json::String(rel.into())),
            ("transmitter".into(), Json::UInt(transmitter.0)),
            ("inheritor".into(), Json::UInt(inheritor.0)),
        ]);
        let r = self.request("bind", params)?;
        r.as_u64()
            .map(Surrogate)
            .ok_or_else(|| ClientError::Protocol("bind: non-integer surrogate".into()))
    }

    /// Dissolves an inheritance binding.
    pub fn unbind(&mut self, rel_obj: Surrogate) -> ClientResult<()> {
        let params = Json::Object(vec![("rel_obj".into(), Json::UInt(rel_obj.0))]);
        self.request("unbind", params).map(|_| ())
    }

    /// Selects objects of `ty` matching the `where` expression source
    /// (`None` selects all).
    pub fn select(&mut self, ty: &str, where_src: Option<&str>) -> ClientResult<Vec<Surrogate>> {
        let mut params = vec![("type".to_string(), Json::String(ty.into()))];
        if let Some(src) = where_src {
            params.push(("where".into(), Json::String(src.into())));
        }
        let r = self.request("select", Json::Object(params))?;
        r.as_array()
            .map(|items| {
                items
                    .iter()
                    .filter_map(Json::as_u64)
                    .map(Surrogate)
                    .collect()
            })
            .ok_or_else(|| ClientError::Protocol("select: non-array result".into()))
    }

    /// Constraint-checks every object; returns `(object, constraint)` pairs.
    pub fn check_all(&mut self) -> ClientResult<Vec<(Surrogate, String)>> {
        let r = self.request("check_all", Json::Object(vec![]))?;
        r.as_array()
            .map(|items| {
                items
                    .iter()
                    .filter_map(|v| {
                        Some((
                            Surrogate(v.get("object")?.as_u64()?),
                            v.get("constraint")?.as_str()?.to_string(),
                        ))
                    })
                    .collect()
            })
            .ok_or_else(|| ClientError::Protocol("check_all: non-array result".into()))
    }

    /// A type's effective schema with provenance.
    pub fn effective(&mut self, ty: &str) -> ClientResult<Json> {
        self.request(
            "effective",
            Json::Object(vec![("type".into(), Json::String(ty.into()))]),
        )
    }

    /// The inheritance chain `ty.attr` resolves through.
    pub fn explain(&mut self, ty: &str, attr: &str) -> ClientResult<Json> {
        self.request(
            "explain",
            Json::Object(vec![
                ("type".into(), Json::String(ty.into())),
                ("attr".into(), Json::String(attr.into())),
            ]),
        )
    }

    /// The server's metrics snapshot as JSON.
    pub fn stats(&mut self) -> ClientResult<Json> {
        self.request("stats", Json::Object(vec![]))
    }

    /// The plaintext Prometheus scrape.
    pub fn metrics(&mut self) -> ClientResult<String> {
        let r = self.request("metrics", Json::Object(vec![]))?;
        r.as_str()
            .map(str::to_string)
            .ok_or_else(|| ClientError::Protocol("metrics: non-string result".into()))
    }

    /// Windowed time-series query: per-series points/rates/quantiles plus
    /// the per-verb latency and wakeup-latency digests, computed
    /// server-side from the telemetry ring. `params` carries the optional
    /// `points` / `window_ms` / `series` knobs (empty object for
    /// defaults).
    pub fn telemetry(&mut self, params: Json) -> ClientResult<Json> {
        self.request("telemetry", params)
    }

    /// Subscribes this connection to streamed telemetry frames every
    /// `interval_ms`, filtered to `series` name patterns (empty → server
    /// default). Returns the acknowledgement object (`tick`,
    /// `interval_ms` as clamped, `series` matched now). After this call
    /// the server pushes unsolicited frames; drain them with
    /// [`Client::recv_watch_frame`]. The lock-step [`Client::request`]
    /// path must not be used while a watch is live — an interleaved frame
    /// would be mistaken for the response.
    pub fn watch(&mut self, interval_ms: u64, series: &[&str]) -> ClientResult<Json> {
        let mut params = vec![("interval_ms".to_string(), Json::UInt(interval_ms))];
        if !series.is_empty() {
            params.push((
                "series".into(),
                Json::Array(series.iter().map(|s| Json::String((*s).into())).collect()),
            ));
        }
        self.request("watch", Json::Object(params))
    }

    /// Cancels this connection's watch subscription. Frames already in
    /// flight may still arrive before the acknowledgement; callers should
    /// drain until they see the `watching: false` ack envelope.
    pub fn watch_stop(&mut self) -> ClientResult<Json> {
        self.request(
            "watch",
            Json::Object(vec![("stop".into(), Json::Bool(true))]),
        )
    }

    /// Reads one streamed telemetry frame (the `result` of the pushed
    /// envelope). Only meaningful after [`Client::watch`]; respects the
    /// configured read timeout.
    pub fn recv_watch_frame(&mut self) -> ClientResult<Json> {
        let v = self.read_response_json()?;
        match v.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(v.get("result").cloned().unwrap_or(Json::Null)),
            Some(false) => Err(envelope_error(&v)),
            None => Err(ClientError::Protocol("frame missing `ok`".into())),
        }
    }

    /// Issues `sub_requests` — `(verb, params)` pairs — as **one** `batch`
    /// frame, executed by the server under a single store guard
    /// acquisition. Returns one result per sub-request, in order; a
    /// failing sub-request yields an `Err` in its slot without aborting
    /// the rest (per-entry isolation). The outer `Err` covers
    /// frame/admission failures — notably `overloaded`, which rejects the
    /// whole batch as one queue job.
    pub fn batch(
        &mut self,
        sub_requests: Vec<(&str, Json)>,
    ) -> ClientResult<Vec<Result<Json, ClientError>>> {
        let requests = Json::Array(
            sub_requests
                .into_iter()
                .map(|(verb, params)| {
                    Json::Object(vec![
                        ("verb".into(), Json::String(verb.into())),
                        ("params".into(), params),
                    ])
                })
                .collect(),
        );
        let r = self.request("batch", Json::Object(vec![("requests".into(), requests)]))?;
        let slots = r
            .as_array()
            .ok_or_else(|| ClientError::Protocol("batch: non-array result".into()))?;
        Ok(slots
            .iter()
            .map(|slot| match slot.get("ok").and_then(Json::as_bool) {
                Some(true) => Ok(slot.get("result").cloned().unwrap_or(Json::Null)),
                _ => {
                    let err = slot.get("error");
                    Err(ClientError::Server {
                        kind: err
                            .and_then(|e| e.get("kind"))
                            .and_then(Json::as_str)
                            .unwrap_or("unknown")
                            .to_string(),
                        message: err
                            .and_then(|e| e.get("message"))
                            .and_then(Json::as_str)
                            .unwrap_or("")
                            .to_string(),
                    })
                }
            })
            .collect())
    }

    /// This connection's session info.
    pub fn session(&mut self) -> ClientResult<Json> {
        self.request("session", Json::Object(vec![]))
    }

    /// Asks the server to drain and stop.
    pub fn shutdown_server(&mut self) -> ClientResult<()> {
        self.request("shutdown", Json::Object(vec![])).map(|_| ())
    }

    /// Reads one frame directly (after `send_raw`) and decodes it into
    /// the response envelope in this connection's dialect; exposed for
    /// tests.
    pub fn read_response_json(&mut self) -> ClientResult<Json> {
        let raw = match self.recv_raw() {
            Ok(r) => r,
            Err(FrameError::Io(e)) => return Err(ClientError::Io(e)),
            Err(e) => return Err(ClientError::Protocol(e.to_string())),
        };
        if self.proto == PROTOCOL_V2 {
            decode_response_v2(&raw).map_err(ClientError::Protocol)
        } else {
            parse_v1_envelope(&raw)
        }
    }

    /// The underlying stream (tests use this to half-close or mangle it).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }
}

/// Parses a v1 JSON response payload into the envelope value.
fn parse_v1_envelope(raw: &[u8]) -> ClientResult<Json> {
    let text = std::str::from_utf8(raw)
        .map_err(|_| ClientError::Protocol("response is not UTF-8".into()))?;
    serde_json::from_str(text).map_err(|e| ClientError::Protocol(format!("bad response JSON: {e}")))
}

/// Lifts an `ok: false` envelope into [`ClientError::Server`].
fn envelope_error(v: &Json) -> ClientError {
    let err = v.get("error");
    ClientError::Server {
        kind: err
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string(),
        message: err
            .and_then(|e| e.get("message"))
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string(),
    }
}

/// Blanket `Read`/`Write` passthrough so tests can speak raw bytes.
impl Write for Client {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.stream.write(buf)
    }
    fn flush(&mut self) -> io::Result<()> {
        self.stream.flush()
    }
}

impl Read for Client {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.stream.read(buf)
    }
}
