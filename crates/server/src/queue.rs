//! Bounded MPMC request queue — the server's admission controller.
//!
//! `push` never blocks: when the queue is at capacity the caller gets the
//! job back and turns it into an explicit `Overloaded` response, so memory
//! stays bounded under any offered load (backpressure instead of buffering).
//! `pop` blocks workers until a job or close. After [`BoundedQueue::close`],
//! pushes are refused but **queued jobs still drain** — `pop` returns
//! `None` only once the queue is both closed and empty, which is what
//! graceful shutdown relies on to finish in-flight requests.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use ccdb_obs::Histogram;

/// Why a push was refused.
#[derive(Debug)]
pub enum PushError<T> {
    /// At capacity; the job is handed back for an `Overloaded` reply.
    Full(T),
    /// Queue closed (server draining); handed back for a `Shutdown` reply.
    Closed(T),
}

struct State<T> {
    /// Items with their admission stamp; the stamp feeds the queue's own
    /// wakeup-latency histogram at pop time.
    items: VecDeque<(Instant, T)>,
    closed: bool,
}

/// A fixed-capacity FIFO shared by connection readers (producers) and the
/// worker pool (consumers).
///
/// The queue is its own probe: every item is stamped at `push` and the
/// enqueue→dequeue delta is observed into the optional wakeup histogram
/// at `pop`, so scheduler wait is measured at the source instead of being
/// reconstructed from per-request phase timelines.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    capacity: usize,
    wakeup: Option<Arc<Histogram>>,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue admitting at most `capacity` jobs at once.
    pub fn new(capacity: usize) -> Self {
        Self::with_wakeup_histogram(capacity, None)
    }

    /// Creates a queue that also observes each item's enqueue→dequeue
    /// latency into `wakeup`.
    pub fn with_wakeup_histogram(capacity: usize, wakeup: Option<Arc<Histogram>>) -> Self {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity.max(1)),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
            wakeup,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        // Recover from poisoning: a panicking worker must not wedge the
        // queue for every other connection.
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Admits a job, or refuses immediately when full/closed.
    pub fn push(&self, item: T) -> Result<(), PushError<T>> {
        let mut s = self.lock();
        if s.closed {
            return Err(PushError::Closed(item));
        }
        if s.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        s.items.push_back((Instant::now(), item));
        drop(s);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` once the queue is closed **and**
    /// fully drained.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.lock();
        loop {
            if let Some((enqueued, item)) = s.items.pop_front() {
                drop(s);
                if let Some(h) = &self.wakeup {
                    h.observe(enqueued.elapsed().as_nanos() as u64);
                }
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self.not_empty.wait(s).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Stops admission and wakes every blocked consumer.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
    }

    /// Jobs currently queued (for the depth gauge).
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn refuses_when_full_and_hands_item_back() {
        let q = BoundedQueue::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        match q.push(3) {
            Err(PushError::Full(3)) => {}
            other => panic!("expected Full(3), got {other:?}"),
        }
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn drains_after_close_then_reports_none() {
        let q = BoundedQueue::new(4);
        q.push("a").unwrap();
        q.push("b").unwrap();
        q.close();
        assert!(matches!(q.push("c"), Err(PushError::Closed("c"))));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn wakeup_histogram_observes_enqueue_to_dequeue() {
        let h = Arc::new(Histogram::latency_ns());
        let q = BoundedQueue::with_wakeup_histogram(4, Some(Arc::clone(&h)));
        q.push(1).unwrap();
        thread::sleep(std::time::Duration::from_millis(5));
        q.push(2).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        // The first item waited ≥ 5 ms before its dequeue.
        assert!(s.sum >= 5_000_000, "sum {}", s.sum);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let q2 = Arc::clone(&q);
        let h = thread::spawn(move || q2.pop());
        thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().unwrap(), None);
    }

    #[test]
    fn concurrent_producers_and_consumers_preserve_every_item() {
        let q = Arc::new(BoundedQueue::new(1024));
        let total: u64 = thread::scope(|s| {
            let consumers: Vec<_> = (0..4)
                .map(|_| {
                    let q = Arc::clone(&q);
                    s.spawn(move || {
                        let mut sum = 0u64;
                        while let Some(v) = q.pop() {
                            sum += v;
                        }
                        sum
                    })
                })
                .collect();
            for chunk in 0..4 {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    for v in (chunk * 100)..(chunk * 100 + 100) {
                        q.push(v as u64).unwrap();
                    }
                });
            }
            thread::sleep(std::time::Duration::from_millis(50));
            q.close();
            consumers.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(total, (0u64..400).sum());
    }
}
