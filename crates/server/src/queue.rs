//! Sharded bounded MPMC request queue — the server's admission controller.
//!
//! One bounded queue per worker ("shard"), with work stealing, replacing
//! the single Mutex+Condvar `BoundedQueue` whose one lock every producer
//! and every consumer serialized through (E16 measured its enqueue→dequeue
//! wakeup at p50 ~59 µs). The contract the server relies on is unchanged:
//!
//! - `push` never blocks: the **global** admission cap (summed across
//!   shards) is enforced atomically, and at capacity the caller gets the
//!   job back for an explicit `Overloaded` response — backpressure
//!   instead of buffering, memory bounded under any offered load.
//! - `pop` blocks workers until a job or close. After
//!   [`ShardedQueue::close`], pushes are refused but **queued jobs still
//!   drain** — `pop` returns `None` only once the queue is both closed
//!   and empty (across every shard), which graceful shutdown relies on to
//!   finish in-flight requests.
//!
//! Wakeup discipline (this is where the old design was subtly wrong —
//! `push` did one `notify_one` against a pool of sleepers, so a
//! notification delivered to a consumer that was already running was
//! simply lost and the job sat until the *next* push):
//!
//! - a push targets a **sleeping** worker's shard when one exists (its
//!   `notify_one` wakes exactly that worker — targeted, no herd), else
//!   round-robins;
//! - a worker whose own shard is empty **steals** from the other shards
//!   before parking;
//! - parking is raceless by a Dekker-style handshake on two `SeqCst`
//!   locations: the worker publishes `sleeping = true` and then re-checks
//!   the global depth before waiting; the pusher bumps the depth *before*
//!   reading `sleeping`. Whichever order the two interleave in, either
//!   the worker sees the reserved depth and rescans instead of sleeping,
//!   or the pusher sees `sleeping` and pokes that worker under its shard
//!   mutex (`poked` is part of the wait predicate, so the poke cannot be
//!   lost). A job can therefore never strand while any worker is parked.
//!
//! The queue stays its own probe: every item is stamped at `push` and the
//! enqueue→dequeue delta is observed at `pop` into the pooled wakeup
//! histogram plus the dequeuing shard's own, and cross-shard steals feed
//! pooled + per-worker steal counters.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

use ccdb_obs::{Counter, Histogram};

/// Why a push was refused.
#[derive(Debug)]
pub enum PushError<T> {
    /// At capacity; the job is handed back for an `Overloaded` reply.
    Full(T),
    /// Queue closed (server draining); handed back for a `Shutdown` reply.
    Closed(T),
}

/// Optional measurement hooks, wired by the server into the process-global
/// registry. Empty/`None` entries observe nothing.
#[derive(Default)]
pub struct QueueObservers {
    /// Pooled enqueue→dequeue latency (`ccdb_server_wakeup_latency_ns`).
    pub wakeup: Option<Arc<Histogram>>,
    /// Per-shard enqueue→dequeue latency, indexed by shard.
    pub wakeup_per_shard: Vec<Arc<Histogram>>,
    /// Pooled cross-shard steal count.
    pub steals: Option<Arc<Counter>>,
    /// Steals performed *by* each worker, indexed by worker.
    pub steals_per_worker: Vec<Arc<Counter>>,
}

struct Shard<T> {
    items: VecDeque<(Instant, T)>,
    /// Set under the shard mutex by a pusher that saw this worker
    /// sleeping; part of the wait predicate so the wake cannot be lost.
    poked: bool,
}

struct ShardSlot<T> {
    state: Mutex<Shard<T>>,
    not_empty: Condvar,
    /// Published (SeqCst) by the shard's worker around its condvar wait;
    /// pushers use it for targeted wakeup and the poke backstop.
    sleeping: AtomicBool,
}

impl<T> ShardSlot<T> {
    fn lock(&self) -> MutexGuard<'_, Shard<T>> {
        // Recover from poisoning: a panicking worker must not wedge the
        // queue for every other connection.
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// Per-worker bounded FIFOs under one global admission cap, shared by
/// connection readers (producers) and the worker pool (consumers).
pub struct ShardedQueue<T> {
    shards: Vec<ShardSlot<T>>,
    capacity: usize,
    /// Admitted-but-not-yet-dequeued items across all shards. Reserved
    /// (SeqCst) *before* the item lands in a shard — the pusher half of
    /// the sleep/wake handshake — and released at dequeue.
    depth: AtomicUsize,
    closed: AtomicBool,
    /// Round-robin cursor for pushes when no worker is sleeping.
    cursor: AtomicUsize,
    obs: QueueObservers,
}

impl<T> ShardedQueue<T> {
    /// A queue of `shards` per-worker FIFOs admitting at most `capacity`
    /// jobs at once in total.
    pub fn new(shards: usize, capacity: usize) -> Self {
        Self::with_observers(shards, capacity, QueueObservers::default())
    }

    /// Like [`new`](Self::new), with measurement hooks.
    pub fn with_observers(shards: usize, capacity: usize, obs: QueueObservers) -> Self {
        let shards = shards.max(1);
        ShardedQueue {
            shards: (0..shards)
                .map(|_| ShardSlot {
                    state: Mutex::new(Shard {
                        items: VecDeque::new(),
                        poked: false,
                    }),
                    not_empty: Condvar::new(),
                    sleeping: AtomicBool::new(false),
                })
                .collect(),
            capacity: capacity.max(1),
            depth: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
            cursor: AtomicUsize::new(0),
            obs,
        }
    }

    /// Number of shards (== workers the queue was sized for).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Admits a job, or refuses immediately when full/closed.
    pub fn push(&self, item: T) -> Result<(), PushError<T>> {
        if self.closed.load(Ordering::SeqCst) {
            return Err(PushError::Closed(item));
        }
        // Reserve a depth slot first (the global admission cap), then
        // re-check closed: a push that reserved after close released its
        // slot again, so no job can slip in once workers have drained to
        // zero and exited.
        if self.depth.fetch_add(1, Ordering::SeqCst) >= self.capacity {
            self.depth.fetch_sub(1, Ordering::SeqCst);
            return Err(PushError::Full(item));
        }
        if self.closed.load(Ordering::SeqCst) {
            self.depth.fetch_sub(1, Ordering::SeqCst);
            return Err(PushError::Closed(item));
        }
        // Target a sleeping worker's shard when one exists (it will run
        // the job the moment its notify lands), else round-robin.
        let n = self.shards.len();
        let start = self.cursor.fetch_add(1, Ordering::Relaxed) % n;
        let mut target = start;
        for k in 0..n {
            let i = (start + k) % n;
            if self.shards[i].sleeping.load(Ordering::SeqCst) {
                target = i;
                break;
            }
        }
        {
            let mut s = self.shards[target].lock();
            s.items.push_back((Instant::now(), item));
        }
        self.shards[target].not_empty.notify_one();
        // Poke backstop: the depth reservation above happens-before this
        // read, so any worker that decided to sleep against depth == 0 is
        // visible here — wake one so it can steal the job instead of
        // waiting out the target worker's current request.
        if !self.shards[target].sleeping.load(Ordering::SeqCst) {
            for k in 1..n {
                let i = (target + k) % n;
                if self.shards[i].sleeping.load(Ordering::SeqCst) {
                    let mut s = self.shards[i].lock();
                    s.poked = true;
                    drop(s);
                    self.shards[i].not_empty.notify_one();
                    break;
                }
            }
        }
        Ok(())
    }

    /// Dequeues the front of `shard` if any, releasing its depth slot and
    /// observing its wakeup latency.
    fn try_take(&self, shard: usize) -> Option<T> {
        let (enqueued, item) = {
            let mut s = self.shards[shard].lock();
            s.items.pop_front()?
        };
        self.depth.fetch_sub(1, Ordering::SeqCst);
        let ns = enqueued.elapsed().as_nanos() as u64;
        if let Some(h) = &self.obs.wakeup {
            h.observe(ns);
        }
        if let Some(h) = self.obs.wakeup_per_shard.get(shard) {
            h.observe(ns);
        }
        Some(item)
    }

    /// Blocks `worker` for the next job — its own shard first, then a
    /// steal sweep over the others; `None` once the queue is closed
    /// **and** fully drained.
    pub fn pop(&self, worker: usize) -> Option<T> {
        let n = self.shards.len();
        let own = worker % n;
        loop {
            if let Some(item) = self.try_take(own) {
                return Some(item);
            }
            for k in 1..n {
                let j = (own + k) % n;
                if let Some(item) = self.try_take(j) {
                    if let Some(c) = &self.obs.steals {
                        c.inc();
                    }
                    if let Some(c) = self.obs.steals_per_worker.get(own) {
                        c.inc();
                    }
                    return Some(item);
                }
            }
            // Nothing anywhere: park on the own shard's condvar.
            let slot = &self.shards[own];
            let mut spin = false;
            let mut s = slot.lock();
            loop {
                if !s.items.is_empty() {
                    break; // outer loop takes it (and observes latency)
                }
                if s.poked {
                    s.poked = false;
                    break; // a pusher saw us sleeping; rescan and steal
                }
                if self.closed.load(Ordering::SeqCst) && self.depth.load(Ordering::SeqCst) == 0 {
                    return None;
                }
                slot.sleeping.store(true, Ordering::SeqCst);
                // Dekker handshake with push: depth is reserved before the
                // pusher reads `sleeping`, so either we see the reserved
                // slot here (and rescan — the item is in, or nanoseconds
                // from, a shard), or the pusher sees `sleeping` and pokes
                // us under this mutex. Sleeping through a push is
                // impossible either way.
                if self.depth.load(Ordering::SeqCst) > 0 {
                    slot.sleeping.store(false, Ordering::SeqCst);
                    spin = true;
                    break;
                }
                s = slot.not_empty.wait(s).unwrap_or_else(|p| p.into_inner());
                slot.sleeping.store(false, Ordering::SeqCst);
            }
            drop(s);
            if spin {
                // The reserved item may still be mid-push; yield rather
                // than hammer the shard locks.
                std::thread::yield_now();
            }
        }
    }

    /// Stops admission and wakes every parked consumer. Queued jobs still
    /// drain (see [`pop`](Self::pop)).
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        for slot in &self.shards {
            let mut s = slot.lock();
            // Force waiters through a full rescan so they observe closed
            // (and steal any remaining drain work) instead of re-parking.
            s.poked = true;
            drop(s);
            slot.not_empty.notify_all();
        }
    }

    /// Jobs currently admitted across all shards (for the depth gauge).
    pub fn len(&self) -> usize {
        self.depth.load(Ordering::SeqCst)
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn refuses_when_full_and_hands_item_back() {
        let q = ShardedQueue::new(2, 2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        match q.push(3) {
            Err(PushError::Full(3)) => {}
            other => panic!("expected Full(3), got {other:?}"),
        }
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn drains_after_close_then_reports_none() {
        let q = ShardedQueue::new(2, 4);
        q.push("a").unwrap();
        q.push("b").unwrap();
        q.close();
        assert!(matches!(q.push("c"), Err(PushError::Closed("c"))));
        // One worker drains both shards (steal-on-empty), then sees
        // closed+empty.
        let mut drained = vec![q.pop(0).unwrap(), q.pop(0).unwrap()];
        drained.sort();
        assert_eq!(drained, vec!["a", "b"]);
        assert_eq!(q.pop(0), None);
        assert_eq!(q.pop(1), None);
    }

    #[test]
    fn wakeup_histograms_observe_enqueue_to_dequeue_pooled_and_per_shard() {
        let pooled = Arc::new(Histogram::latency_ns());
        let per: Vec<Arc<Histogram>> = (0..2).map(|_| Arc::new(Histogram::latency_ns())).collect();
        let q = ShardedQueue::with_observers(
            2,
            4,
            QueueObservers {
                wakeup: Some(Arc::clone(&pooled)),
                wakeup_per_shard: per.clone(),
                ..QueueObservers::default()
            },
        );
        q.push(1).unwrap();
        thread::sleep(Duration::from_millis(5));
        q.push(2).unwrap();
        assert!(q.pop(0).is_some());
        assert!(q.pop(0).is_some());
        let s = pooled.snapshot();
        assert_eq!(s.count, 2);
        // The first item waited ≥ 5 ms before its dequeue.
        assert!(s.sum >= 5_000_000, "sum {}", s.sum);
        let per_total: u64 = per.iter().map(|h| h.snapshot().count).sum();
        assert_eq!(per_total, 2, "per-shard histograms must cover every pop");
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(ShardedQueue::<u32>::new(3, 4));
        let handles: Vec<_> = (0..3)
            .map(|w| {
                let q = Arc::clone(&q);
                thread::spawn(move || q.pop(w))
            })
            .collect();
        thread::sleep(Duration::from_millis(20));
        q.close();
        for h in handles {
            assert_eq!(h.join().unwrap(), None);
        }
    }

    /// Regression for the old `BoundedQueue` pairing bug: `push` did one
    /// `notify_one` against a pool of sleepers, so a wakeup delivered to a
    /// consumer that was already running was lost and the job sat until
    /// the *next* push. Here the only popping worker owns shard 1; pushes
    /// spaced so the worker parks between them must each wake it (targeted
    /// notify + poke backstop), and items round-robined onto shard 0
    /// before the worker exists (its "worker" never pops — the
    /// consumed-then-dropped / stuck-worker shape) must drain via steals.
    #[test]
    fn jobs_never_strand_while_an_idle_worker_exists() {
        let steals = Arc::new(Counter::new());
        let q = Arc::new(ShardedQueue::with_observers(
            2,
            64,
            QueueObservers {
                steals: Some(Arc::clone(&steals)),
                ..QueueObservers::default()
            },
        ));
        // No consumer yet ⇒ no sleeper to target ⇒ round-robin lands half
        // of these on shard 0, which only stealing can ever drain.
        for v in 0..10 {
            q.push(v).unwrap();
        }
        let consumer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let mut got = 0u64;
                while q.pop(1).is_some() {
                    got += 1;
                }
                got
            })
        };
        for v in 10..50 {
            q.push(v).unwrap();
            // Space the pushes out so the consumer parks between them —
            // the exact shape that lost wakeups under the old design.
            if v % 10 == 0 {
                thread::sleep(Duration::from_millis(2));
            }
        }
        // Every item must drain without close() bailing anyone out.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while !q.is_empty() {
            assert!(
                std::time::Instant::now() < deadline,
                "items stranded: {} still queued",
                q.len()
            );
            thread::sleep(Duration::from_millis(1));
        }
        q.close();
        assert_eq!(consumer.join().unwrap(), 50);
        assert!(steals.get() > 0, "shard-0 items can only drain via steals");
    }

    #[test]
    fn concurrent_producers_and_consumers_preserve_every_item() {
        let q = Arc::new(ShardedQueue::new(4, 1024));
        let total: u64 = thread::scope(|s| {
            let consumers: Vec<_> = (0..4)
                .map(|w| {
                    let q = Arc::clone(&q);
                    s.spawn(move || {
                        let mut sum = 0u64;
                        while let Some(v) = q.pop(w) {
                            sum += v;
                        }
                        sum
                    })
                })
                .collect();
            for chunk in 0..4 {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    for v in (chunk * 100)..(chunk * 100 + 100) {
                        q.push(v as u64).unwrap();
                    }
                });
            }
            thread::sleep(Duration::from_millis(50));
            q.close();
            consumers.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(total, (0u64..400).sum());
    }
}
