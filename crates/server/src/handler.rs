//! Verb dispatch: one parsed request against the shared store.
//!
//! Handlers are pure request → `Result<Json, (ErrorKind, message)>`
//! functions over [`SharedStore`]; the threading, framing, and response
//! writing live in [`crate::server`]. Read verbs take the store's shared
//! lock (many in parallel across workers), write verbs the exclusive one —
//! so a transmitter update by one session is visible to every other
//! session's next read, which is the paper's instant-visibility semantics
//! carried over the wire.

use std::time::Instant;

use ccdb_core::expr::Expr;
use ccdb_core::schema::{Catalog, ItemSource};
use ccdb_core::shared::SharedStore;
use ccdb_core::{CoreError, Surrogate, Value};
use ccdb_txn::{SessionError, TxnRegistry};
use serde_json::Value as Json;

use crate::proto::ErrorKind;

/// Handler failure: wire error kind plus client-safe message.
pub(crate) type HandlerError = (ErrorKind, String);
pub(crate) type HandlerResult = Result<Json, HandlerError>;

/// Static facts about the serving process, echoed in the `ping` reply as
/// `server_info` so dashboards (`ccdb top`) can label what they scrape.
pub(crate) struct ServerContext {
    /// When the server started (uptime reference).
    pub started: Instant,
    /// Configured worker-thread count.
    pub workers: usize,
    /// Configured admission-queue capacity.
    pub queue_depth: usize,
    /// Resolution-cache shard count of the served store.
    pub rescache_shards: usize,
    /// Highest wire protocol this server negotiates (1 = pinned to v1).
    pub max_proto: u8,
    /// Resolved event-loop readiness backend (`"poll"` or `"epoll"`).
    pub backend: &'static str,
    /// Whether the event loop executes read-only snapshot verbs inline.
    pub inline_reads: bool,
}

impl Default for ServerContext {
    fn default() -> Self {
        ServerContext {
            started: Instant::now(),
            workers: 1,
            queue_depth: 0,
            rescache_shards: 0,
            max_proto: crate::proto::PROTOCOL_V2,
            backend: "poll",
            inline_reads: false,
        }
    }
}

impl ServerContext {
    fn info_json(&self) -> Json {
        Json::Object(vec![
            (
                "version".into(),
                Json::String(env!("CARGO_PKG_VERSION").into()),
            ),
            (
                "uptime_ms".into(),
                Json::UInt(self.started.elapsed().as_millis() as u64),
            ),
            ("workers".into(), Json::UInt(self.workers as u64)),
            ("queue_depth".into(), Json::UInt(self.queue_depth as u64)),
            (
                "rescache_shards".into(),
                Json::UInt(self.rescache_shards as u64),
            ),
            ("max_proto".into(), Json::UInt(self.max_proto as u64)),
            ("backend".into(), Json::String(self.backend.into())),
            ("inline_reads".into(), Json::Bool(self.inline_reads)),
        ])
    }
}

/// Renders one flight-recorder entry for the `flight` verb.
fn flight_record_json(r: &ccdb_obs::FlightRecord) -> Json {
    let phases = ccdb_obs::flight::PHASE_NAMES
        .iter()
        .zip(r.phases.iter())
        .map(|(name, ns)| ((*name).to_string(), Json::UInt(*ns)))
        .collect();
    Json::Object(vec![
        ("verb".into(), Json::String(r.verb.clone())),
        ("outcome".into(), Json::String(r.outcome.clone())),
        ("end_unix_ns".into(), Json::UInt(r.end_unix_ns)),
        ("total_ns".into(), Json::UInt(r.total_ns)),
        ("phases".into(), Json::Object(phases)),
        (
            "trace".into(),
            r.trace.map(Json::UInt).unwrap_or(Json::Null),
        ),
        ("session".into(), Json::UInt(r.session)),
        ("proto".into(), Json::UInt(r.proto as u64)),
    ])
}

/// `telemetry`: windowed queries over the server-side time-series ring.
///
/// Params (all optional): `points` — sparkline length in samples
/// (default 32); `window_ms` — quantile/rate window (default
/// `points × sampler interval`); `series` — names or trailing-`*`
/// prefixes (default `ccdb_server_*`).
///
/// Returns per-series data (counter per-tick deltas + windowed rate,
/// gauge point vectors, histogram windowed count/p50/p95/p99), plus two
/// convenience blocks dashboards want pre-digested: `verbs` (per-verb
/// windowed total-latency quantiles, from the ring — not from cumulative
/// scrapes, so they track the window instead of skewing after long
/// uptimes) and `wakeup` (the scheduler's enqueue→dequeue histogram over
/// the same window).
fn handle_telemetry(params: &Json) -> HandlerResult {
    let ts = ccdb_obs::global_series();
    let interval_ms = ts.interval_ms().max(1);
    let retention = ts.retention();
    let points = params
        .get("points")
        .and_then(Json::as_u64)
        .unwrap_or(32)
        .clamp(1, retention as u64) as usize;
    let window_ms = params
        .get("window_ms")
        .and_then(Json::as_u64)
        .unwrap_or(points as u64 * interval_ms)
        .max(interval_ms);
    let window_samples = (window_ms.div_ceil(interval_ms) as usize).clamp(1, retention);
    let window_secs = (window_samples as u64 * interval_ms) as f64 / 1_000.0;
    let patterns = {
        let named: Vec<String> = params
            .get("series")
            .and_then(Json::as_array)
            .map(|items| {
                items
                    .iter()
                    .filter_map(|v| v.as_str().map(String::from))
                    .collect()
            })
            .unwrap_or_default();
        if named.is_empty() {
            vec!["ccdb_server_*".to_string()]
        } else {
            named
        }
    };

    let mut series = Vec::new();
    for (name, kind) in ts.names_matching(&patterns) {
        let mut fields = vec![
            ("name".into(), Json::String(name.clone())),
            ("kind".into(), Json::String(kind.as_str().into())),
        ];
        match kind {
            ccdb_obs::SeriesKind::Counter => {
                let pts = ts.counter_points(&name, points).unwrap_or_default();
                let delta = ts.counter_delta(&name, window_samples).unwrap_or(0);
                fields.push(("delta".into(), Json::UInt(delta)));
                fields.push(("rate".into(), Json::Float(delta as f64 / window_secs)));
                fields.push((
                    "points".into(),
                    Json::Array(pts.into_iter().map(Json::UInt).collect()),
                ));
            }
            ccdb_obs::SeriesKind::Gauge => {
                let pts = ts.gauge_points(&name, points).unwrap_or_default();
                fields.push(("value".into(), Json::Int(pts.last().copied().unwrap_or(0))));
                fields.push((
                    "points".into(),
                    Json::Array(pts.into_iter().map(Json::Int).collect()),
                ));
            }
            ccdb_obs::SeriesKind::Histogram => {
                if let Some(w) = ts.hist_window(&name, window_samples) {
                    fields.push(("count".into(), Json::UInt(w.count)));
                    fields.push(("sum".into(), Json::UInt(w.sum)));
                    for (label, q) in [("p50", 0.5), ("p95", 0.95), ("p99", 0.99)] {
                        fields.push((
                            label.into(),
                            w.quantile(q).map(Json::Float).unwrap_or(Json::Null),
                        ));
                    }
                }
            }
        }
        series.push(Json::Object(fields));
    }

    let verbs: Vec<Json> = crate::proto::VERBS
        .iter()
        .filter_map(|v| {
            let w = ts.hist_window(&format!("ccdb_server_phase_{v}_total_ns"), window_samples)?;
            if w.count == 0 {
                return None;
            }
            let mut fields = vec![
                ("verb".into(), Json::String((*v).into())),
                ("count".into(), Json::UInt(w.count)),
            ];
            for (label, q) in [("p50_ns", 0.5), ("p95_ns", 0.95), ("p99_ns", 0.99)] {
                fields.push((
                    label.into(),
                    w.quantile(q).map(Json::Float).unwrap_or(Json::Null),
                ));
            }
            Some(Json::Object(fields))
        })
        .collect();

    let wakeup = match ts.hist_window("ccdb_server_wakeup_latency_ns", window_samples) {
        Some(w) => {
            let mut fields = vec![("count".into(), Json::UInt(w.count))];
            for (label, q) in [("p50_ns", 0.5), ("p95_ns", 0.95), ("p99_ns", 0.99)] {
                fields.push((
                    label.into(),
                    w.quantile(q).map(Json::Float).unwrap_or(Json::Null),
                ));
            }
            Json::Object(fields)
        }
        None => Json::Null,
    };

    Ok(Json::Object(vec![
        ("tick".into(), Json::UInt(ts.tick())),
        ("interval_ms".into(), Json::UInt(interval_ms)),
        ("retention".into(), Json::UInt(retention as u64)),
        ("points".into(), Json::UInt(points as u64)),
        ("window_ms".into(), Json::UInt(window_ms)),
        ("window_samples".into(), Json::UInt(window_samples as u64)),
        (
            "sampler_running".into(),
            Json::Bool(ccdb_obs::timeseries::global_sampler_running()),
        ),
        ("series".into(), Json::Array(series)),
        ("verbs".into(), Json::Array(verbs)),
        ("wakeup".into(), wakeup),
    ]))
}

/// `flight`: dump the flight recorder (most-recent + slowest retained
/// request timelines).
fn handle_flight() -> HandlerResult {
    let s = ccdb_obs::flight::snapshot();
    Ok(Json::Object(vec![
        (
            "recent".into(),
            Json::Array(s.recent.iter().map(flight_record_json).collect()),
        ),
        (
            "slowest".into(),
            Json::Array(s.slowest.iter().map(flight_record_json).collect()),
        ),
        ("recent_cap".into(), Json::UInt(s.recent_cap as u64)),
        ("slowest_cap".into(), Json::UInt(s.slowest_cap as u64)),
        ("recorded".into(), Json::UInt(s.recorded)),
    ]))
}

fn bad(msg: impl Into<String>) -> HandlerError {
    (ErrorKind::BadRequest, msg.into())
}

fn core_err(e: CoreError) -> HandlerError {
    (ErrorKind::Core, e.to_string())
}

/// Maps a wire-transaction failure onto the wire error kinds: lock
/// conflicts and first-committer-wins rejections are `conflict` (the
/// transaction is already aborted when these surface — the client should
/// retry from a fresh `begin`); bookkeeping misuse is `bad_request`.
fn session_err(e: SessionError) -> HandlerError {
    match e {
        SessionError::Lock(_) | SessionError::WriteConflict { .. } => {
            (ErrorKind::Conflict, e.to_string())
        }
        SessionError::Core(e) => core_err(e),
        SessionError::NoTxn | SessionError::AlreadyInTxn => bad(e.to_string()),
    }
}

fn param<'a>(params: &'a Json, key: &str) -> Result<&'a Json, HandlerError> {
    params
        .get(key)
        .ok_or_else(|| bad(format!("missing parameter `{key}`")))
}

fn surrogate_param(params: &Json, key: &str) -> Result<Surrogate, HandlerError> {
    param(params, key)?
        .as_u64()
        .map(Surrogate)
        .ok_or_else(|| bad(format!("parameter `{key}` must be an unsigned surrogate")))
}

fn str_param<'a>(params: &'a Json, key: &str) -> Result<&'a str, HandlerError> {
    param(params, key)?
        .as_str()
        .ok_or_else(|| bad(format!("parameter `{key}` must be a string")))
}

fn value_param(params: &Json, key: &str) -> Result<Value, HandlerError> {
    let raw = param(params, key)?;
    serde_json::from_value::<Value>(raw).map_err(|e| {
        bad(format!(
            "parameter `{key}` is not a valid value encoding: {e}"
        ))
    })
}

/// Decodes an optional `{name: <value encoding>}` object into attr pairs.
fn attrs_param(params: &Json, key: &str) -> Result<Vec<(String, Value)>, HandlerError> {
    let Some(raw) = params.get(key) else {
        return Ok(vec![]);
    };
    if raw.is_null() {
        return Ok(vec![]);
    }
    let pairs = raw
        .as_object_slice()
        .ok_or_else(|| bad(format!("parameter `{key}` must be an object of attributes")))?;
    pairs
        .iter()
        .map(|(name, v)| {
            serde_json::from_value::<Value>(v)
                .map(|val| (name.clone(), val))
                .map_err(|e| {
                    bad(format!(
                        "attribute `{name}` has invalid value encoding: {e}"
                    ))
                })
        })
        .collect()
}

fn surrogates_json(items: &[Surrogate]) -> Json {
    Json::Array(items.iter().map(|s| Json::UInt(s.0)).collect())
}

fn item_source_json(source: &ItemSource) -> Json {
    match source {
        ItemSource::Local => Json::String("local".into()),
        ItemSource::Inherited { via_rel, from_type } => Json::Object(vec![
            ("via_rel".into(), Json::String(via_rel.clone())),
            ("from_type".into(), Json::String(from_type.clone())),
        ]),
    }
}

/// `effective`: a type's effective schema with provenance, as JSON.
fn handle_effective(catalog: &Catalog, params: &Json) -> HandlerResult {
    let ty = str_param(params, "type")?;
    let eff = catalog.effective_schema(ty).map_err(core_err)?;
    let attrs = eff
        .attrs
        .iter()
        .map(|(name, domain, source)| {
            Json::Object(vec![
                ("name".into(), Json::String(name.clone())),
                ("domain".into(), Json::String(domain.describe())),
                ("source".into(), item_source_json(source)),
            ])
        })
        .collect();
    let subclasses = eff
        .subclasses
        .iter()
        .map(|(name, elem, source)| {
            Json::Object(vec![
                ("name".into(), Json::String(name.clone())),
                ("element_type".into(), Json::String(elem.clone())),
                ("source".into(), item_source_json(source)),
            ])
        })
        .collect();
    Ok(Json::Object(vec![
        ("type".into(), Json::String(ty.into())),
        ("attrs".into(), Json::Array(attrs)),
        ("subclasses".into(), Json::Array(subclasses)),
    ]))
}

/// `explain`: synthesize the inheritance chain an attribute resolves
/// through, from effective-schema provenance (type level; no instances).
fn handle_explain(catalog: &Catalog, params: &Json) -> HandlerResult {
    let ty = str_param(params, "type")?;
    let attr = str_param(params, "attr")?;
    let mut hops = Vec::new();
    let mut cur_ty = ty.to_string();
    let domain = loop {
        let eff = catalog.effective_schema(&cur_ty).map_err(core_err)?;
        match eff.attr(attr) {
            None => {
                return Err((
                    ErrorKind::Core,
                    format!("type `{cur_ty}` has no attribute `{attr}`"),
                ))
            }
            Some((domain, ItemSource::Local)) => break domain.describe(),
            Some((_, ItemSource::Inherited { via_rel, from_type })) => {
                hops.push(Json::Object(vec![
                    ("inheritor_type".into(), Json::String(cur_ty.clone())),
                    ("via_rel".into(), Json::String(via_rel.clone())),
                    ("transmitter_type".into(), Json::String(from_type.clone())),
                    (
                        "permeable".into(),
                        Json::Bool(catalog.is_permeable(via_rel, attr)),
                    ),
                ]));
                cur_ty = from_type.clone();
            }
        }
    };
    Ok(Json::Object(vec![
        ("type".into(), Json::String(ty.into())),
        ("attr".into(), Json::String(attr.into())),
        ("owner_type".into(), Json::String(cur_ty)),
        ("domain".into(), Json::String(domain)),
        ("hops".into(), Json::Array(hops)),
    ]))
}

/// Verbs that take the store's exclusive lock.
fn is_write_verb(verb: &str) -> bool {
    matches!(verb, "create" | "set_attr" | "bind" | "unbind")
}

/// Session-level transaction verbs: they mutate per-connection state, so
/// they are never allowed inside a `batch` frame.
fn is_txn_verb(verb: &str) -> bool {
    matches!(verb, "begin" | "commit" | "abort")
}

/// `begin`/`commit`/`abort` against the session's wire transaction.
fn handle_txn_verb(
    store: &SharedStore,
    txns: &TxnRegistry,
    session: u64,
    verb: &str,
) -> HandlerResult {
    match verb {
        "begin" => {
            let (txn, snapshot_version) = txns.begin(session, store).map_err(session_err)?;
            Ok(Json::Object(vec![
                ("txn".into(), Json::UInt(txn)),
                ("snapshot_version".into(), Json::UInt(snapshot_version)),
            ]))
        }
        "commit" => {
            let info = txns.commit(session, store).map_err(session_err)?;
            Ok(Json::Object(vec![
                ("version".into(), Json::UInt(info.version)),
                ("writes".into(), Json::UInt(info.writes as u64)),
            ]))
        }
        "abort" => {
            let released = txns.abort(session).map_err(session_err)?;
            Ok(Json::Object(vec![(
                "released".into(),
                Json::UInt(released as u64),
            )]))
        }
        other => Err(bad(format!("unknown verb `{other}`"))),
    }
}

/// A verb on a session with an open transaction. `attr` and `set_attr`
/// run against the transaction's workspace under §6 lock inheritance;
/// the structural write verbs and `batch` are refused (the wire
/// transaction's scope is item values — structure changes go through
/// plain writes outside a transaction); everything else falls through to
/// normal dispatch (reads see the published store, not the workspace).
fn handle_in_txn(
    txns: &TxnRegistry,
    session: u64,
    verb: &str,
    params: &Json,
) -> Option<HandlerResult> {
    match verb {
        "attr" => Some((|| {
            let obj = surrogate_param(params, "obj")?;
            let name = str_param(params, "name")?;
            let value = txns.read_attr(session, obj, name).map_err(session_err)?;
            Ok(serde_json::to_value(&value))
        })()),
        "set_attr" => Some((|| {
            let obj = surrogate_param(params, "obj")?;
            let name = str_param(params, "name")?;
            let value = value_param(params, "value")?;
            txns.set_attr(session, obj, name, value)
                .map_err(session_err)?;
            Ok(Json::Null)
        })()),
        "create" | "bind" | "unbind" | "batch" => Some(Err(bad(format!(
            "verb `{verb}` is not allowed inside a transaction; commit or abort first"
        )))),
        _ => None,
    }
}

/// Verbs that take the store's shared lock.
fn is_read_verb(verb: &str) -> bool {
    matches!(verb, "attr" | "select" | "check_all")
}

/// Verbs that never touch the store (so a batch can run them under
/// whichever guard it already holds, and a lone `ping` holds no guard at
/// all). Returns `None` for store verbs.
fn storeless_verb(
    catalog: &Catalog,
    ctx: &ServerContext,
    verb: &str,
    params: &Json,
    debug_verbs: bool,
) -> Option<HandlerResult> {
    match verb {
        "ping" => {
            // Optional artificial service time (capped); used by the drain
            // and overload tests and the latency harness.
            if let Some(ms) = params.get("delay_ms").and_then(Json::as_u64) {
                std::thread::sleep(std::time::Duration::from_millis(ms.min(1_000)));
            }
            Some(Ok(Json::Object(vec![
                ("pong".into(), Json::Bool(true)),
                ("server_info".into(), ctx.info_json()),
            ])))
        }
        "effective" => Some(handle_effective(catalog, params)),
        "explain" => Some(handle_explain(catalog, params)),
        "stats" => Some(
            serde_json::from_str(&ccdb_obs::global().render_json())
                .map_err(|e| (ErrorKind::Internal, format!("stats render: {e}"))),
        ),
        "metrics" => {
            // The plaintext Prometheus scrape, `GET /metrics`-style, so the
            // PR 1 exporter is reachable over the network.
            Some(Ok(Json::String(ccdb_obs::global().render_prometheus())))
        }
        "flight" => Some(handle_flight()),
        "telemetry" => Some(handle_telemetry(params)),
        "boom" if debug_verbs => panic!("boom: requested handler panic"),
        _ => None,
    }
}

/// One read verb against an already-acquired shared guard.
fn store_read_verb(
    st: &ccdb_core::ObjectStore,
    catalog: &Catalog,
    verb: &str,
    params: &Json,
) -> HandlerResult {
    match verb {
        "attr" => {
            let obj = surrogate_param(params, "obj")?;
            let name = str_param(params, "name")?;
            let value = st.attr(obj, name).map_err(core_err)?;
            Ok(serde_json::to_value(&value))
        }
        "select" => {
            let ty = str_param(params, "type")?;
            let predicate = match params.get("where").and_then(Json::as_str) {
                Some(src) => ccdb_lang::compile_expr(src, catalog)
                    .map_err(|e| bad(format!("invalid `where` expression: {e}")))?,
                // No predicate: match everything.
                None => Expr::eq(Expr::int(0), Expr::int(0)),
            };
            let hits = st.select(ty, &predicate).map_err(core_err)?;
            Ok(surrogates_json(&hits))
        }
        "check_all" => {
            let violations = st.check_all().map_err(core_err)?;
            Ok(Json::Array(
                violations
                    .iter()
                    .map(|v| {
                        Json::Object(vec![
                            ("object".into(), Json::UInt(v.object.0)),
                            ("constraint".into(), Json::String(v.constraint.clone())),
                            (
                                "detail".into(),
                                v.detail
                                    .as_ref()
                                    .map(|d| Json::String(d.clone()))
                                    .unwrap_or(Json::Null),
                            ),
                        ])
                    })
                    .collect(),
            ))
        }
        other => Err(bad(format!("unknown verb `{other}`"))),
    }
}

/// One write verb against an already-acquired exclusive guard.
fn store_write_verb(st: &mut ccdb_core::ObjectStore, verb: &str, params: &Json) -> HandlerResult {
    match verb {
        "create" => {
            let ty = str_param(params, "type")?;
            let attrs = attrs_param(params, "attrs")?;
            let owned: Vec<(&str, Value)> =
                attrs.iter().map(|(n, v)| (n.as_str(), v.clone())).collect();
            let s = st.create_object(ty, owned).map_err(core_err)?;
            Ok(Json::UInt(s.0))
        }
        "set_attr" => {
            let obj = surrogate_param(params, "obj")?;
            let name = str_param(params, "name")?;
            let value = value_param(params, "value")?;
            st.set_attr(obj, name, value).map_err(core_err)?;
            Ok(Json::Null)
        }
        "bind" => {
            let rel = str_param(params, "rel")?;
            let transmitter = surrogate_param(params, "transmitter")?;
            let inheritor = surrogate_param(params, "inheritor")?;
            let attrs = attrs_param(params, "attrs")?;
            let borrowed: Vec<(&str, Value)> =
                attrs.iter().map(|(n, v)| (n.as_str(), v.clone())).collect();
            let rel_obj = st
                .bind(rel, transmitter, inheritor, borrowed)
                .map_err(core_err)?;
            Ok(Json::UInt(rel_obj.0))
        }
        "unbind" => {
            let rel_obj = surrogate_param(params, "rel_obj")?;
            st.unbind(rel_obj).map_err(core_err)?;
            Ok(Json::Null)
        }
        other => Err(bad(format!("unknown verb `{other}`"))),
    }
}

/// One pre-parsed batch entry: verb + params, or a parse error carried to
/// its response slot.
enum BatchEntry<'a> {
    Run { verb: &'a str, params: &'a Json },
    Malformed(String),
}

/// Encodes a sub-request outcome into its positional response slot.
fn batch_slot(result: HandlerResult) -> Json {
    match result {
        Ok(v) => Json::Object(vec![("ok".into(), Json::Bool(true)), ("result".into(), v)]),
        Err((kind, message)) => Json::Object(vec![
            ("ok".into(), Json::Bool(false)),
            (
                "error".into(),
                Json::Object(vec![
                    ("kind".into(), Json::String(kind.as_str().into())),
                    ("message".into(), Json::String(message)),
                ]),
            ),
        ]),
    }
}

/// `batch`: execute `params.requests` (an array of `{verb, params}`
/// objects) under **one** store guard acquisition, returning one result
/// slot per entry in order. A failing entry fills its slot with an error
/// and later entries still execute (per-entry isolation); the store guard
/// is exclusive iff any entry is a write verb. Nested batches are
/// rejected per entry — one frame, one guard, no recursion.
fn handle_batch(
    store: &SharedStore,
    catalog: &Catalog,
    ctx: &ServerContext,
    params: &Json,
    debug_verbs: bool,
) -> HandlerResult {
    let subs = param(params, "requests")?
        .as_array()
        .ok_or_else(|| bad("`requests` must be an array"))?;
    let m = crate::metrics::server_metrics();
    m.batch_frames.inc();
    m.batch_subrequests.add(subs.len() as u64);
    m.batch_size.observe(subs.len() as u64);
    if subs.is_empty() {
        return Ok(Json::Array(vec![]));
    }
    let empty = Json::Object(vec![]);
    let entries: Vec<BatchEntry> = subs
        .iter()
        .map(|sub| {
            let Some(verb) = sub.get("verb").and_then(Json::as_str) else {
                return BatchEntry::Malformed("sub-request missing `verb`".into());
            };
            if verb == "batch" {
                return BatchEntry::Malformed("nested `batch` is not allowed".into());
            }
            if is_txn_verb(verb) {
                return BatchEntry::Malformed(format!(
                    "transaction verb `{verb}` is not allowed inside `batch`"
                ));
            }
            BatchEntry::Run {
                verb,
                params: sub.get("params").unwrap_or(&empty),
            }
        })
        .collect();
    let needs_write = entries
        .iter()
        .any(|e| matches!(e, BatchEntry::Run { verb, .. } if is_write_verb(verb)));
    let slots: Vec<Json> = if needs_write {
        store.write(|st| {
            entries
                .iter()
                .map(|e| {
                    batch_slot(match e {
                        BatchEntry::Malformed(msg) => Err(bad(msg.clone())),
                        BatchEntry::Run { verb, params } => {
                            if let Some(r) = storeless_verb(catalog, ctx, verb, params, debug_verbs)
                            {
                                r
                            } else if is_write_verb(verb) {
                                store_write_verb(st, verb, params)
                            } else if is_read_verb(verb) {
                                store_read_verb(st, catalog, verb, params)
                            } else {
                                Err(bad(format!("unknown verb `{verb}`")))
                            }
                        }
                    })
                })
                .collect()
        })
    } else {
        store.read(|st| {
            entries
                .iter()
                .map(|e| {
                    batch_slot(match e {
                        BatchEntry::Malformed(msg) => Err(bad(msg.clone())),
                        BatchEntry::Run { verb, params } => {
                            if let Some(r) = storeless_verb(catalog, ctx, verb, params, debug_verbs)
                            {
                                r
                            } else if is_read_verb(verb) {
                                store_read_verb(st, catalog, verb, params)
                            } else {
                                Err(bad(format!("unknown verb `{verb}`")))
                            }
                        }
                    })
                })
                .collect()
        })
    };
    Ok(Json::Array(slots))
}

/// Dispatches one verb. `debug_verbs` additionally enables the
/// test-only `boom` verb (panics inside the handler, exercising the
/// worker's panic isolation). Store verbs acquire exactly one guard —
/// a snapshot pin for reads, the exclusive master lock for writes, and
/// for a `batch` frame one guard covering every sub-request.
/// `begin`/`commit`/`abort` manage the session's wire transaction in
/// `txns`; while one is open, `attr`/`set_attr` route through it.
#[allow(clippy::too_many_arguments)]
pub(crate) fn handle_verb(
    store: &SharedStore,
    catalog: &Catalog,
    ctx: &ServerContext,
    txns: &TxnRegistry,
    session: u64,
    verb: &str,
    params: &Json,
    debug_verbs: bool,
) -> HandlerResult {
    if is_txn_verb(verb) {
        return handle_txn_verb(store, txns, session, verb);
    }
    if txns.in_txn(session) {
        if let Some(result) = handle_in_txn(txns, session, verb, params) {
            return result;
        }
    }
    if verb == "batch" {
        return handle_batch(store, catalog, ctx, params, debug_verbs);
    }
    if let Some(result) = storeless_verb(catalog, ctx, verb, params, debug_verbs) {
        return result;
    }
    if is_write_verb(verb) {
        store.write(|st| store_write_verb(st, verb, params))
    } else if is_read_verb(verb) {
        store.read(|st| store_read_verb(st, catalog, verb, params))
    } else {
        Err(bad(format!("unknown verb `{verb}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdb_core::domain::Domain;
    use ccdb_core::schema::{AttrDef, InherRelTypeDef, ObjectTypeDef};
    use serde_json::json;

    fn fixture() -> (SharedStore, Catalog) {
        let mut c = Catalog::new();
        c.register_object_type(ObjectTypeDef {
            name: "If".into(),
            attributes: vec![AttrDef::new("X", Domain::Int)],
            ..Default::default()
        })
        .unwrap();
        c.register_inher_rel_type(InherRelTypeDef {
            name: "AllOf_If".into(),
            transmitter_type: "If".into(),
            inheritor_type: None,
            inheriting: vec!["X".into()],
            attributes: vec![],
            constraints: vec![],
        })
        .unwrap();
        c.register_object_type(ObjectTypeDef {
            name: "Impl".into(),
            inheritor_in: vec!["AllOf_If".into()],
            attributes: vec![AttrDef::new("Local", Domain::Int)],
            ..Default::default()
        })
        .unwrap();
        (SharedStore::new(c.clone()).unwrap(), c)
    }

    fn call(store: &SharedStore, catalog: &Catalog, verb: &str, params: Json) -> HandlerResult {
        call_s(store, catalog, &TxnRegistry::new(), 0, verb, params)
    }

    /// Like [`call`], with an explicit registry + session id so tests can
    /// exercise transactional state across calls.
    fn call_s(
        store: &SharedStore,
        catalog: &Catalog,
        txns: &TxnRegistry,
        session: u64,
        verb: &str,
        params: Json,
    ) -> HandlerResult {
        handle_verb(
            store,
            catalog,
            &ServerContext::default(),
            txns,
            session,
            verb,
            &params,
            false,
        )
    }

    #[test]
    fn create_bind_read_write_roundtrip() {
        let (store, catalog) = fixture();
        let interface = call(
            &store,
            &catalog,
            "create",
            json!({"type": "If", "attrs": {"X": {"Int": 7}}}),
        )
        .unwrap()
        .as_u64()
        .unwrap();
        let imp = call(&store, &catalog, "create", json!({"type": "Impl"}))
            .unwrap()
            .as_u64()
            .unwrap();
        call(
            &store,
            &catalog,
            "bind",
            json!({"rel": "AllOf_If", "transmitter": interface, "inheritor": imp}),
        )
        .unwrap();
        let v = call(&store, &catalog, "attr", json!({"obj": imp, "name": "X"})).unwrap();
        assert_eq!(v.get("Int").and_then(Json::as_i64), Some(7));
        call(
            &store,
            &catalog,
            "set_attr",
            json!({"obj": interface, "name": "X", "value": {"Int": 41}}),
        )
        .unwrap();
        let v = call(&store, &catalog, "attr", json!({"obj": imp, "name": "X"})).unwrap();
        assert_eq!(v.get("Int").and_then(Json::as_i64), Some(41));
    }

    #[test]
    fn select_with_and_without_predicate() {
        let (store, catalog) = fixture();
        for k in 0..4 {
            call(
                &store,
                &catalog,
                "create",
                json!({"type": "Impl", "attrs": {"Local": {"Int": k}}}),
            )
            .unwrap();
        }
        let all = call(&store, &catalog, "select", json!({"type": "Impl"})).unwrap();
        assert_eq!(all.as_array().unwrap().len(), 4);
        let some = call(
            &store,
            &catalog,
            "select",
            json!({"type": "Impl", "where": "Local < 2"}),
        )
        .unwrap();
        assert_eq!(some.as_array().unwrap().len(), 2);
        let err = call(
            &store,
            &catalog,
            "select",
            json!({"type": "Impl", "where": "][ not an expr"}),
        )
        .unwrap_err();
        assert_eq!(err.0, ErrorKind::BadRequest);
    }

    #[test]
    fn explain_reports_chain_and_effective_reports_provenance() {
        let (store, catalog) = fixture();
        let out = call(
            &store,
            &catalog,
            "explain",
            json!({"type": "Impl", "attr": "X"}),
        )
        .unwrap();
        assert_eq!(out.get("owner_type").and_then(Json::as_str), Some("If"));
        let hops = out.get("hops").and_then(|h| h.as_array()).unwrap();
        assert_eq!(hops.len(), 1);
        assert_eq!(
            hops[0].get("via_rel").and_then(Json::as_str),
            Some("AllOf_If")
        );
        assert_eq!(hops[0].get("permeable").and_then(Json::as_bool), Some(true));

        let eff = call(&store, &catalog, "effective", json!({"type": "Impl"})).unwrap();
        let attrs = eff.get("attrs").and_then(|a| a.as_array()).unwrap();
        assert!(attrs.iter().any(|a| {
            a.get("name").and_then(Json::as_str) == Some("X")
                && a.get("source").and_then(|s| s.get("via_rel")).is_some()
        }));
    }

    #[test]
    fn errors_map_to_kinds() {
        let (store, catalog) = fixture();
        let e = call(&store, &catalog, "attr", json!({"obj": 999, "name": "X"})).unwrap_err();
        assert_eq!(e.0, ErrorKind::Core);
        let e = call(&store, &catalog, "attr", json!({"name": "X"})).unwrap_err();
        assert_eq!(e.0, ErrorKind::BadRequest);
        let e = call(&store, &catalog, "warp", json!({})).unwrap_err();
        assert_eq!(e.0, ErrorKind::BadRequest);
        // `boom` is hidden unless debug verbs are enabled.
        let e = call(&store, &catalog, "boom", json!({})).unwrap_err();
        assert_eq!(e.0, ErrorKind::BadRequest);
    }

    #[test]
    fn stats_and_metrics_are_scrapeable() {
        let (store, catalog) = fixture();
        let stats = call(&store, &catalog, "stats", json!({})).unwrap();
        assert!(stats.get("counters").is_some());
        let text = call(&store, &catalog, "metrics", json!({})).unwrap();
        let text = text.as_str().unwrap();
        assert!(text.contains("# TYPE"), "{text}");
    }

    fn slot_ok(slot: &Json) -> bool {
        slot.get("ok").and_then(Json::as_bool) == Some(true)
    }

    fn slot_error_kind(slot: &Json) -> Option<&str> {
        slot.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str)
    }

    #[test]
    fn batch_empty_is_an_empty_array_and_non_array_requests_is_rejected() {
        let (store, catalog) = fixture();
        let out = call(&store, &catalog, "batch", json!({"requests": []})).unwrap();
        assert_eq!(out.as_array().unwrap().len(), 0);

        let e = call(&store, &catalog, "batch", json!({"requests": 3})).unwrap_err();
        assert_eq!(e.0, ErrorKind::BadRequest);
        let e = call(&store, &catalog, "batch", json!({})).unwrap_err();
        assert_eq!(e.0, ErrorKind::BadRequest);
    }

    #[test]
    fn batch_failing_entry_fills_its_slot_and_later_entries_still_run() {
        let (store, catalog) = fixture();
        let out = call(
            &store,
            &catalog,
            "batch",
            json!({"requests": [
                {"verb": "create", "params": {"type": "If", "attrs": {"X": {"Int": 5}}}},
                {"verb": "attr", "params": {"obj": 424242, "name": "X"}},
                {"verb": "create", "params": {"type": "Impl"}},
            ]}),
        )
        .unwrap();
        let slots = out.as_array().unwrap();
        assert_eq!(slots.len(), 3);
        assert!(slot_ok(&slots[0]));
        assert_eq!(slot_error_kind(&slots[1]), Some("core"));
        assert!(slot_ok(&slots[2]), "entry after a failure must execute");

        // Both creates landed despite the failing middle entry.
        let interface = slots[0].get("result").and_then(Json::as_u64).unwrap();
        let imp = slots[2].get("result").and_then(Json::as_u64).unwrap();
        let out = call(
            &store,
            &catalog,
            "batch",
            json!({"requests": [
                {"verb": "bind",
                 "params": {"rel": "AllOf_If", "transmitter": interface, "inheritor": imp}},
                {"verb": "attr", "params": {"obj": imp, "name": "X"}},
            ]}),
        )
        .unwrap();
        let slots = out.as_array().unwrap();
        assert!(slot_ok(&slots[0]) && slot_ok(&slots[1]));
        let v = slots[1].get("result").unwrap();
        assert_eq!(v.get("Int").and_then(Json::as_i64), Some(5));
    }

    #[test]
    fn batch_rejects_nested_batches_and_missing_verbs_per_entry() {
        let (store, catalog) = fixture();
        let out = call(
            &store,
            &catalog,
            "batch",
            json!({"requests": [
                {"verb": "batch", "params": {"requests": []}},
                {"params": {"delay_ms": 0}},
                {"verb": "ping"},
            ]}),
        )
        .unwrap();
        let slots = out.as_array().unwrap();
        assert_eq!(slot_error_kind(&slots[0]), Some("bad_request"));
        assert_eq!(slot_error_kind(&slots[1]), Some("bad_request"));
        assert!(slot_ok(&slots[2]), "well-formed entry after malformed ones");
    }

    /// Creates If{X=7} bound to an Impl{Local=1}; returns their surrogates.
    fn seeded(store: &SharedStore, catalog: &Catalog) -> (u64, u64) {
        let interface = call(
            store,
            catalog,
            "create",
            json!({"type": "If", "attrs": {"X": {"Int": 7}}}),
        )
        .unwrap()
        .as_u64()
        .unwrap();
        let imp = call(
            store,
            catalog,
            "create",
            json!({"type": "Impl", "attrs": {"Local": {"Int": 1}}}),
        )
        .unwrap()
        .as_u64()
        .unwrap();
        call(
            store,
            catalog,
            "bind",
            json!({"rel": "AllOf_If", "transmitter": interface, "inheritor": imp}),
        )
        .unwrap();
        (interface, imp)
    }

    #[test]
    fn txn_verbs_roundtrip_with_isolation_and_conflict_mapping() {
        let (store, catalog) = fixture();
        let (interface, imp) = seeded(&store, &catalog);
        let txns = TxnRegistry::new();

        let out = call_s(&store, &catalog, &txns, 1, "begin", json!({})).unwrap();
        assert!(out.get("txn").and_then(Json::as_u64).is_some());
        call_s(
            &store,
            &catalog,
            &txns,
            1,
            "set_attr",
            json!({"obj": interface, "name": "X", "value": {"Int": 50}}),
        )
        .unwrap();
        // Session 2 (no txn) still reads the published value...
        let v = call_s(
            &store,
            &catalog,
            &txns,
            2,
            "attr",
            json!({"obj": imp, "name": "X"}),
        )
        .unwrap();
        assert_eq!(v.get("Int").and_then(Json::as_i64), Some(7));
        // ...while session 1 reads its own write through inheritance.
        let v = call_s(
            &store,
            &catalog,
            &txns,
            1,
            "attr",
            json!({"obj": imp, "name": "X"}),
        )
        .unwrap();
        assert_eq!(v.get("Int").and_then(Json::as_i64), Some(50));

        let out = call_s(&store, &catalog, &txns, 1, "commit", json!({})).unwrap();
        assert_eq!(out.get("writes").and_then(Json::as_u64), Some(1));
        let v = call(&store, &catalog, "attr", json!({"obj": imp, "name": "X"})).unwrap();
        assert_eq!(v.get("Int").and_then(Json::as_i64), Some(50));

        // First-committer-wins surfaces as the `conflict` wire kind.
        call_s(&store, &catalog, &txns, 1, "begin", json!({})).unwrap();
        call_s(
            &store,
            &catalog,
            &txns,
            1,
            "set_attr",
            json!({"obj": interface, "name": "X", "value": {"Int": 60}}),
        )
        .unwrap();
        call(
            &store,
            &catalog,
            "set_attr",
            json!({"obj": interface, "name": "X", "value": {"Int": 61}}),
        )
        .unwrap();
        let e = call_s(&store, &catalog, &txns, 1, "commit", json!({})).unwrap_err();
        assert_eq!(e.0, ErrorKind::Conflict);
    }

    #[test]
    fn txn_bookkeeping_and_scope_rules() {
        let (store, catalog) = fixture();
        let (interface, _) = seeded(&store, &catalog);
        let txns = TxnRegistry::new();

        // commit/abort without a txn, double begin.
        let e = call_s(&store, &catalog, &txns, 1, "commit", json!({})).unwrap_err();
        assert_eq!(e.0, ErrorKind::BadRequest);
        let e = call_s(&store, &catalog, &txns, 1, "abort", json!({})).unwrap_err();
        assert_eq!(e.0, ErrorKind::BadRequest);
        call_s(&store, &catalog, &txns, 1, "begin", json!({})).unwrap();
        let e = call_s(&store, &catalog, &txns, 1, "begin", json!({})).unwrap_err();
        assert_eq!(e.0, ErrorKind::BadRequest);

        // Structural writes and batch are refused inside a transaction.
        for (verb, params) in [
            ("create", json!({"type": "Impl"})),
            ("batch", json!({"requests": []})),
        ] {
            let e = call_s(&store, &catalog, &txns, 1, verb, params).unwrap_err();
            assert_eq!(e.0, ErrorKind::BadRequest, "{verb} must be refused in-txn");
        }
        // Storeless verbs still work mid-transaction.
        call_s(&store, &catalog, &txns, 1, "ping", json!({})).unwrap();

        // Abort discards the buffered write and reports released locks.
        call_s(
            &store,
            &catalog,
            &txns,
            1,
            "set_attr",
            json!({"obj": interface, "name": "X", "value": {"Int": 99}}),
        )
        .unwrap();
        let out = call_s(&store, &catalog, &txns, 1, "abort", json!({})).unwrap();
        assert!(out.get("released").and_then(Json::as_u64).unwrap() >= 1);
        let v = call(
            &store,
            &catalog,
            "attr",
            json!({"obj": interface, "name": "X"}),
        )
        .unwrap();
        assert_eq!(v.get("Int").and_then(Json::as_i64), Some(7));

        // Txn verbs are per-session state: they never ride inside a batch.
        let out = call(
            &store,
            &catalog,
            "batch",
            json!({"requests": [{"verb": "begin"}, {"verb": "ping"}]}),
        )
        .unwrap();
        let slots = out.as_array().unwrap();
        assert_eq!(slot_error_kind(&slots[0]), Some("bad_request"));
        assert!(slot_ok(&slots[1]));
    }

    #[test]
    fn read_only_batch_runs_under_the_shared_guard() {
        // A batch of pure reads takes the shared guard, so it completes
        // even while another thread is sitting inside a read section. (A
        // write-guard batch would block here and the test would hang.)
        let (store, catalog) = fixture();
        call(&store, &catalog, "create", json!({"type": "Impl"})).unwrap();

        let (held_tx, held_rx) = std::sync::mpsc::channel();
        let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
        let reader_store = store.clone();
        std::thread::scope(|scope| {
            scope.spawn(move || {
                reader_store.read(|_guard| {
                    held_tx.send(()).unwrap();
                    // Hold the shared guard until the batch has finished.
                    done_rx
                        .recv_timeout(std::time::Duration::from_secs(10))
                        .unwrap();
                });
            });
            held_rx.recv().unwrap();
            let out = call(
                &store,
                &catalog,
                "batch",
                json!({"requests": [
                    {"verb": "select", "params": {"type": "Impl"}},
                    {"verb": "ping", "params": {}},
                ]}),
            )
            .unwrap();
            let slots = out.as_array().unwrap();
            assert!(slot_ok(&slots[0]) && slot_ok(&slots[1]));
            assert_eq!(slots[0].get("result").unwrap().as_array().unwrap().len(), 1);
            done_tx.send(()).unwrap();
        });
    }
}
