//! Verb dispatch: one parsed request against the shared store.
//!
//! Handlers are pure request → `Result<Json, (ErrorKind, message)>`
//! functions over [`SharedStore`]; the threading, framing, and response
//! writing live in [`crate::server`]. Read verbs take the store's shared
//! lock (many in parallel across workers), write verbs the exclusive one —
//! so a transmitter update by one session is visible to every other
//! session's next read, which is the paper's instant-visibility semantics
//! carried over the wire.

use ccdb_core::expr::Expr;
use ccdb_core::schema::{Catalog, ItemSource};
use ccdb_core::shared::SharedStore;
use ccdb_core::{CoreError, Surrogate, Value};
use serde_json::Value as Json;

use crate::proto::ErrorKind;

/// Handler failure: wire error kind plus client-safe message.
pub(crate) type HandlerError = (ErrorKind, String);
pub(crate) type HandlerResult = Result<Json, HandlerError>;

fn bad(msg: impl Into<String>) -> HandlerError {
    (ErrorKind::BadRequest, msg.into())
}

fn core_err(e: CoreError) -> HandlerError {
    (ErrorKind::Core, e.to_string())
}

fn param<'a>(params: &'a Json, key: &str) -> Result<&'a Json, HandlerError> {
    params
        .get(key)
        .ok_or_else(|| bad(format!("missing parameter `{key}`")))
}

fn surrogate_param(params: &Json, key: &str) -> Result<Surrogate, HandlerError> {
    param(params, key)?
        .as_u64()
        .map(Surrogate)
        .ok_or_else(|| bad(format!("parameter `{key}` must be an unsigned surrogate")))
}

fn str_param<'a>(params: &'a Json, key: &str) -> Result<&'a str, HandlerError> {
    param(params, key)?
        .as_str()
        .ok_or_else(|| bad(format!("parameter `{key}` must be a string")))
}

fn value_param(params: &Json, key: &str) -> Result<Value, HandlerError> {
    let raw = param(params, key)?;
    serde_json::from_value::<Value>(raw).map_err(|e| {
        bad(format!(
            "parameter `{key}` is not a valid value encoding: {e}"
        ))
    })
}

/// Decodes an optional `{name: <value encoding>}` object into attr pairs.
fn attrs_param(params: &Json, key: &str) -> Result<Vec<(String, Value)>, HandlerError> {
    let Some(raw) = params.get(key) else {
        return Ok(vec![]);
    };
    if raw.is_null() {
        return Ok(vec![]);
    }
    let pairs = raw
        .as_object_slice()
        .ok_or_else(|| bad(format!("parameter `{key}` must be an object of attributes")))?;
    pairs
        .iter()
        .map(|(name, v)| {
            serde_json::from_value::<Value>(v)
                .map(|val| (name.clone(), val))
                .map_err(|e| {
                    bad(format!(
                        "attribute `{name}` has invalid value encoding: {e}"
                    ))
                })
        })
        .collect()
}

fn surrogates_json(items: &[Surrogate]) -> Json {
    Json::Array(items.iter().map(|s| Json::UInt(s.0)).collect())
}

fn item_source_json(source: &ItemSource) -> Json {
    match source {
        ItemSource::Local => Json::String("local".into()),
        ItemSource::Inherited { via_rel, from_type } => Json::Object(vec![
            ("via_rel".into(), Json::String(via_rel.clone())),
            ("from_type".into(), Json::String(from_type.clone())),
        ]),
    }
}

/// `effective`: a type's effective schema with provenance, as JSON.
fn handle_effective(catalog: &Catalog, params: &Json) -> HandlerResult {
    let ty = str_param(params, "type")?;
    let eff = catalog.effective_schema(ty).map_err(core_err)?;
    let attrs = eff
        .attrs
        .iter()
        .map(|(name, domain, source)| {
            Json::Object(vec![
                ("name".into(), Json::String(name.clone())),
                ("domain".into(), Json::String(domain.describe())),
                ("source".into(), item_source_json(source)),
            ])
        })
        .collect();
    let subclasses = eff
        .subclasses
        .iter()
        .map(|(name, elem, source)| {
            Json::Object(vec![
                ("name".into(), Json::String(name.clone())),
                ("element_type".into(), Json::String(elem.clone())),
                ("source".into(), item_source_json(source)),
            ])
        })
        .collect();
    Ok(Json::Object(vec![
        ("type".into(), Json::String(ty.into())),
        ("attrs".into(), Json::Array(attrs)),
        ("subclasses".into(), Json::Array(subclasses)),
    ]))
}

/// `explain`: synthesize the inheritance chain an attribute resolves
/// through, from effective-schema provenance (type level; no instances).
fn handle_explain(catalog: &Catalog, params: &Json) -> HandlerResult {
    let ty = str_param(params, "type")?;
    let attr = str_param(params, "attr")?;
    let mut hops = Vec::new();
    let mut cur_ty = ty.to_string();
    let domain = loop {
        let eff = catalog.effective_schema(&cur_ty).map_err(core_err)?;
        match eff.attr(attr) {
            None => {
                return Err((
                    ErrorKind::Core,
                    format!("type `{cur_ty}` has no attribute `{attr}`"),
                ))
            }
            Some((domain, ItemSource::Local)) => break domain.describe(),
            Some((_, ItemSource::Inherited { via_rel, from_type })) => {
                hops.push(Json::Object(vec![
                    ("inheritor_type".into(), Json::String(cur_ty.clone())),
                    ("via_rel".into(), Json::String(via_rel.clone())),
                    ("transmitter_type".into(), Json::String(from_type.clone())),
                    (
                        "permeable".into(),
                        Json::Bool(catalog.is_permeable(via_rel, attr)),
                    ),
                ]));
                cur_ty = from_type.clone();
            }
        }
    };
    Ok(Json::Object(vec![
        ("type".into(), Json::String(ty.into())),
        ("attr".into(), Json::String(attr.into())),
        ("owner_type".into(), Json::String(cur_ty)),
        ("domain".into(), Json::String(domain)),
        ("hops".into(), Json::Array(hops)),
    ]))
}

/// Dispatches one verb. `debug_verbs` additionally enables the
/// test-only `boom` verb (panics inside the handler, exercising the
/// worker's panic isolation).
pub(crate) fn handle_verb(
    store: &SharedStore,
    catalog: &Catalog,
    verb: &str,
    params: &Json,
    debug_verbs: bool,
) -> HandlerResult {
    match verb {
        "ping" => {
            // Optional artificial service time (capped); used by the drain
            // and overload tests and the latency harness.
            if let Some(ms) = params.get("delay_ms").and_then(Json::as_u64) {
                std::thread::sleep(std::time::Duration::from_millis(ms.min(1_000)));
            }
            Ok(Json::String("pong".into()))
        }
        "create" => {
            let ty = str_param(params, "type")?;
            let attrs = attrs_param(params, "attrs")?;
            let owned: Vec<(&str, Value)> =
                attrs.iter().map(|(n, v)| (n.as_str(), v.clone())).collect();
            let s = store
                .write(|st| st.create_object(ty, owned))
                .map_err(core_err)?;
            Ok(Json::UInt(s.0))
        }
        "attr" => {
            let obj = surrogate_param(params, "obj")?;
            let name = str_param(params, "name")?;
            let value = store.attr(obj, name).map_err(core_err)?;
            Ok(serde_json::to_value(&value))
        }
        "set_attr" => {
            let obj = surrogate_param(params, "obj")?;
            let name = str_param(params, "name")?;
            let value = value_param(params, "value")?;
            store.set_attr(obj, name, value).map_err(core_err)?;
            Ok(Json::Null)
        }
        "bind" => {
            let rel = str_param(params, "rel")?;
            let transmitter = surrogate_param(params, "transmitter")?;
            let inheritor = surrogate_param(params, "inheritor")?;
            let attrs = attrs_param(params, "attrs")?;
            let borrowed: Vec<(&str, Value)> =
                attrs.iter().map(|(n, v)| (n.as_str(), v.clone())).collect();
            let rel_obj = store
                .bind(rel, transmitter, inheritor, borrowed)
                .map_err(core_err)?;
            Ok(Json::UInt(rel_obj.0))
        }
        "unbind" => {
            let rel_obj = surrogate_param(params, "rel_obj")?;
            store.unbind(rel_obj).map_err(core_err)?;
            Ok(Json::Null)
        }
        "select" => {
            let ty = str_param(params, "type")?;
            let predicate = match params.get("where").and_then(Json::as_str) {
                Some(src) => ccdb_lang::compile_expr(src, catalog)
                    .map_err(|e| bad(format!("invalid `where` expression: {e}")))?,
                // No predicate: match everything.
                None => Expr::eq(Expr::int(0), Expr::int(0)),
            };
            let hits = store
                .read(|st| st.select(ty, &predicate))
                .map_err(core_err)?;
            Ok(surrogates_json(&hits))
        }
        "check_all" => {
            let violations = store.read(|st| st.check_all()).map_err(core_err)?;
            Ok(Json::Array(
                violations
                    .iter()
                    .map(|v| {
                        Json::Object(vec![
                            ("object".into(), Json::UInt(v.object.0)),
                            ("constraint".into(), Json::String(v.constraint.clone())),
                            (
                                "detail".into(),
                                v.detail
                                    .as_ref()
                                    .map(|d| Json::String(d.clone()))
                                    .unwrap_or(Json::Null),
                            ),
                        ])
                    })
                    .collect(),
            ))
        }
        "effective" => handle_effective(catalog, params),
        "explain" => handle_explain(catalog, params),
        "stats" => {
            let json = ccdb_obs::global().render_json();
            serde_json::from_str(&json)
                .map_err(|e| (ErrorKind::Internal, format!("stats render: {e}")))
        }
        "metrics" => {
            // The plaintext Prometheus scrape, `GET /metrics`-style, so the
            // PR 1 exporter is reachable over the network.
            Ok(Json::String(ccdb_obs::global().render_prometheus()))
        }
        "boom" if debug_verbs => panic!("boom: requested handler panic"),
        other => Err(bad(format!("unknown verb `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdb_core::domain::Domain;
    use ccdb_core::schema::{AttrDef, InherRelTypeDef, ObjectTypeDef};
    use serde_json::json;

    fn fixture() -> (SharedStore, Catalog) {
        let mut c = Catalog::new();
        c.register_object_type(ObjectTypeDef {
            name: "If".into(),
            attributes: vec![AttrDef::new("X", Domain::Int)],
            ..Default::default()
        })
        .unwrap();
        c.register_inher_rel_type(InherRelTypeDef {
            name: "AllOf_If".into(),
            transmitter_type: "If".into(),
            inheritor_type: None,
            inheriting: vec!["X".into()],
            attributes: vec![],
            constraints: vec![],
        })
        .unwrap();
        c.register_object_type(ObjectTypeDef {
            name: "Impl".into(),
            inheritor_in: vec!["AllOf_If".into()],
            attributes: vec![AttrDef::new("Local", Domain::Int)],
            ..Default::default()
        })
        .unwrap();
        (SharedStore::new(c.clone()).unwrap(), c)
    }

    fn call(store: &SharedStore, catalog: &Catalog, verb: &str, params: Json) -> HandlerResult {
        handle_verb(store, catalog, verb, &params, false)
    }

    #[test]
    fn create_bind_read_write_roundtrip() {
        let (store, catalog) = fixture();
        let interface = call(
            &store,
            &catalog,
            "create",
            json!({"type": "If", "attrs": {"X": {"Int": 7}}}),
        )
        .unwrap()
        .as_u64()
        .unwrap();
        let imp = call(&store, &catalog, "create", json!({"type": "Impl"}))
            .unwrap()
            .as_u64()
            .unwrap();
        call(
            &store,
            &catalog,
            "bind",
            json!({"rel": "AllOf_If", "transmitter": interface, "inheritor": imp}),
        )
        .unwrap();
        let v = call(&store, &catalog, "attr", json!({"obj": imp, "name": "X"})).unwrap();
        assert_eq!(v.get("Int").and_then(Json::as_i64), Some(7));
        call(
            &store,
            &catalog,
            "set_attr",
            json!({"obj": interface, "name": "X", "value": {"Int": 41}}),
        )
        .unwrap();
        let v = call(&store, &catalog, "attr", json!({"obj": imp, "name": "X"})).unwrap();
        assert_eq!(v.get("Int").and_then(Json::as_i64), Some(41));
    }

    #[test]
    fn select_with_and_without_predicate() {
        let (store, catalog) = fixture();
        for k in 0..4 {
            call(
                &store,
                &catalog,
                "create",
                json!({"type": "Impl", "attrs": {"Local": {"Int": k}}}),
            )
            .unwrap();
        }
        let all = call(&store, &catalog, "select", json!({"type": "Impl"})).unwrap();
        assert_eq!(all.as_array().unwrap().len(), 4);
        let some = call(
            &store,
            &catalog,
            "select",
            json!({"type": "Impl", "where": "Local < 2"}),
        )
        .unwrap();
        assert_eq!(some.as_array().unwrap().len(), 2);
        let err = call(
            &store,
            &catalog,
            "select",
            json!({"type": "Impl", "where": "][ not an expr"}),
        )
        .unwrap_err();
        assert_eq!(err.0, ErrorKind::BadRequest);
    }

    #[test]
    fn explain_reports_chain_and_effective_reports_provenance() {
        let (store, catalog) = fixture();
        let out = call(
            &store,
            &catalog,
            "explain",
            json!({"type": "Impl", "attr": "X"}),
        )
        .unwrap();
        assert_eq!(out.get("owner_type").and_then(Json::as_str), Some("If"));
        let hops = out.get("hops").and_then(|h| h.as_array()).unwrap();
        assert_eq!(hops.len(), 1);
        assert_eq!(
            hops[0].get("via_rel").and_then(Json::as_str),
            Some("AllOf_If")
        );
        assert_eq!(hops[0].get("permeable").and_then(Json::as_bool), Some(true));

        let eff = call(&store, &catalog, "effective", json!({"type": "Impl"})).unwrap();
        let attrs = eff.get("attrs").and_then(|a| a.as_array()).unwrap();
        assert!(attrs.iter().any(|a| {
            a.get("name").and_then(Json::as_str) == Some("X")
                && a.get("source").and_then(|s| s.get("via_rel")).is_some()
        }));
    }

    #[test]
    fn errors_map_to_kinds() {
        let (store, catalog) = fixture();
        let e = call(&store, &catalog, "attr", json!({"obj": 999, "name": "X"})).unwrap_err();
        assert_eq!(e.0, ErrorKind::Core);
        let e = call(&store, &catalog, "attr", json!({"name": "X"})).unwrap_err();
        assert_eq!(e.0, ErrorKind::BadRequest);
        let e = call(&store, &catalog, "warp", json!({})).unwrap_err();
        assert_eq!(e.0, ErrorKind::BadRequest);
        // `boom` is hidden unless debug verbs are enabled.
        let e = call(&store, &catalog, "boom", json!({})).unwrap_err();
        assert_eq!(e.0, ErrorKind::BadRequest);
    }

    #[test]
    fn stats_and_metrics_are_scrapeable() {
        let (store, catalog) = fixture();
        let stats = call(&store, &catalog, "stats", json!({})).unwrap();
        assert!(stats.get("counters").is_some());
        let text = call(&store, &catalog, "metrics", json!({})).unwrap();
        let text = text.as_str().unwrap();
        assert!(text.contains("# TYPE"), "{text}");
    }
}
