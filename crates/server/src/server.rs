//! The TCP server: an event loop (poll(2) or epoll) + worker pool, with
//! an inline fast path for read-only snapshot verbs.
//!
//! ```text
//!            accept / readiness              sharded queues (1/worker)
//!  clients ──────────────▶ event loop (1 thread) ─────▶ workers (N)
//!                │  poll(2)/epoll over listener + conns  │ steal-on-empty
//!                │  framing, negotiation, admission      ▼
//!                │  + inline reads on a pinned   SharedStore (MVCC:
//!                ▼    MVCC snapshot               readers pin snapshots,
//!          per-conn session state                 writers publish)
//!          + outbound buffer (workers and
//!            the loop append frames; flushed
//!            nonblockingly, drained on POLLOUT)
//! ```
//!
//! Connections used to get a pinned reader thread each; thousands of
//! mostly-idle CAD sessions (the paper's designers parked at
//! workstations) made that the dominant cost — a thread's stack and a
//! context switch per frame for connections that talk once a minute. The
//! event loop registers every connection in one `poll(2)` interest set
//! instead: an idle session costs one fd and ~a hundred bytes of buffer,
//! and the thread count is `1 + workers` no matter how many clients are
//! parked.
//!
//! Production-shaping behaviors, in one place:
//!
//! - **Protocol negotiation**: a v2 client leads with the raw
//!   [`HELLO_V2`] magic and gets it echoed back; anything else is a v1
//!   length prefix and the connection stays JSON. A server pinned to v1
//!   (`max_proto = 1`) refuses the hello with a clean v1 `protocol`
//!   error.
//! - **Admission control**: parsed requests go into a [`ShardedQueue`]
//!   (one bounded FIFO per worker, global cap, work stealing); at
//!   capacity the request is answered `Overloaded` immediately — offered
//!   load beyond capacity costs one response, never unbounded memory.
//! - **Inline fast path**: read-only snapshot verbs (`ping`, `attr`,
//!   `select`, `effective`, `check_all`, `stats`, `metrics`,
//!   `telemetry`, `flight`) execute directly on the event-loop thread
//!   against a pinned MVCC snapshot when the queue is shallow — no
//!   enqueue, no worker wakeup. Write verbs, txn verbs, batches, and
//!   in-transaction sessions always go to workers, and a per-iteration
//!   time budget falls back to the queue under load so the loop cannot
//!   starve its readiness duties.
//! - **Idle timeouts**: the event loop sweeps connection deadlines with
//!   its poll timeout; a connection that sends nothing for the window is
//!   closed (counted in `ccdb_server_idle_closed_total`). `WouldBlock`
//!   on these nonblocking sockets means "no data yet", never "idle" —
//!   see [`FrameError::is_would_block`].
//! - **Stalled writers**: no thread ever blocks writing to a client.
//!   Responses are appended to a per-session [`OutBuf`] and flushed as
//!   far as the kernel allows; residual bytes drain on `POLLOUT`
//!   readiness. A peer that stops reading its socket is killed once its
//!   backlog outlives the stall window or exceeds the backlog cap
//!   (counted in `ccdb_server_write_stalled_closed_total`) — it can never
//!   stall the event loop, a worker, or any other connection.
//! - **Malformed-frame hardening**: oversized length prefixes are refused
//!   before any allocation, truncated frames and bad JSON/bval/versions
//!   are counted and answered (or the connection dropped) without
//!   panicking.
//! - **Panic isolation**: a handler panic is caught in the worker,
//!   answered as an `internal` error, and the worker keeps serving.
//! - **Graceful shutdown**: draining stops the event loop (no new reads),
//!   lets queued requests finish and their responses flush through the
//!   sessions' write halves, then unblocks and joins every thread.
//!
//! [`HELLO_V2`]: crate::proto::HELLO_V2
//! [`FrameError::is_would_block`]: crate::proto::FrameError::is_would_block

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use ccdb_core::lockprobe;
use ccdb_core::schema::Catalog;
use ccdb_core::shared::SharedStore;
use ccdb_obs::flight::FlightRecord;
use ccdb_obs::timeseries::{self, SeriesDelta, TelemetryFrame};
use ccdb_obs::TraceId;
use ccdb_txn::TxnRegistry;
use serde_json::Value as Json;

use crate::handler::{handle_verb, ServerContext};
use crate::metrics::server_metrics;
use crate::proto::{
    encode_response_v2, err_response, ok_response, ErrorKind, Request, HELLO_V2, MAX_FRAME_BYTES,
    PROTOCOL_V2,
};
use crate::queue::{PushError, QueueObservers, ShardedQueue};

/// Server tuning knobs. `Default` is sized for tests and small
/// deployments; the CLI exposes the production-relevant ones as flags.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (`:0` for an ephemeral port).
    pub addr: String,
    /// Worker threads executing requests against the store.
    pub workers: usize,
    /// Bounded request-queue capacity (admission control).
    pub queue_depth: usize,
    /// Per-frame payload cap in bytes.
    pub max_frame_bytes: usize,
    /// Close connections idle longer than this.
    pub idle_timeout: Duration,
    /// Kill connections whose peer has not drained buffered response
    /// bytes for this long (a client that stopped reading its socket).
    pub write_stall_timeout: Duration,
    /// Enable test-only verbs (`boom`); never set in production.
    pub debug_verbs: bool,
    /// Highest wire protocol the server will negotiate: `2` (default)
    /// accepts both dialects, `1` pins the server to v1 JSON and refuses
    /// the v2 hello with a `protocol` error.
    pub max_proto: u8,
    /// Telemetry sampler interval in ms (`0` disables the sampler and the
    /// `watch` verb). The sampler is process-global; the first server to
    /// start it fixes the cadence for the process lifetime.
    pub sample_interval_ms: u64,
    /// Telemetry ring retention, in samples per series.
    pub sample_retention: usize,
    /// How long a wire transaction waits for a contended §6 item lock
    /// before its acquire fails with `conflict` (and the transaction is
    /// aborted).
    pub txn_lock_timeout: Duration,
    /// Kernel send-buffer size (`SO_SNDBUF`) requested for accepted
    /// sockets; `None` leaves the OS auto-tuned default. Auto-tuned
    /// loopback buffers run to megabytes, so a peer that stops reading
    /// can absorb minutes of output before the write-stall machinery
    /// even sees queued bytes — tests (and memory-tight deployments)
    /// clamp this to make backpressure visible quickly.
    pub send_buffer_bytes: Option<usize>,
    /// Event-loop readiness backend. `Auto` (the default) honors the
    /// `CCDB_POLL_BACKEND` env var (`poll`/`epoll`) and otherwise picks
    /// epoll where the platform has it, `poll(2)` elsewhere. Explicitly
    /// requesting `Epoll` on a platform without it fails `Server::start`.
    pub poll_backend: PollBackend,
    /// Whether the event loop may execute read-only snapshot verbs
    /// inline (see module docs). On by default; the dispatch experiment
    /// turns it off to measure the queue hop it removes.
    pub inline_reads: bool,
}

/// Which readiness primitive the event loop multiplexes connections with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PollBackend {
    /// `CCDB_POLL_BACKEND` env override if set, else epoll when
    /// available, else `poll(2)`.
    #[default]
    Auto,
    /// Portable `poll(2)`: the interest set is rebuilt and scanned every
    /// iteration — O(registered fds) per wakeup.
    Poll,
    /// Linux `epoll(7)`: the kernel holds the interest set and reports
    /// only ready fds — O(ready fds) per wakeup.
    Epoll,
}

impl PollBackend {
    /// Parses a CLI/env spelling (`auto`/`poll`/`epoll`).
    pub fn parse(s: &str) -> Option<PollBackend> {
        match s {
            "auto" => Some(PollBackend::Auto),
            "poll" => Some(PollBackend::Poll),
            "epoll" => Some(PollBackend::Epoll),
            _ => None,
        }
    }
}

/// The backend actually in use after auto-detection.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Backend {
    Poll,
    Epoll,
}

impl Backend {
    fn name(self) -> &'static str {
        match self {
            Backend::Poll => "poll",
            Backend::Epoll => "epoll",
        }
    }
}

/// Resolves the configured backend to a concrete one, or refuses an
/// explicit `Epoll` request the platform cannot honor.
fn resolve_backend(requested: PollBackend) -> io::Result<Backend> {
    let requested = match requested {
        PollBackend::Auto => match std::env::var("CCDB_POLL_BACKEND").ok().as_deref() {
            Some(s) => PollBackend::parse(s).unwrap_or(PollBackend::Auto),
            None => PollBackend::Auto,
        },
        explicit => explicit,
    };
    match requested {
        PollBackend::Poll => Ok(Backend::Poll),
        PollBackend::Epoll if polling::epoll_supported() => Ok(Backend::Epoll),
        PollBackend::Epoll => Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "epoll backend requested but not available on this platform",
        )),
        PollBackend::Auto => Ok(if polling::epoll_supported() {
            Backend::Epoll
        } else {
            Backend::Poll
        }),
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_depth: 64,
            max_frame_bytes: MAX_FRAME_BYTES,
            idle_timeout: Duration::from_secs(30),
            write_stall_timeout: WRITE_STALL_TIMEOUT,
            debug_verbs: false,
            max_proto: PROTOCOL_V2,
            sample_interval_ms: timeseries::DEFAULT_INTERVAL_MS,
            sample_retention: timeseries::DEFAULT_RETENTION,
            txn_lock_timeout: Duration::from_secs(5),
            send_buffer_bytes: None,
            poll_backend: PollBackend::Auto,
            inline_reads: true,
        }
    }
}

/// Per-connection session state (the paper's "designer at a workstation").
struct Session {
    id: u64,
    peer: String,
    /// Negotiated wire protocol (1 until a v2 hello upgrades it).
    proto: AtomicU8,
    /// Outbound write half. Workers and the event loop append whole
    /// frames under the lock and flush them without ever blocking; see
    /// [`OutBuf`] for the stall/desync story.
    out: Mutex<OutBuf>,
    /// Lock-free mirror of "`out.pending` is non-empty": the event loop
    /// reads it each iteration to decide `POLLOUT` interest without
    /// touching every connection's mutex.
    has_pending: AtomicBool,
    /// Write end of the event loop's wake channel; a byte is nudged in
    /// when a flush first leaves residual bytes so the loop registers
    /// `POLLOUT` now instead of at its next poll timeout.
    wake: Arc<TcpStream>,
    /// Cap on buffered-but-unsent response bytes; a backlog beyond it
    /// means the peer stopped draining and the connection is killed.
    out_cap: usize,
    requests: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    started: Instant,
}

/// The outbound half of a connection.
///
/// Every write — worker responses and the event loop's inline errors and
/// acks alike — appends whole frames here and then flushes as far as the
/// kernel will take without blocking. Residual bytes stay queued (a frame
/// is never abandoned mid-write, so the length-prefixed stream cannot
/// desync) and are pushed out by the event loop on `POLLOUT` readiness.
/// Nothing ever parks on this socket: a peer that stops draining is
/// caught by the stall deadline or the backlog cap and the socket is shut
/// down, which the event loop observes as readiness and reaps.
struct OutBuf {
    stream: TcpStream,
    /// Bytes accepted but not yet written to the kernel.
    pending: Vec<u8>,
    /// When `pending` last became non-empty — origin of the stall
    /// deadline. `None` whenever the buffer is drained.
    stalled_since: Option<Instant>,
    /// A write failed or the stall budget ran out: the socket has been
    /// shut down and every later send is dropped.
    dead: bool,
}

impl OutBuf {
    /// Writes as much of `pending` as the kernel will take right now.
    /// Never blocks; `WouldBlock` leaves the rest queued.
    fn flush(&mut self) {
        while !self.pending.is_empty() && !self.dead {
            match self.stream.write(&self.pending) {
                Ok(0) => return self.kill(),
                Ok(n) => {
                    self.pending.drain(..n);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(_) => return self.kill(),
            }
        }
        if self.pending.is_empty() && !self.dead {
            self.stalled_since = None;
            if self.pending.capacity() > BUF_RETAIN_CAP {
                self.pending = Vec::new();
            }
            let _ = self.stream.flush();
        }
    }

    /// Declares the write half unusable and forces the socket closed, so
    /// the event loop reaps the connection via readiness (EOF/`POLLERR`)
    /// instead of anyone ever writing onto a desynced stream.
    fn kill(&mut self) {
        self.dead = true;
        self.pending = Vec::new();
        self.stalled_since = None;
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}

impl Session {
    fn proto(&self) -> u8 {
        self.proto.load(Ordering::Relaxed)
    }

    fn info_json(&self) -> Json {
        Json::Object(vec![
            ("session".into(), Json::UInt(self.id)),
            ("peer".into(), Json::String(self.peer.clone())),
            ("proto".into(), Json::UInt(self.proto() as u64)),
            (
                "requests".into(),
                Json::UInt(self.requests.load(Ordering::Relaxed)),
            ),
            (
                "bytes_in".into(),
                Json::UInt(self.bytes_in.load(Ordering::Relaxed)),
            ),
            (
                "bytes_out".into(),
                Json::UInt(self.bytes_out.load(Ordering::Relaxed)),
            ),
            (
                "uptime_ms".into(),
                Json::UInt(self.started.elapsed().as_millis() as u64),
            ),
        ])
    }

    /// Serializes a response envelope in this session's negotiated
    /// dialect: v1 compact JSON or a v2 binary frame payload.
    fn encode(&self, response: &Json) -> Vec<u8> {
        if self.proto() == PROTOCOL_V2 {
            encode_response_v2(response)
        } else {
            response.to_json_string().into_bytes()
        }
    }

    /// Writes one response frame (serialized, byte-counted). Write errors
    /// are swallowed: the peer may have gone away, which is its problem.
    fn send(&self, response: &Json) {
        self.send_bytes(&self.encode(response));
    }

    /// Writes one already-serialized response frame. Split from [`send`]
    /// so the worker can time serialization and the socket write as
    /// separate phases.
    fn send_bytes(&self, payload: &[u8]) {
        let mut frame = Vec::with_capacity(4 + payload.len());
        if crate::proto::append_frame(&mut frame, payload).is_err() {
            return;
        }
        if self.enqueue_raw(&frame) {
            self.bytes_out
                .fetch_add(payload.len() as u64, Ordering::Relaxed);
            server_metrics().bytes_out.add(payload.len() as u64);
        }
    }

    /// Queues `bytes` on the write half and flushes what the kernel will
    /// take, never blocking. Returns `false` when the write half is (or
    /// just became) dead — the bytes were dropped.
    fn enqueue_raw(&self, bytes: &[u8]) -> bool {
        let mut o = self.out.lock().unwrap_or_else(|p| p.into_inner());
        if o.dead {
            return false;
        }
        if o.pending.len() > self.out_cap {
            // The peer stopped draining and the backlog hit the cap:
            // buffering more is unbounded memory, not kindness. This is
            // the same failure the timed stall sweep hunts — count it
            // there (the sweep can't: `kill` clears `pending`, so by the
            // time it looks this connection is indistinguishable from an
            // idle one).
            o.kill();
            self.has_pending.store(false, Ordering::Release);
            server_metrics().write_stalled_closed.inc();
            return false;
        }
        o.pending.extend_from_slice(bytes);
        o.flush();
        self.note_flush_state(&mut o)
    }

    /// Flushes any buffered output (event loop, on `POLLOUT` readiness or
    /// a wake). Returns `false` when the write half is dead.
    fn flush_pending(&self) -> bool {
        let mut o = self.out.lock().unwrap_or_else(|p| p.into_inner());
        o.flush();
        self.note_flush_state(&mut o)
    }

    /// Post-flush bookkeeping shared by every flush site: keeps the
    /// lock-free `has_pending` mirror in sync (all updates happen under
    /// the `out` lock), arms the stall deadline, and nudges the event
    /// loop's wake channel on the empty→non-empty transition.
    fn note_flush_state(&self, o: &mut OutBuf) -> bool {
        if o.dead {
            self.has_pending.store(false, Ordering::Release);
            return false;
        }
        if o.pending.is_empty() {
            self.has_pending.store(false, Ordering::Release);
        } else {
            if o.stalled_since.is_none() {
                o.stalled_since = Some(Instant::now());
            }
            if !self.has_pending.swap(true, Ordering::AcqRel) {
                let _ = (&*self.wake).write(&[1]);
            }
        }
        true
    }

    /// How long the oldest buffered response byte has waited on a peer
    /// that is not draining its socket, if any wait is in progress.
    fn stalled_for(&self) -> Option<Duration> {
        let o = self.out.lock().unwrap_or_else(|p| p.into_inner());
        o.stalled_since.map(|t| t.elapsed())
    }

    /// Whether the write half has been killed (stall/backlog/error). The
    /// streamer uses this to drop subscriptions to reaped connections.
    fn is_dead(&self) -> bool {
        self.out.lock().unwrap_or_else(|p| p.into_inner()).dead
    }

    /// Drain-path flush: parks on `POLLOUT` (bounded by `budget`) so
    /// in-flight responses reach slow-but-live clients. Only called from
    /// shutdown, after the event loop has exited — nothing else may block
    /// on a client.
    fn flush_blocking(&self, budget: Duration) {
        let deadline = Instant::now() + budget;
        let mut o = self.out.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            o.flush();
            if o.dead || o.pending.is_empty() {
                return;
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return;
            }
            match polling::wait_writable(o.stream.as_raw_fd(), left.as_millis() as i32 + 1) {
                Ok(true) => {}
                Ok(false) | Err(_) => return,
            }
        }
    }

    /// Shuts the socket down (both halves), dropping anything still
    /// buffered. Late writes from workers holding the `Arc` just die.
    fn close(&self) {
        let mut o = self.out.lock().unwrap_or_else(|p| p.into_inner());
        o.kill();
        self.has_pending.store(false, Ordering::Release);
    }
}

/// How long buffered response bytes may sit undrained (the peer is not
/// reading its socket) before the connection is declared stalled and
/// killed. Also the total budget shutdown spends flushing stragglers.
const WRITE_STALL_TIMEOUT: Duration = Duration::from_secs(5);

/// Outbound backlog cap, as a multiple of the frame-size cap.
const OUT_CAP_FRAMES: usize = 4;

/// Retained-capacity ceiling for drained per-connection buffers: an
/// allocation that outgrew this during a burst is freed once empty, so an
/// idle session goes back to costing ~nothing instead of pinning the
/// largest frame it ever saw.
const BUF_RETAIN_CAP: usize = 8 * 1024;

/// Default `watch` frame interval when the subscriber names none.
const WATCH_DEFAULT_INTERVAL_MS: u64 = 500;

/// Fastest frame interval a subscriber may request.
const WATCH_MIN_INTERVAL_MS: u64 = 20;

/// Slowest frame interval a subscriber may request.
const WATCH_MAX_INTERVAL_MS: u64 = 60_000;

/// Streamer scheduling granularity: how often due subscriptions are
/// checked. Bounds how late a frame can be, and how long shutdown waits
/// for the streamer to notice the drain flag.
const WATCH_TICK: Duration = Duration::from_millis(25);

/// Series selected when a `watch`/`telemetry` request names none.
const DEFAULT_SERIES_PATTERNS: &[&str] = &["ccdb_server_*"];

/// One live `watch` subscription. Owned by the streamer thread's map;
/// frames ride the session's ordinary outbound buffer, so backpressure
/// (backlog cap, stall kill) is exactly the request-path machinery.
struct WatchSub {
    session: Arc<Session>,
    /// The `watch` request's id — every streamed frame echoes it, so a
    /// pipelining client can tell frames from its own request/response
    /// traffic.
    request_id: u64,
    interval: Duration,
    patterns: Vec<String>,
    /// Ring tick already reported; the next frame covers `(last_tick, now]`.
    last_tick: u64,
    seq: u64,
    next_due: Instant,
}

/// A unit of admitted work: request + the session to answer, plus the
/// phase timings the event loop already banked for it.
struct Job {
    request: Request,
    session: Arc<Session>,
    admitted: Instant,
    /// When the frame's first byte arrived — origin of the phase timeline.
    first_byte: Instant,
    /// First byte to complete frame, ns.
    recv_ns: u64,
    /// JSON/bval parse + envelope validation, ns.
    parse_ns: u64,
}

struct Inner {
    cfg: ServerConfig,
    store: SharedStore,
    catalog: Catalog,
    ctx: ServerContext,
    queue: ShardedQueue<Job>,
    /// Resolved readiness backend the event loop runs on.
    backend: Backend,
    /// Nanoseconds of inline handler execution this event-loop iteration
    /// (reset by the loop each wakeup); the fast path's starvation guard.
    inline_spent_ns: AtomicU64,
    draining: AtomicBool,
    drain_cv: (Mutex<bool>, Condvar),
    sessions: Mutex<HashMap<u64, Arc<Session>>>,
    /// Live `watch` subscriptions, keyed by session id (one per session;
    /// a re-`watch` replaces the previous subscription).
    watchers: Mutex<HashMap<u64, WatchSub>>,
    /// Per-session wire transactions (`begin`/`commit`/`abort`), keyed by
    /// session id. Sessions that disconnect mid-transaction are aborted in
    /// `close_conn` so their §6 inherited locks never outlive the socket.
    txns: TxnRegistry,
    next_session: AtomicU64,
    local_addr: SocketAddr,
}

impl Inner {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Flips the server into draining mode and wakes the event loop.
    fn begin_shutdown(&self) {
        if self.draining.swap(true, Ordering::SeqCst) {
            return; // already draining
        }
        let (lock, cv) = &self.drain_cv;
        *lock.lock().unwrap_or_else(|p| p.into_inner()) = true;
        cv.notify_all();
        // Make the listener readable so the event loop's poll() returns.
        let _ = TcpStream::connect(self.local_addr);
    }
}

/// A handle that can trigger shutdown from any thread (used by the CLI's
/// signalless smoke flow: a client sends the `shutdown` verb).
#[derive(Clone)]
pub struct ServerHandle {
    inner: Arc<Inner>,
}

impl ServerHandle {
    /// Starts draining; returns immediately.
    pub fn begin_shutdown(&self) {
        self.inner.begin_shutdown();
    }
}

/// A running server. Dropping it without [`Server::shutdown`] leaks the
/// threads until process exit; call `shutdown` (or `run_until_shutdown`)
/// for a clean stop.
pub struct Server {
    inner: Arc<Inner>,
    event_loop: Option<JoinHandle<()>>,
    streamer: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the event loop and worker pool, and returns
    /// immediately.
    pub fn start(cfg: ServerConfig, store: SharedStore) -> io::Result<Server> {
        let backend = resolve_backend(cfg.poll_backend)?;
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let catalog = store.read(|st| st.catalog().clone());
        let workers_n = cfg.workers.max(1);
        let ctx = ServerContext {
            started: Instant::now(),
            workers: workers_n,
            queue_depth: cfg.queue_depth,
            rescache_shards: store.read(|st| st.resolution_cache_shards()),
            max_proto: cfg.max_proto,
            backend: backend.name(),
            inline_reads: cfg.inline_reads,
        };
        let txns = TxnRegistry::with_timeout(cfg.txn_lock_timeout);
        let registry = ccdb_obs::global();
        let m = server_metrics();
        let inner = Arc::new(Inner {
            queue: ShardedQueue::with_observers(
                workers_n,
                cfg.queue_depth,
                QueueObservers {
                    wakeup: Some(Arc::clone(&m.wakeup_latency)),
                    wakeup_per_shard: (0..workers_n)
                        .map(|i| {
                            registry.histogram(
                                &format!("ccdb_server_shard{i}_wakeup_latency_ns"),
                                ccdb_obs::metrics::LATENCY_BUCKETS_NS,
                            )
                        })
                        .collect(),
                    steals: Some(Arc::clone(&m.steals)),
                    steals_per_worker: (0..workers_n)
                        .map(|i| registry.counter(&format!("ccdb_server_worker{i}_steals_total")))
                        .collect(),
                },
            ),
            backend,
            inline_spent_ns: AtomicU64::new(0),
            cfg,
            store,
            catalog,
            ctx,
            draining: AtomicBool::new(false),
            drain_cv: (Mutex::new(false), Condvar::new()),
            sessions: Mutex::new(HashMap::new()),
            watchers: Mutex::new(HashMap::new()),
            txns,
            next_session: AtomicU64::new(1),
            local_addr,
        });

        if inner.cfg.sample_interval_ms > 0 {
            timeseries::start_global_sampler(
                inner.cfg.sample_interval_ms,
                inner.cfg.sample_retention,
            );
        }
        let workers = (0..inner.cfg.workers.max(1))
            .map(|w| {
                let inner = Arc::clone(&inner);
                thread::spawn(move || worker_loop(&inner, w))
            })
            .collect();
        let streamer = {
            let inner = Arc::clone(&inner);
            thread::spawn(move || streamer_loop(&inner))
        };
        let (wake_tx, wake_rx) = wake_pair()?;
        let event_loop = {
            let inner = Arc::clone(&inner);
            thread::spawn(move || EventLoop::new(listener, inner, wake_tx, wake_rx).run())
        };
        Ok(Server {
            inner,
            event_loop: Some(event_loop),
            streamer: Some(streamer),
            workers,
        })
    }

    /// The bound address (useful with an ephemeral `:0` bind).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr
    }

    /// The readiness backend resolved at startup (`"poll"` or `"epoll"`).
    pub fn backend(&self) -> &'static str {
        self.inner.backend.name()
    }

    /// A cloneable shutdown trigger.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Live session count.
    pub fn session_count(&self) -> usize {
        self.inner
            .sessions
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .len()
    }

    /// Blocks until some client/handle triggers shutdown, then drains and
    /// joins everything. This is what `ccdb serve` sits in.
    pub fn run_until_shutdown(mut self) {
        {
            let (lock, cv) = &self.inner.drain_cv;
            let mut fired = lock.lock().unwrap_or_else(|p| p.into_inner());
            while !*fired {
                fired = cv.wait(fired).unwrap_or_else(|p| p.into_inner());
            }
        }
        self.drain_and_join();
    }

    /// Triggers shutdown and performs the full drain (see module docs).
    pub fn shutdown(mut self) {
        self.inner.begin_shutdown();
        self.drain_and_join();
    }

    fn drain_and_join(&mut self) {
        // 1. Event loop exits (woken by begin_shutdown's self-connect):
        //    no more reads are admitted, but sessions and their write
        //    halves stay alive for in-flight responses.
        if let Some(h) = self.event_loop.take() {
            let _ = h.join();
        }
        // The streamer polls the drain flag every tick; join it and drop
        // its subscriptions so no telemetry frame races the final flush.
        if let Some(h) = self.streamer.take() {
            let _ = h.join();
        }
        {
            let mut w = self
                .inner
                .watchers
                .lock()
                .unwrap_or_else(|p| p.into_inner());
            server_metrics().watch_subscribers.add(-(w.len() as i64));
            w.clear();
        }
        // 2. Stop admission; queued jobs still drain. Workers run each
        //    remaining job, write its response, then exit.
        self.inner.queue.close();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // 3. Every response is written or buffered; flush stragglers to
        //    slow-but-live clients (one shared budget — healthy sockets
        //    cost nothing), then shut the sockets so clients see EOF
        //    instead of a hang.
        let sessions: Vec<Arc<Session>> = {
            let mut map = self
                .inner
                .sessions
                .lock()
                .unwrap_or_else(|p| p.into_inner());
            map.drain().map(|(_, s)| s).collect()
        };
        let m = server_metrics();
        let deadline = Instant::now() + WRITE_STALL_TIMEOUT;
        for s in sessions {
            // Uncommitted wire transactions die with the server: abort so
            // their locks are accounted for (mirrors close_conn).
            self.inner.txns.abort_if_any(s.id);
            release_session_gauges(m, s.proto());
            s.flush_blocking(deadline.saturating_duration_since(Instant::now()));
            s.close();
        }
    }
}

/// A connected loopback socket pair used as the event loop's wake channel
/// (a std-only stand-in for a self-pipe): sessions write a byte to the
/// `tx` end when a flush leaves residual output, the loop polls `rx`.
fn wake_pair() -> io::Result<(Arc<TcpStream>, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let tx = TcpStream::connect(listener.local_addr()?)?;
    let (rx, peer) = listener.accept()?;
    if peer != tx.local_addr()? {
        return Err(io::Error::new(
            io::ErrorKind::ConnectionRefused,
            "wake pair hijacked by a foreign connection",
        ));
    }
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    let _ = tx.set_nodelay(true);
    Ok((Arc::new(tx), rx))
}

fn release_session_gauges(m: &crate::metrics::ServerMetrics, proto: u8) {
    m.sessions_active.add(-1);
    match proto {
        p if p == PROTOCOL_V2 => m.sessions_v2.add(-1),
        _ => m.sessions_v1.add(-1),
    }
}

// ---------------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------------

/// What dialect a connection's bytes are in right now.
enum ConnMode {
    /// No bytes seen yet: the first byte decides (0xCC ⇒ v2 hello,
    /// anything else ⇒ a v1 length prefix).
    Negotiating,
    /// v1 JSON frames.
    V1,
    /// v2 binary frames (hello exchanged).
    V2,
}

/// Per-connection event-loop state. Cheap on purpose: an idle session is
/// this struct + an empty `Vec` + one poll slot.
struct Conn {
    stream: TcpStream,
    session: Arc<Session>,
    mode: ConnMode,
    /// Received-but-unconsumed bytes (partial frames across reads).
    buf: Vec<u8>,
    /// When the first byte of the frame currently being accumulated
    /// arrived; `None` while the buffer is empty (idle between frames).
    frame_start: Option<Instant>,
    last_activity: Instant,
    /// Lame-duck: no more reads; close as soon as buffered output (a
    /// final error response, typically) is flushed or the stall deadline
    /// passes.
    closing: bool,
    /// Event mask currently registered with the kernel (epoll backend
    /// only; the poll backend rebuilds its interest set every iteration).
    interest: i16,
}

/// Result of servicing one connection's readiness.
enum ConnAfter {
    Keep,
    Close,
    /// Close, but only after any buffered output (the error response just
    /// queued) has reached the kernel — never block to get it there.
    CloseAfterFlush,
}

struct EventLoop {
    listener: TcpListener,
    inner: Arc<Inner>,
    conns: HashMap<u64, Conn>,
    scratch: Box<[u8; 64 * 1024]>,
    /// Read end of the wake channel; see [`wake_pair`].
    wake_rx: TcpStream,
    /// Write end, cloned into every session.
    wake_tx: Arc<TcpStream>,
    /// Kernel-held interest set (epoll backend only).
    epoll: Option<polling::Epoll>,
}

/// Epoll token for the listener socket.
const TOKEN_LISTENER: u64 = 0;
/// Epoll token for the wake channel's read end.
const TOKEN_WAKE: u64 = 1;
/// Connection tokens are `session id + TOKEN_CONN_BASE`.
const TOKEN_CONN_BASE: u64 = 2;

/// How often the epoll loop runs its idle/stall deadline sweep (and the
/// upper bound on its wait timeout). The poll loop sweeps every
/// iteration — it already walks all connections to rebuild its interest
/// set — but under epoll an O(connections) sweep per request would give
/// back the O(ready) win, so deadlines are checked on this cadence
/// instead (timeouts are seconds-scale; 100 ms of slack is noise).
const EPOLL_SWEEP_INTERVAL: Duration = Duration::from_millis(100);

impl EventLoop {
    fn new(
        listener: TcpListener,
        inner: Arc<Inner>,
        wake_tx: Arc<TcpStream>,
        wake_rx: TcpStream,
    ) -> EventLoop {
        EventLoop {
            listener,
            inner,
            conns: HashMap::new(),
            scratch: Box::new([0u8; 64 * 1024]),
            wake_rx,
            wake_tx,
            epoll: None,
        }
    }

    fn run(mut self) {
        match self.inner.backend {
            Backend::Poll => self.run_poll(),
            Backend::Epoll => self.run_epoll(),
        }
    }

    /// The epoll backend: the kernel holds the interest set, so a wakeup
    /// costs O(ready fds) instead of rebuilding and scanning every
    /// registered connection. Deadline sweeps (the only per-connection
    /// work left) run on [`EPOLL_SWEEP_INTERVAL`].
    fn run_epoll(&mut self) {
        let m = server_metrics();
        let ep = match polling::Epoll::new() {
            Ok(ep) => ep,
            // resolve_backend said epoll exists; if creation still fails
            // (fd exhaustion, say), serve on poll(2) rather than die.
            Err(_) => return self.run_poll(),
        };
        if ep
            .add(self.listener.as_raw_fd(), polling::POLLIN, TOKEN_LISTENER)
            .is_err()
            || ep
                .add(self.wake_rx.as_raw_fd(), polling::POLLIN, TOKEN_WAKE)
                .is_err()
        {
            return self.run_poll();
        }
        self.epoll = Some(ep);
        let mut events: Vec<polling::Event> = Vec::new();
        let mut last_sweep = Instant::now();
        loop {
            if self.inner.draining() {
                // Leave sessions registered: workers may still be
                // flushing responses; drain_and_join tears them down.
                return;
            }
            m.eventloop_iterations.inc();
            self.inner.inline_spent_ns.store(0, Ordering::Relaxed);
            let timeout_ms = EPOLL_SWEEP_INTERVAL
                .saturating_sub(last_sweep.elapsed())
                .as_millis() as i32
                + 1;
            let wait = {
                let ep = self.epoll.as_ref().expect("epoll installed above");
                ep.wait(&mut events, timeout_ms)
            };
            if wait.is_err() {
                thread::sleep(Duration::from_millis(5));
                continue;
            }
            if self.inner.draining() {
                return;
            }
            let mut wake_fired = false;
            for ev in &events {
                match ev.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKE => wake_fired = true,
                    token => {
                        let id = token - TOKEN_CONN_BASE;
                        if ev.ready(polling::POLLIN) || ev.failed() {
                            let after = match self.conns.get_mut(&id) {
                                Some(conn) if !conn.closing => {
                                    service_conn(&self.inner, conn, &mut self.scratch[..])
                                }
                                _ => continue,
                            };
                            match after {
                                ConnAfter::Keep => {}
                                ConnAfter::Close => {
                                    self.close_conn(id);
                                    continue;
                                }
                                ConnAfter::CloseAfterFlush => {
                                    self.begin_close(id);
                                    continue;
                                }
                            }
                        }
                        self.flush_and_sync(id);
                    }
                }
            }
            if wake_fired {
                // A session's outbound buffer went empty→non-empty (a
                // worker response didn't fully flush): find the owing
                // sessions and register POLLOUT for them. Wakes only
                // happen on that transition, so this scan is off the
                // per-request path.
                self.drain_wake();
                let pending_ids: Vec<u64> = self
                    .conns
                    .iter()
                    .filter(|(_, c)| c.closing || c.session.has_pending.load(Ordering::Acquire))
                    .map(|(id, _)| *id)
                    .collect();
                for id in pending_ids {
                    self.flush_and_sync(id);
                }
            }
            if last_sweep.elapsed() >= EPOLL_SWEEP_INTERVAL {
                last_sweep = Instant::now();
                self.sweep_deadlines();
            }
        }
    }

    /// Flushes a connection that may owe bytes, closes it if its write
    /// half died (or a lame-duck drain finished), and re-syncs its kernel
    /// interest mask. Epoll backend only.
    fn flush_and_sync(&mut self, id: u64) {
        let Some(conn) = self.conns.get(&id) else {
            return;
        };
        if conn.closing || conn.session.has_pending.load(Ordering::Acquire) {
            let alive = conn.session.flush_pending();
            let drained = !conn.session.has_pending.load(Ordering::Acquire);
            if !alive || (conn.closing && drained) {
                self.close_conn(id);
                return;
            }
        }
        self.sync_interest(id);
    }

    /// Reconciles a connection's kernel event mask with what it needs now
    /// (`POLLIN` unless lame-duck, `POLLOUT` while output is buffered).
    /// One `epoll_ctl` only when the mask actually changed.
    fn sync_interest(&mut self, id: u64) {
        let Some(ep) = &self.epoll else { return };
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        let mut want = if conn.closing { 0 } else { polling::POLLIN };
        if conn.session.has_pending.load(Ordering::Acquire) {
            want |= polling::POLLOUT;
        }
        if want != conn.interest
            && ep
                .modify(conn.stream.as_raw_fd(), want, TOKEN_CONN_BASE + id)
                .is_ok()
        {
            conn.interest = want;
        }
    }

    /// The portable poll(2) backend: rebuilds the interest set and scans
    /// every registered connection each iteration.
    fn run_poll(&mut self) {
        let m = server_metrics();
        let mut poll_set: Vec<polling::PollFd> = Vec::new();
        let mut ready_ids: Vec<u64> = Vec::new();
        loop {
            if self.inner.draining() {
                // Leave sessions registered: workers may still be
                // flushing responses; drain_and_join tears them down.
                return;
            }
            m.eventloop_iterations.inc();
            self.inner.inline_spent_ns.store(0, Ordering::Relaxed);
            poll_set.clear();
            poll_set.push(polling::PollFd::new(
                self.listener.as_raw_fd(),
                polling::POLLIN,
            ));
            poll_set.push(polling::PollFd::new(
                self.wake_rx.as_raw_fd(),
                polling::POLLIN,
            ));
            // Stable iteration: poll slot i+2 belongs to ids[i].
            let ids: Vec<u64> = self.conns.keys().copied().collect();
            for id in &ids {
                let c = &self.conns[id];
                let mut events = if c.closing { 0 } else { polling::POLLIN };
                if c.session.has_pending.load(Ordering::Acquire) {
                    events |= polling::POLLOUT;
                }
                poll_set.push(polling::PollFd::new(c.stream.as_raw_fd(), events));
            }
            let timeout_ms = self.poll_timeout_ms();
            let n = match polling::poll_fds(&mut poll_set, timeout_ms) {
                Ok(n) => n,
                Err(_) => {
                    // poll() itself failing is not a per-conn condition;
                    // back off briefly rather than spin.
                    thread::sleep(Duration::from_millis(5));
                    continue;
                }
            };
            if self.inner.draining() {
                return;
            }
            if n > 0 {
                if poll_set[0].ready(polling::POLLIN) {
                    self.accept_ready();
                }
                if poll_set[1].ready(polling::POLLIN) {
                    self.drain_wake();
                }
                ready_ids.clear();
                ready_ids.extend(
                    ids.iter()
                        .zip(&poll_set[2..])
                        .filter(|(_, p)| p.ready(polling::POLLIN) || p.failed())
                        .map(|(id, _)| *id),
                );
                for id in &ready_ids {
                    let after = match self.conns.get_mut(id) {
                        Some(conn) if !conn.closing => {
                            service_conn(&self.inner, conn, &mut self.scratch[..])
                        }
                        _ => continue,
                    };
                    match after {
                        ConnAfter::Keep => {}
                        ConnAfter::Close => self.close_conn(*id),
                        ConnAfter::CloseAfterFlush => self.begin_close(*id),
                    }
                }
            }
            // Flush pass: push buffered output for every session that has
            // any (POLLOUT readiness and wake nudges both land here). The
            // per-conn check is one atomic load; the mutex is only taken
            // for connections that actually owe bytes.
            let flush_ids: Vec<u64> = self
                .conns
                .iter()
                .filter(|(_, c)| c.closing || c.session.has_pending.load(Ordering::Acquire))
                .map(|(id, _)| *id)
                .collect();
            for id in flush_ids {
                let Some(conn) = self.conns.get(&id) else {
                    continue;
                };
                let alive = conn.session.flush_pending();
                let drained = !conn.session.has_pending.load(Ordering::Acquire);
                if !alive || (conn.closing && drained) {
                    self.close_conn(id);
                }
            }
            // Deadline sweep runs every iteration: this loop already
            // walks all connections to rebuild the interest set.
            self.sweep_deadlines();
        }
    }

    /// Sweeps connection deadlines, driven by the clock alone
    /// (WouldBlock never gets a connection here): silence beyond the
    /// idle window, or buffered output the peer has not drained within
    /// the stall window (it stopped reading its socket).
    fn sweep_deadlines(&mut self) {
        let m = server_metrics();
        let idle = self.inner.cfg.idle_timeout;
        let stall = self.inner.cfg.write_stall_timeout;
        let dead_ids: Vec<(u64, bool)> = self
            .conns
            .iter()
            .filter_map(|(id, c)| {
                let stalled = c.session.has_pending.load(Ordering::Acquire)
                    && matches!(c.session.stalled_for(), Some(d) if d >= stall);
                if stalled {
                    Some((*id, true))
                } else if c.last_activity.elapsed() >= idle {
                    Some((*id, false))
                } else {
                    None
                }
            })
            .collect();
        for (id, stalled) in dead_ids {
            if stalled {
                m.write_stalled_closed.inc();
            } else {
                m.idle_closed.inc();
            }
            self.close_conn(id);
        }
    }

    /// Empties the wake channel; the actual work happens in the flush
    /// pass, keyed off each session's `has_pending` flag.
    fn drain_wake(&mut self) {
        loop {
            match self.wake_rx.read(&mut self.scratch[..]) {
                Ok(0) => return, // tx end closed: server is tearing down
                Ok(n) if n < self.scratch.len() => return,
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return, // WouldBlock: drained
            }
        }
    }

    /// Starts a lame-duck close: flush what is already writable now, keep
    /// the connection (write side only) while output remains, close as
    /// soon as it drains. The stall sweep bounds how long that lasts.
    fn begin_close(&mut self, id: u64) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        let alive = conn.session.flush_pending();
        if !alive || !conn.session.has_pending.load(Ordering::Acquire) {
            self.close_conn(id);
        } else {
            conn.closing = true;
        }
    }

    /// Poll timeout: the soonest idle deadline, capped so drain checks
    /// and deadline sweeps stay responsive even with no traffic.
    fn poll_timeout_ms(&self) -> i32 {
        let idle = self.inner.cfg.idle_timeout;
        let next = self
            .conns
            .values()
            .map(|c| idle.saturating_sub(c.last_activity.elapsed()))
            .min()
            .unwrap_or(idle);
        next.as_millis().min(500) as i32 + 1
    }

    fn accept_ready(&mut self) {
        // Drain the accept backlog; nonblocking accept ends with WouldBlock.
        loop {
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    if self.inner.draining() {
                        return;
                    }
                    self.register_conn(stream, peer.to_string());
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    // Transient accept error (e.g. EMFILE): yield briefly,
                    // keep serving existing connections.
                    thread::sleep(Duration::from_millis(10));
                    return;
                }
            }
        }
    }

    fn register_conn(&mut self, stream: TcpStream, peer: String) {
        let m = server_metrics();
        m.connections.inc();
        let _ = stream.set_nodelay(true);
        if let Some(bytes) = self.inner.cfg.send_buffer_bytes {
            let _ = polling::set_send_buffer(stream.as_raw_fd(), bytes);
        }
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let writer = match stream.try_clone() {
            Ok(w) => w,
            Err(_) => return, // dead on arrival
        };
        let id = self.inner.next_session.fetch_add(1, Ordering::Relaxed);
        let session = Arc::new(Session {
            id,
            peer,
            proto: AtomicU8::new(1),
            out: Mutex::new(OutBuf {
                stream: writer,
                pending: Vec::new(),
                stalled_since: None,
                dead: false,
            }),
            has_pending: AtomicBool::new(false),
            wake: Arc::clone(&self.wake_tx),
            out_cap: self
                .inner
                .cfg
                .max_frame_bytes
                .saturating_mul(OUT_CAP_FRAMES),
            requests: AtomicU64::new(0),
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            started: Instant::now(),
        });
        self.inner
            .sessions
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .insert(id, Arc::clone(&session));
        m.sessions_active.add(1);
        // Counted as v1 until a hello upgrades it (v1 needs no handshake).
        m.sessions_v1.add(1);
        let fd = stream.as_raw_fd();
        self.conns.insert(
            id,
            Conn {
                stream,
                session,
                mode: ConnMode::Negotiating,
                buf: Vec::new(),
                frame_start: None,
                last_activity: Instant::now(),
                closing: false,
                interest: polling::POLLIN,
            },
        );
        if let Some(ep) = &self.epoll {
            if ep.add(fd, polling::POLLIN, TOKEN_CONN_BASE + id).is_err() {
                // Unregisterable connection is unservable; drop it.
                self.close_conn(id);
            }
        }
    }

    fn close_conn(&mut self, id: u64) {
        let Some(conn) = self.conns.remove(&id) else {
            return;
        };
        if let Some(ep) = &self.epoll {
            // Explicit deregistration is required: the session's OutBuf
            // holds a dup of this socket, and epoll tracks the open file
            // *description* — dropping `conn.stream` alone would leave
            // the registration (and its token) alive.
            let _ = ep.del(conn.stream.as_raw_fd());
        }
        // A transaction must not outlive its connection: its inherited
        // locks would block every other session until the lock timeout.
        self.inner.txns.abort_if_any(id);
        self.inner
            .sessions
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .remove(&id);
        if self
            .inner
            .watchers
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .remove(&id)
            .is_some()
        {
            // A subscription that dies with its connection (stall-killed
            // or peer disconnect) is a drop, not a cancel.
            server_metrics().watch_subscribers.add(-1);
            server_metrics().watch_dropped.inc();
        }
        release_session_gauges(server_metrics(), conn.session.proto());
        // Force the FIN out even if a queued job still holds the session
        // (its late write will just fail, which is already tolerated).
        conn.session.close();
    }
}

/// Reads whatever the kernel has buffered for `conn` and processes every
/// complete frame in it.
fn service_conn(inner: &Arc<Inner>, conn: &mut Conn, scratch: &mut [u8]) -> ConnAfter {
    let after = service_conn_io(inner, conn, scratch);
    // A connection retains only a small receive buffer between frames; a
    // one-off large frame must not pin its allocation for the session's
    // lifetime.
    if conn.buf.is_empty() && conn.buf.capacity() > BUF_RETAIN_CAP {
        conn.buf = Vec::new();
    }
    after
}

fn service_conn_io(inner: &Arc<Inner>, conn: &mut Conn, scratch: &mut [u8]) -> ConnAfter {
    let m = server_metrics();
    loop {
        match conn.stream.read(scratch) {
            Ok(0) => {
                // EOF. Mid-frame it is a truncation worth counting.
                if !conn.buf.is_empty() {
                    m.malformed.inc();
                    return ConnAfter::Close;
                }
                // A clean half-close may still be waiting on buffered
                // pipelined responses; let those drain first.
                return if conn.session.has_pending.load(Ordering::Acquire) {
                    ConnAfter::CloseAfterFlush
                } else {
                    ConnAfter::Close
                };
            }
            Ok(n) => {
                conn.last_activity = Instant::now();
                if conn.frame_start.is_none() {
                    conn.frame_start = Some(conn.last_activity);
                }
                conn.buf.extend_from_slice(&scratch[..n]);
                match process_buffer(inner, conn) {
                    ConnAfter::Keep => {}
                    close => return close,
                }
                if n < scratch.len() {
                    // Short read: the kernel buffer is drained.
                    return ConnAfter::Keep;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return ConnAfter::Keep,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return ConnAfter::Close,
        }
    }
}

/// Consumes every complete unit (hello or frame) in `conn.buf`.
fn process_buffer(inner: &Arc<Inner>, conn: &mut Conn) -> ConnAfter {
    let m = server_metrics();
    loop {
        if let ConnMode::Negotiating = conn.mode {
            let Some(&first) = conn.buf.first() else {
                return ConnAfter::Keep;
            };
            if first != HELLO_V2[0] {
                // A v1 length prefix (its first byte is always 0x00 under
                // the 1 MiB cap; anything non-0xCC gets v1's strict
                // framing checks below).
                conn.mode = ConnMode::V1;
            } else {
                if conn.buf.len() < HELLO_V2.len() {
                    return ConnAfter::Keep; // partial hello
                }
                if conn.buf[..HELLO_V2.len()] != HELLO_V2 {
                    m.malformed.inc();
                    conn.session.send(&err_response(
                        0,
                        ErrorKind::Protocol,
                        &format!("bad hello magic (expected {:02x?})", &HELLO_V2[..]),
                    ));
                    return ConnAfter::CloseAfterFlush;
                }
                if inner.cfg.max_proto < PROTOCOL_V2 {
                    m.malformed.inc();
                    conn.session.send(&err_response(
                        0,
                        ErrorKind::Protocol,
                        "protocol v2 not supported (server pinned to v1)",
                    ));
                    return ConnAfter::CloseAfterFlush;
                }
                // Accept: echo the magic raw (unframed) and switch modes.
                conn.buf.drain(..HELLO_V2.len());
                conn.frame_start = if conn.buf.is_empty() {
                    None
                } else {
                    Some(Instant::now())
                };
                conn.session.proto.store(PROTOCOL_V2, Ordering::Relaxed);
                m.sessions_v1.add(-1);
                m.sessions_v2.add(1);
                // The ack is queued ahead of any response to pipelined v2
                // frames already in `buf`, preserving stream order.
                if !conn.session.enqueue_raw(&HELLO_V2) {
                    return ConnAfter::Close;
                }
                conn.mode = ConnMode::V2;
                continue;
            }
        }

        // Framed modes: extract one length-prefixed frame.
        if conn.buf.len() < 4 {
            return ConnAfter::Keep;
        }
        let len = u32::from_be_bytes(conn.buf[..4].try_into().unwrap()) as usize;
        if len > inner.cfg.max_frame_bytes {
            // Refused before the body is ever buffered past what already
            // arrived; framing is unrecoverable after this.
            m.malformed.inc();
            conn.session.send(&err_response(
                0,
                ErrorKind::Protocol,
                &format!(
                    "frame of {len} bytes exceeds cap of {}",
                    inner.cfg.max_frame_bytes
                ),
            ));
            return ConnAfter::CloseAfterFlush;
        }
        if conn.buf.len() < 4 + len {
            return ConnAfter::Keep; // partial frame
        }
        let payload: Vec<u8> = conn.buf[4..4 + len].to_vec();
        conn.buf.drain(..4 + len);
        let first_byte = conn.frame_start.take().unwrap_or_else(Instant::now);
        conn.frame_start = if conn.buf.is_empty() {
            None
        } else {
            Some(Instant::now())
        };
        let recv_ns = first_byte.elapsed().as_nanos() as u64;
        if let close @ ConnAfter::Close = handle_frame(inner, conn, payload, first_byte, recv_ns) {
            return close;
        }
    }
}

/// One complete frame: parse in the connection's dialect, answer
/// session-local verbs inline, admit the rest to the worker queue.
fn handle_frame(
    inner: &Arc<Inner>,
    conn: &mut Conn,
    payload: Vec<u8>,
    first_byte: Instant,
    recv_ns: u64,
) -> ConnAfter {
    let m = server_metrics();
    let session = &conn.session;
    session
        .bytes_in
        .fetch_add(payload.len() as u64, Ordering::Relaxed);
    m.bytes_in.add(payload.len() as u64);

    let parse_start = Instant::now();
    let parsed = match conn.mode {
        ConnMode::V2 => Request::parse_v2(&payload),
        _ => Request::parse(&payload),
    };
    let request = match parsed {
        Ok(r) => r,
        Err(msg) => {
            // Framing is intact; answer and keep the connection.
            m.malformed.inc();
            session.send(&err_response(0, ErrorKind::Protocol, &msg));
            return ConnAfter::Keep;
        }
    };
    let parse_ns = parse_start.elapsed().as_nanos() as u64;
    m.requests.inc();
    if let Some(c) = m.verb_counter(&request.verb) {
        c.inc();
    }
    session.requests.fetch_add(1, Ordering::Relaxed);

    // Session introspection never touches the store or the queue.
    if request.verb == "session" {
        session.send(&ok_response(request.id, session.info_json()));
        return ConnAfter::Keep;
    }
    // `watch` is connection-level (it binds a stream to this session), so
    // it is answered inline like `session`; frames are pushed later by the
    // streamer thread through the session's ordinary outbound buffer.
    if request.verb == "watch" {
        session.send(&register_watch(inner, session, &request));
        return ConnAfter::Keep;
    }
    if inner.draining() {
        session.send(&err_response(
            request.id,
            ErrorKind::Shutdown,
            "server is draining",
        ));
        return ConnAfter::Keep;
    }
    // Inline fast path: a read-only snapshot verb from a session that is
    // not in a transaction can run right here against a pinned MVCC
    // snapshot — no enqueue, no worker wakeup, response through the same
    // never-blocking OutBuf. Gated on a shallow queue (when workers are
    // behind, queue-jumping reads would starve admitted writes of CPU)
    // and a per-iteration time budget (the loop's readiness duties come
    // first).
    if inner.cfg.inline_reads && is_inline_verb(&request) && !inner.txns.in_txn(session.id) {
        if inner.queue.len() <= inner.ctx.workers
            && inner.inline_spent_ns.load(Ordering::Relaxed) < INLINE_BUDGET_NS
        {
            let started = Instant::now();
            run_request(
                inner,
                Job {
                    request,
                    session: Arc::clone(session),
                    admitted: started,
                    first_byte,
                    recv_ns,
                    parse_ns,
                },
                0,
            );
            m.inline_requests.inc();
            inner
                .inline_spent_ns
                .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
            return ConnAfter::Keep;
        }
        m.inline_fallback.inc();
    }
    let id = request.id;
    let job = Job {
        request,
        session: Arc::clone(session),
        admitted: Instant::now(),
        first_byte,
        recv_ns,
        parse_ns,
    };
    match inner.queue.push(job) {
        Ok(()) => m.queue_depth.set(inner.queue.len() as i64),
        Err(PushError::Full(job)) => {
            m.overloaded.inc();
            job.session.send(&err_response(
                id,
                ErrorKind::Overloaded,
                &format!(
                    "request queue full (depth {}); back off and retry",
                    inner.cfg.queue_depth
                ),
            ));
        }
        Err(PushError::Closed(job)) => {
            job.session
                .send(&err_response(id, ErrorKind::Shutdown, "server is draining"));
        }
    }
    ConnAfter::Keep
}

/// Verbs the event loop may execute inline: read-only against a pinned
/// MVCC snapshot (or touching no store at all), and never blocking.
/// Write verbs, txn verbs, `batch` (it may carry writes), `shutdown`,
/// and debug verbs are deliberately absent — they always take the queue.
const INLINE_VERBS: &[&str] = &[
    "ping",
    "attr",
    "select",
    "effective",
    "check_all",
    "stats",
    "metrics",
    "telemetry",
    "flight",
];

/// Inline-execution budget per event-loop iteration: once inline
/// handlers have consumed this much of an iteration, further eligible
/// requests are enqueued instead, so a read burst cannot starve the
/// loop's accept/read/flush duties.
const INLINE_BUDGET_NS: u64 = 1_000_000;

/// Whether this request may run on the event-loop thread. A `ping`
/// carrying `delay_ms` is an artificial sleep (drain/overload tests) and
/// must park a worker, never the loop.
fn is_inline_verb(request: &Request) -> bool {
    INLINE_VERBS.contains(&request.verb.as_str())
        && !(request.verb == "ping" && request.params.get("delay_ms").is_some())
}

/// Handles a `watch` request: registers (or replaces, or with
/// `stop: true` cancels) this session's telemetry subscription and
/// returns the ack envelope. Streaming itself happens on the streamer
/// thread.
fn register_watch(inner: &Arc<Inner>, session: &Arc<Session>, request: &Request) -> Json {
    let m = server_metrics();
    let p = &request.params;
    if p.get("stop").and_then(Json::as_bool) == Some(true) {
        let removed = inner
            .watchers
            .lock()
            .unwrap_or_else(|q| q.into_inner())
            .remove(&session.id)
            .is_some();
        if removed {
            m.watch_subscribers.add(-1);
        }
        return ok_response(
            request.id,
            Json::Object(vec![("watching".into(), Json::Bool(false))]),
        );
    }
    if inner.cfg.sample_interval_ms == 0 {
        return err_response(
            request.id,
            ErrorKind::BadRequest,
            "telemetry sampler disabled on this server (sample_interval_ms = 0)",
        );
    }
    let interval_ms = p
        .get("interval_ms")
        .and_then(Json::as_u64)
        .unwrap_or(WATCH_DEFAULT_INTERVAL_MS)
        .clamp(WATCH_MIN_INTERVAL_MS, WATCH_MAX_INTERVAL_MS);
    let patterns = series_patterns(p);
    let tick = timeseries::global_series().tick();
    let sub = WatchSub {
        session: Arc::clone(session),
        request_id: request.id,
        interval: Duration::from_millis(interval_ms),
        patterns: patterns.clone(),
        last_tick: tick,
        seq: 0,
        next_due: Instant::now() + Duration::from_millis(interval_ms),
    };
    let replaced = inner
        .watchers
        .lock()
        .unwrap_or_else(|q| q.into_inner())
        .insert(session.id, sub)
        .is_some();
    if !replaced {
        m.watch_subscribers.add(1);
    }
    ok_response(
        request.id,
        Json::Object(vec![
            ("watching".into(), Json::Bool(true)),
            ("interval_ms".into(), Json::UInt(interval_ms)),
            ("tick".into(), Json::UInt(tick)),
            (
                "sampler_interval_ms".into(),
                Json::UInt(timeseries::global_series().interval_ms()),
            ),
            (
                "series".into(),
                Json::Array(patterns.into_iter().map(Json::String).collect()),
            ),
        ]),
    )
}

/// Extracts the `series` name/pattern list from request params, falling
/// back to [`DEFAULT_SERIES_PATTERNS`].
fn series_patterns(params: &Json) -> Vec<String> {
    let named: Vec<String> = params
        .get("series")
        .and_then(Json::as_array)
        .map(|items| {
            items
                .iter()
                .filter_map(|v| v.as_str().map(String::from))
                .collect()
        })
        .unwrap_or_default();
    if named.is_empty() {
        DEFAULT_SERIES_PATTERNS
            .iter()
            .map(|s| (*s).to_string())
            .collect()
    } else {
        named
    }
}

/// Renders one series delta as the wire object shared by `watch` frames
/// and the `telemetry` verb. `window_secs` converts counter deltas to
/// rates.
fn series_delta_json(name: &str, delta: &SeriesDelta, window_secs: f64) -> Json {
    let mut fields = vec![("name".into(), Json::String(name.to_string()))];
    match delta {
        SeriesDelta::Counter { delta } => {
            fields.push(("kind".into(), Json::String("counter".into())));
            fields.push(("delta".into(), Json::UInt(*delta)));
            fields.push((
                "rate".into(),
                Json::Float(*delta as f64 / window_secs.max(1e-9)),
            ));
        }
        SeriesDelta::Gauge { value } => {
            fields.push(("kind".into(), Json::String("gauge".into())));
            fields.push(("value".into(), Json::Int(*value)));
        }
        SeriesDelta::Histogram { delta } => {
            fields.push(("kind".into(), Json::String("histogram".into())));
            fields.push(("count".into(), Json::UInt(delta.count)));
            fields.push(("sum".into(), Json::UInt(delta.sum)));
            for (label, q) in [("p50", 0.5), ("p95", 0.95), ("p99", 0.99)] {
                fields.push((
                    label.into(),
                    delta.quantile(q).map(Json::Float).unwrap_or(Json::Null),
                ));
            }
        }
    }
    Json::Object(fields)
}

/// Renders one incremental telemetry frame for the wire.
fn watch_frame_json(frame: &TelemetryFrame, seq: u64) -> Json {
    let window_ms = frame.tick.saturating_sub(frame.from_tick) * frame.interval_ms;
    let window_secs = (window_ms as f64 / 1_000.0).max(frame.interval_ms as f64 / 1_000.0);
    Json::Object(vec![
        ("watch".into(), Json::Bool(true)),
        ("seq".into(), Json::UInt(seq)),
        ("from_tick".into(), Json::UInt(frame.from_tick)),
        ("tick".into(), Json::UInt(frame.tick)),
        ("interval_ms".into(), Json::UInt(frame.interval_ms)),
        ("window_ms".into(), Json::UInt(window_ms)),
        ("unix_ms".into(), Json::UInt(frame.unix_ms)),
        (
            "series".into(),
            Json::Array(
                frame
                    .series
                    .iter()
                    .map(|(name, d)| series_delta_json(name, d, window_secs))
                    .collect(),
            ),
        ),
    ])
}

/// The streamer thread: every [`WATCH_TICK`] it sends each due
/// subscription an incremental frame built from the telemetry ring.
/// Frames go through [`Session::send`] — the same never-blocking
/// outbound buffer as responses — so a subscriber that stops reading is
/// killed by the stall sweep or backlog cap exactly like any other slow
/// peer, without the streamer (or anyone else) ever blocking on it.
fn streamer_loop(inner: &Arc<Inner>) {
    let m = server_metrics();
    loop {
        thread::sleep(WATCH_TICK);
        if inner.draining() {
            return;
        }
        let now = Instant::now();
        let mut watchers = inner.watchers.lock().unwrap_or_else(|p| p.into_inner());
        let mut dead: Vec<u64> = Vec::new();
        for (id, sub) in watchers.iter_mut() {
            if sub.session.is_dead() {
                dead.push(*id);
                continue;
            }
            if now < sub.next_due {
                continue;
            }
            let frame = timeseries::global_series().frame_since(sub.last_tick, &sub.patterns);
            sub.seq += 1;
            sub.last_tick = frame.tick;
            sub.next_due = now + sub.interval;
            sub.session.send(&ok_response(
                sub.request_id,
                watch_frame_json(&frame, sub.seq),
            ));
            m.watch_frames.inc();
            if sub.session.is_dead() {
                dead.push(*id);
            }
        }
        for id in dead {
            watchers.remove(&id);
            m.watch_subscribers.add(-1);
            m.watch_dropped.inc();
        }
    }
}

fn worker_loop(inner: &Arc<Inner>, worker_idx: usize) {
    let m = server_metrics();
    // Per-worker utilization counters, plus the pool-wide aggregates:
    // Δbusy / (Δbusy + Δidle) over a ring window is the utilization the
    // dashboards show.
    let r = ccdb_obs::global();
    let w_busy = r.counter(&format!("ccdb_server_worker{worker_idx}_busy_ns_total"));
    let w_idle = r.counter(&format!("ccdb_server_worker{worker_idx}_idle_ns_total"));
    let mut idle_since = Instant::now();
    while let Some(job) = inner.queue.pop(worker_idx) {
        let idle_ns = idle_since.elapsed().as_nanos() as u64;
        w_idle.add(idle_ns);
        m.workers_idle_ns.add(idle_ns);
        m.workers_busy.inc();
        let busy_start = Instant::now();
        m.queue_depth.set(inner.queue.len() as i64);
        let queue_ns = Instant::now().duration_since(job.admitted).as_nanos() as u64;
        run_request(inner, job, queue_ns);
        let busy_ns = busy_start.elapsed().as_nanos() as u64;
        w_busy.add(busy_ns);
        m.workers_busy_ns.add(busy_ns);
        m.workers_busy.dec();
        idle_since = Instant::now();
    }
}

/// Executes one admitted request end to end — handler dispatch, phase
/// attribution, flight record, response — on whichever thread calls it:
/// a worker (passing the measured queue wait) or the event loop's inline
/// fast path (`queue_ns == 0`; the request never saw the queue, and its
/// timeline says so).
fn run_request(inner: &Arc<Inner>, job: Job, queue_ns: u64) {
    let m = server_metrics();
    let Job {
        request,
        session,
        admitted,
        first_byte,
        recv_ns,
        parse_ns,
    } = job;

    // A client-stamped trace id continues the client's trace tree into
    // the server span, bypassing the sampler; otherwise the span is
    // subject to normal sampling.
    let mut span = match request.trace {
        Some(t) => ccdb_obs::trace::span_in_trace("server.request", TraceId(t)),
        None => ccdb_obs::trace::span("server.request"),
    };
    if let Some(s) = span.as_mut() {
        if let Some(verb) = crate::metrics::VERBS.iter().find(|v| **v == request.verb) {
            s.str("verb", verb);
        }
        s.u64("session", session.id);
    }

    let handle_start = Instant::now();
    let wait0_lock = lockprobe::thread_lock_wait_ns();
    let wait0_snap = lockprobe::thread_snapshot_wait_ns();
    let (response, outcome) = if request.verb == "shutdown" {
        inner.begin_shutdown();
        (
            ok_response(request.id, Json::String("draining".into())),
            "ok",
        )
    } else {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            handle_verb(
                &inner.store,
                &inner.catalog,
                &inner.ctx,
                &inner.txns,
                session.id,
                &request.verb,
                &request.params,
                inner.cfg.debug_verbs,
            )
        }));
        match outcome {
            Ok(Ok(result)) => (ok_response(request.id, result), "ok"),
            Ok(Err((kind, msg))) => (err_response(request.id, kind, &msg), kind.as_str()),
            Err(_) => {
                m.internal_errors.inc();
                (
                    err_response(
                        request.id,
                        ErrorKind::Internal,
                        "request handler panicked; see server logs",
                    ),
                    ErrorKind::Internal.as_str(),
                )
            }
        }
    };
    let handled = Instant::now();
    let handler_ns = handled.duration_since(handle_start).as_nanos() as u64;
    // Store-lock wait is charged to this thread by the lock probe,
    // split by mode: exclusive master-lock + txn-lock wait becomes the
    // `lock` phase, shared snapshot-pin wait the `snapshot` phase. The
    // deltas across the handler are this request's numbers (clamped:
    // sampled hold clocks can't overrun the handler time).
    let lock_ns = lockprobe::thread_lock_wait_ns()
        .saturating_sub(wait0_lock)
        .min(handler_ns);
    let snapshot_ns = lockprobe::thread_snapshot_wait_ns()
        .saturating_sub(wait0_snap)
        .min(handler_ns - lock_ns);
    let handle_ns = handler_ns - lock_ns - snapshot_ns;

    let payload = session.encode(&response);
    let serialized = Instant::now();
    let serialize_ns = serialized.duration_since(handled).as_nanos() as u64;
    session.send_bytes(&payload);
    let write_ns = serialized.elapsed().as_nanos() as u64;

    let total_ns = first_byte.elapsed().as_nanos() as u64;
    let phases = [
        recv_ns,
        parse_ns,
        queue_ns,
        snapshot_ns,
        lock_ns,
        handle_ns,
        serialize_ns,
        write_ns,
    ];
    for (h, ns) in m.phase_all.iter().zip(phases) {
        h.observe(ns);
    }
    m.phase_all_total.observe(total_ns);
    if let Some(vp) = m.verb_phases(&request.verb) {
        for (h, ns) in vp.phases.iter().zip(phases) {
            h.observe(ns);
        }
        vp.total.observe(total_ns);
    }
    ccdb_obs::flight::record(FlightRecord {
        verb: request.verb,
        outcome: outcome.into(),
        end_unix_ns: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0),
        total_ns,
        phases,
        trace: request.trace,
        session: session.id,
        proto: session.proto(),
    });
    m.request_latency
        .observe(admitted.elapsed().as_nanos() as u64);
    drop(span);
}
