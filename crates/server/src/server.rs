//! The TCP server: acceptor + per-connection readers + worker pool.
//!
//! ```text
//!            accept            frames              bounded queue
//!  clients ─────────▶ acceptor ──────▶ reader (1/conn) ─────▶ workers (N)
//!                                        │   admission: full ⇒ Overloaded │
//!                                        ▼                                ▼
//!                                   per-conn session          SharedStore (RwLock:
//!                                   state + write half         readers ∥, writers ×)
//! ```
//!
//! Production-shaping behaviors, in one place:
//!
//! - **Admission control**: readers push parsed requests into a
//!   [`BoundedQueue`]; at capacity the request is answered `Overloaded`
//!   immediately — offered load beyond capacity costs one response, never
//!   unbounded memory.
//! - **Idle/read timeouts**: a connection that sends nothing for the
//!   configured window is closed (counted in `ccdb_server_idle_closed_total`).
//! - **Malformed-frame hardening**: oversized length prefixes are refused
//!   before any allocation, truncated frames and bad JSON/versions are
//!   counted and answered (or the connection dropped) without panicking.
//! - **Panic isolation**: a handler panic is caught in the worker, answered
//!   as an `internal` error, and the worker keeps serving — one bad request
//!   cannot take down the server.
//! - **Graceful shutdown**: draining stops admission, lets queued requests
//!   finish and their responses flush, then unblocks and joins every
//!   thread.

use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use ccdb_core::lockprobe;
use ccdb_core::schema::Catalog;
use ccdb_core::shared::SharedStore;
use ccdb_obs::flight::FlightRecord;
use ccdb_obs::TraceId;
use serde_json::Value as Json;

use crate::handler::{handle_verb, ServerContext};
use crate::metrics::server_metrics;
use crate::proto::{
    err_response, ok_response, read_frame_timed, write_frame, ErrorKind, FrameError, Request,
    MAX_FRAME_BYTES,
};
use crate::queue::{BoundedQueue, PushError};

/// Server tuning knobs. `Default` is sized for tests and small
/// deployments; the CLI exposes the production-relevant ones as flags.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (`:0` for an ephemeral port).
    pub addr: String,
    /// Worker threads executing requests against the store.
    pub workers: usize,
    /// Bounded request-queue capacity (admission control).
    pub queue_depth: usize,
    /// Per-frame payload cap in bytes.
    pub max_frame_bytes: usize,
    /// Close connections idle longer than this.
    pub idle_timeout: Duration,
    /// Enable test-only verbs (`boom`); never set in production.
    pub debug_verbs: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_depth: 64,
            max_frame_bytes: MAX_FRAME_BYTES,
            idle_timeout: Duration::from_secs(30),
            debug_verbs: false,
        }
    }
}

/// Per-connection session state (the paper's "designer at a workstation").
struct Session {
    id: u64,
    peer: String,
    /// Exclusive write half; workers serialize whole frames through it so
    /// concurrent responses to one pipelined client never interleave.
    writer: Mutex<TcpStream>,
    requests: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    started: Instant,
}

impl Session {
    fn info_json(&self) -> Json {
        Json::Object(vec![
            ("session".into(), Json::UInt(self.id)),
            ("peer".into(), Json::String(self.peer.clone())),
            (
                "requests".into(),
                Json::UInt(self.requests.load(Ordering::Relaxed)),
            ),
            (
                "bytes_in".into(),
                Json::UInt(self.bytes_in.load(Ordering::Relaxed)),
            ),
            (
                "bytes_out".into(),
                Json::UInt(self.bytes_out.load(Ordering::Relaxed)),
            ),
            (
                "uptime_ms".into(),
                Json::UInt(self.started.elapsed().as_millis() as u64),
            ),
        ])
    }

    /// Writes one response frame (serialized, byte-counted). Write errors
    /// are swallowed: the peer may have gone away, which is its problem.
    fn send(&self, response: &Json) {
        self.send_bytes(response.to_json_string().as_bytes());
    }

    /// Writes one already-serialized response frame. Split from [`send`]
    /// so the worker can time serialization and the socket write as
    /// separate phases.
    fn send_bytes(&self, payload: &[u8]) {
        let mut w = self.writer.lock().unwrap_or_else(|p| p.into_inner());
        if write_frame(&mut *w, payload).is_ok() {
            self.bytes_out
                .fetch_add(payload.len() as u64, Ordering::Relaxed);
            server_metrics().bytes_out.add(payload.len() as u64);
        }
    }
}

/// A unit of admitted work: request + the session to answer, plus the
/// reader-side phase timings already banked for it.
struct Job {
    request: Request,
    session: Arc<Session>,
    admitted: Instant,
    /// When the frame's first byte arrived — origin of the phase timeline.
    first_byte: Instant,
    /// First byte to complete frame, ns.
    recv_ns: u64,
    /// JSON parse + envelope validation, ns.
    parse_ns: u64,
}

struct Inner {
    cfg: ServerConfig,
    store: SharedStore,
    catalog: Catalog,
    ctx: ServerContext,
    queue: BoundedQueue<Job>,
    draining: AtomicBool,
    drain_cv: (Mutex<bool>, Condvar),
    sessions: Mutex<HashMap<u64, Arc<Session>>>,
    next_session: AtomicU64,
    reader_handles: Mutex<Vec<JoinHandle<()>>>,
    local_addr: SocketAddr,
}

impl Inner {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Flips the server into draining mode and wakes the acceptor.
    fn begin_shutdown(&self) {
        if self.draining.swap(true, Ordering::SeqCst) {
            return; // already draining
        }
        let (lock, cv) = &self.drain_cv;
        *lock.lock().unwrap_or_else(|p| p.into_inner()) = true;
        cv.notify_all();
        // Unblock the acceptor's blocking accept().
        let _ = TcpStream::connect(self.local_addr);
    }
}

/// A handle that can trigger shutdown from any thread (used by the CLI's
/// signalless smoke flow: a client sends the `shutdown` verb).
#[derive(Clone)]
pub struct ServerHandle {
    inner: Arc<Inner>,
}

impl ServerHandle {
    /// Starts draining; returns immediately.
    pub fn begin_shutdown(&self) {
        self.inner.begin_shutdown();
    }
}

/// A running server. Dropping it without [`Server::shutdown`] leaks the
/// threads until process exit; call `shutdown` (or `run_until_shutdown`)
/// for a clean stop.
pub struct Server {
    inner: Arc<Inner>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the acceptor and worker pool, and returns immediately.
    pub fn start(cfg: ServerConfig, store: SharedStore) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let catalog = store.read(|st| st.catalog().clone());
        let ctx = ServerContext {
            started: Instant::now(),
            workers: cfg.workers.max(1),
            queue_depth: cfg.queue_depth,
            rescache_shards: store.read(|st| st.resolution_cache_shards()),
        };
        let inner = Arc::new(Inner {
            queue: BoundedQueue::new(cfg.queue_depth),
            cfg,
            store,
            catalog,
            ctx,
            draining: AtomicBool::new(false),
            drain_cv: (Mutex::new(false), Condvar::new()),
            sessions: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(1),
            reader_handles: Mutex::new(Vec::new()),
            local_addr,
        });

        let workers = (0..inner.cfg.workers.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        let acceptor = {
            let inner = Arc::clone(&inner);
            thread::spawn(move || accept_loop(&listener, &inner))
        };
        Ok(Server {
            inner,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (useful with an ephemeral `:0` bind).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr
    }

    /// A cloneable shutdown trigger.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Live session count.
    pub fn session_count(&self) -> usize {
        self.inner
            .sessions
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .len()
    }

    /// Blocks until some client/handle triggers shutdown, then drains and
    /// joins everything. This is what `ccdb serve` sits in.
    pub fn run_until_shutdown(mut self) {
        {
            let (lock, cv) = &self.inner.drain_cv;
            let mut fired = lock.lock().unwrap_or_else(|p| p.into_inner());
            while !*fired {
                fired = cv.wait(fired).unwrap_or_else(|p| p.into_inner());
            }
        }
        self.drain_and_join();
    }

    /// Triggers shutdown and performs the full drain (see module docs).
    pub fn shutdown(mut self) {
        self.inner.begin_shutdown();
        self.drain_and_join();
    }

    fn drain_and_join(&mut self) {
        // 1. Acceptor exits (woken by begin_shutdown's self-connect).
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // 2. Stop admission; queued jobs still drain. Workers run each
        //    remaining job, write its response, then exit.
        self.inner.queue.close();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // 3. Every response is flushed; now unblock readers stuck in
        //    read() and join them.
        let sessions: Vec<Arc<Session>> = {
            let map = self
                .inner
                .sessions
                .lock()
                .unwrap_or_else(|p| p.into_inner());
            map.values().cloned().collect()
        };
        for s in sessions {
            let w = s.writer.lock().unwrap_or_else(|p| p.into_inner());
            let _ = w.shutdown(Shutdown::Both);
        }
        let handles: Vec<JoinHandle<()>> = {
            let mut v = self
                .inner
                .reader_handles
                .lock()
                .unwrap_or_else(|p| p.into_inner());
            v.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, inner: &Arc<Inner>) {
    loop {
        match listener.accept() {
            Ok((stream, peer)) => {
                if inner.draining() {
                    // The shutdown self-connect (or a late client): refuse.
                    drop(stream);
                    break;
                }
                spawn_reader(inner, stream, peer.to_string());
            }
            Err(_) => {
                if inner.draining() {
                    break;
                }
                // Transient accept error (e.g. EMFILE): keep serving.
                thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

fn spawn_reader(inner: &Arc<Inner>, stream: TcpStream, peer: String) {
    let m = server_metrics();
    m.connections.inc();
    let _ = stream.set_read_timeout(Some(inner.cfg.idle_timeout));
    let _ = stream.set_nodelay(true);
    let writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return, // dead on arrival
    };
    let id = inner.next_session.fetch_add(1, Ordering::Relaxed);
    let session = Arc::new(Session {
        id,
        peer,
        writer: Mutex::new(writer),
        requests: AtomicU64::new(0),
        bytes_in: AtomicU64::new(0),
        bytes_out: AtomicU64::new(0),
        started: Instant::now(),
    });
    inner
        .sessions
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .insert(id, Arc::clone(&session));
    m.sessions_active.add(1);

    let inner2 = Arc::clone(inner);
    let handle = thread::spawn(move || {
        reader_loop(&inner2, stream, &session);
        inner2
            .sessions
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .remove(&session.id);
        server_metrics().sessions_active.add(-1);
    });
    inner
        .reader_handles
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .push(handle);
}

fn reader_loop(inner: &Arc<Inner>, mut stream: TcpStream, session: &Arc<Session>) {
    let m = server_metrics();
    loop {
        let (payload, first_byte) = match read_frame_timed(&mut stream, inner.cfg.max_frame_bytes) {
            Ok(p) => p,
            Err(FrameError::Closed) => return,
            Err(FrameError::Truncated) => {
                // Peer died mid-frame; nothing to answer on a broken stream.
                m.malformed.inc();
                return;
            }
            Err(FrameError::TooLarge(n)) => {
                m.malformed.inc();
                session.send(&err_response(
                    0,
                    ErrorKind::Protocol,
                    &format!(
                        "frame of {n} bytes exceeds cap of {}",
                        inner.cfg.max_frame_bytes
                    ),
                ));
                return; // framing is unrecoverable: the body was never read
            }
            Err(e) if e.is_timeout() => {
                if !inner.draining() {
                    m.idle_closed.inc();
                }
                return;
            }
            Err(FrameError::Io(_)) => return,
        };
        let recv_ns = first_byte.elapsed().as_nanos() as u64;
        session
            .bytes_in
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        m.bytes_in.add(payload.len() as u64);

        let parse_start = Instant::now();
        let request = match Request::parse(&payload) {
            Ok(r) => r,
            Err(msg) => {
                // Framing is intact; answer and keep the connection.
                m.malformed.inc();
                session.send(&err_response(0, ErrorKind::Protocol, &msg));
                continue;
            }
        };
        let parse_ns = parse_start.elapsed().as_nanos() as u64;
        m.requests.inc();
        if let Some(c) = m.verb_counter(&request.verb) {
            c.inc();
        }
        session.requests.fetch_add(1, Ordering::Relaxed);

        // Session introspection never touches the store or the queue.
        if request.verb == "session" {
            session.send(&ok_response(request.id, session.info_json()));
            continue;
        }
        if inner.draining() {
            session.send(&err_response(
                request.id,
                ErrorKind::Shutdown,
                "server is draining",
            ));
            continue;
        }
        let id = request.id;
        let job = Job {
            request,
            session: Arc::clone(session),
            admitted: Instant::now(),
            first_byte,
            recv_ns,
            parse_ns,
        };
        match inner.queue.push(job) {
            Ok(()) => m.queue_depth.set(inner.queue.len() as i64),
            Err(PushError::Full(job)) => {
                m.overloaded.inc();
                job.session.send(&err_response(
                    id,
                    ErrorKind::Overloaded,
                    &format!(
                        "request queue full (depth {}); back off and retry",
                        inner.cfg.queue_depth
                    ),
                ));
            }
            Err(PushError::Closed(job)) => {
                job.session
                    .send(&err_response(id, ErrorKind::Shutdown, "server is draining"));
            }
        }
    }
}

fn worker_loop(inner: &Arc<Inner>) {
    let m = server_metrics();
    while let Some(job) = inner.queue.pop() {
        m.queue_depth.set(inner.queue.len() as i64);
        let popped = Instant::now();
        let Job {
            request,
            session,
            admitted,
            first_byte,
            recv_ns,
            parse_ns,
        } = job;
        let queue_ns = popped.duration_since(admitted).as_nanos() as u64;

        // A client-stamped trace id continues the client's trace tree into
        // the server span, bypassing the sampler; otherwise the span is
        // subject to normal sampling.
        let mut span = match request.trace {
            Some(t) => ccdb_obs::trace::span_in_trace("server.request", TraceId(t)),
            None => ccdb_obs::trace::span("server.request"),
        };
        if let Some(s) = span.as_mut() {
            if let Some(verb) = crate::metrics::VERBS.iter().find(|v| **v == request.verb) {
                s.str("verb", verb);
            }
            s.u64("session", session.id);
        }

        let handle_start = Instant::now();
        let wait0 = lockprobe::thread_lock_wait_ns();
        let (response, outcome) = if request.verb == "shutdown" {
            inner.begin_shutdown();
            (
                ok_response(request.id, Json::String("draining".into())),
                "ok",
            )
        } else {
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                handle_verb(
                    &inner.store,
                    &inner.catalog,
                    &inner.ctx,
                    &request.verb,
                    &request.params,
                    inner.cfg.debug_verbs,
                )
            }));
            match outcome {
                Ok(Ok(result)) => (ok_response(request.id, result), "ok"),
                Ok(Err((kind, msg))) => (err_response(request.id, kind, &msg), kind.as_str()),
                Err(_) => {
                    m.internal_errors.inc();
                    (
                        err_response(
                            request.id,
                            ErrorKind::Internal,
                            "request handler panicked; see server logs",
                        ),
                        ErrorKind::Internal.as_str(),
                    )
                }
            }
        };
        let handled = Instant::now();
        let handler_ns = handled.duration_since(handle_start).as_nanos() as u64;
        // Store-lock wait is charged to this thread by the lock probe;
        // the delta across the handler is this request's `lock` phase
        // (clamped: sampled hold clocks can't overrun the handler time).
        let lock_ns = lockprobe::thread_lock_wait_ns()
            .saturating_sub(wait0)
            .min(handler_ns);
        let handle_ns = handler_ns - lock_ns;

        let payload = response.to_json_string().into_bytes();
        let serialized = Instant::now();
        let serialize_ns = serialized.duration_since(handled).as_nanos() as u64;
        session.send_bytes(&payload);
        let write_ns = serialized.elapsed().as_nanos() as u64;

        let total_ns = first_byte.elapsed().as_nanos() as u64;
        let phases = [
            recv_ns,
            parse_ns,
            queue_ns,
            lock_ns,
            handle_ns,
            serialize_ns,
            write_ns,
        ];
        for (h, ns) in m.phase_all.iter().zip(phases) {
            h.observe(ns);
        }
        m.phase_all_total.observe(total_ns);
        if let Some(vp) = m.verb_phases(&request.verb) {
            for (h, ns) in vp.phases.iter().zip(phases) {
                h.observe(ns);
            }
            vp.total.observe(total_ns);
        }
        ccdb_obs::flight::record(FlightRecord {
            verb: request.verb,
            outcome: outcome.into(),
            end_unix_ns: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0),
            total_ns,
            phases,
            trace: request.trace,
            session: session.id,
        });
        m.request_latency
            .observe(admitted.elapsed().as_nanos() as u64);
        drop(span);
    }
}
