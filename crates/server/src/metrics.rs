//! Process-global `ccdb_server_*` metrics, registered in the
//! [`ccdb_obs::global`] registry so they show up in the `stats`/`metrics`
//! verbs and the Prometheus scrape alongside the core/txn/storage series.

use std::sync::{Arc, OnceLock};

use ccdb_obs::flight::PHASE_NAMES;
use ccdb_obs::metrics::{HOP_BUCKETS, LATENCY_BUCKETS_NS};
use ccdb_obs::{Counter, Gauge, Histogram};

/// The verbs the per-verb request counters are pre-registered for: the
/// wire protocol's verb table, so the metrics surface and the v2 verb-id
/// space can never drift apart.
pub(crate) use crate::proto::VERBS;

/// Phase histograms for one verb: the eight per-phase series plus the
/// first-byte-to-response-written total.
pub(crate) struct VerbPhases {
    /// `ccdb_server_phase_<verb>_<phase>_ns`, indexed like [`PHASE_NAMES`].
    pub phases: [Arc<Histogram>; 8],
    /// `ccdb_server_phase_<verb>_total_ns`.
    pub total: Arc<Histogram>,
}

pub(crate) struct ServerMetrics {
    /// `ccdb_server_connections_total` — accepted TCP connections.
    pub connections: Arc<Counter>,
    /// `ccdb_server_sessions_active` — live sessions right now.
    pub sessions_active: Arc<Gauge>,
    /// `ccdb_server_sessions_v1` — live sessions speaking v1 JSON.
    pub sessions_v1: Arc<Gauge>,
    /// `ccdb_server_sessions_v2` — live sessions that negotiated v2 binary.
    pub sessions_v2: Arc<Gauge>,
    /// `ccdb_server_requests_total` — every parsed request, any outcome.
    pub requests: Arc<Counter>,
    /// `ccdb_server_requests_<verb>_total`, parallel to [`VERBS`].
    pub requests_by_verb: Vec<(&'static str, Arc<Counter>)>,
    /// `ccdb_server_bytes_in_total` — request payload bytes read.
    pub bytes_in: Arc<Counter>,
    /// `ccdb_server_bytes_out_total` — response payload bytes written.
    pub bytes_out: Arc<Counter>,
    /// `ccdb_server_overloaded_total` — requests refused at admission.
    pub overloaded: Arc<Counter>,
    /// `ccdb_server_malformed_total` — bad frames / JSON / versions.
    pub malformed: Arc<Counter>,
    /// `ccdb_server_internal_errors_total` — handler panics survived.
    pub internal_errors: Arc<Counter>,
    /// `ccdb_server_idle_closed_total` — connections closed by idle timeout.
    pub idle_closed: Arc<Counter>,
    /// `ccdb_server_write_stalled_closed_total` — connections killed
    /// because the peer stopped draining buffered responses.
    pub write_stalled_closed: Arc<Counter>,
    /// `ccdb_server_queue_depth` — jobs waiting for a worker.
    pub queue_depth: Arc<Gauge>,
    /// `ccdb_server_wakeup_latency_ns` — enqueue→dequeue delta measured
    /// by the admission queue itself: how long an admitted job sat before
    /// a worker picked it up. Distinct from the per-request `queue` phase
    /// number (which is attributed into the phase timeline); this one is
    /// the scheduler's own histogram, sampled into the telemetry ring as
    /// the "before" baseline for admission/MVCC work.
    pub wakeup_latency: Arc<Histogram>,
    /// `ccdb_server_inline_requests_total` — read-only requests executed
    /// on the event-loop thread against a pinned snapshot, skipping the
    /// queue hop entirely (queue phase = 0 in their timeline).
    pub inline_requests: Arc<Counter>,
    /// `ccdb_server_inline_fallback_total` — inline-eligible requests
    /// enqueued anyway because the queue was deep or the loop's
    /// per-iteration inline budget was spent.
    pub inline_fallback: Arc<Counter>,
    /// `ccdb_server_steals_total` — jobs a worker took from another
    /// worker's shard (per-worker counts are
    /// `ccdb_server_worker<i>_steals_total`).
    pub steals: Arc<Counter>,
    /// `ccdb_server_eventloop_iterations_total` — event-loop wakeups, any
    /// backend (`ccdb top` derives the iteration rate from its delta).
    pub eventloop_iterations: Arc<Counter>,
    /// `ccdb_server_workers_busy` — workers executing a job right now.
    pub workers_busy: Arc<Gauge>,
    /// `ccdb_server_workers_busy_ns_total` — ns spent in handlers, summed
    /// over all workers (utilization numerator).
    pub workers_busy_ns: Arc<Counter>,
    /// `ccdb_server_workers_idle_ns_total` — ns spent parked on the queue,
    /// summed over all workers (utilization denominator with busy).
    pub workers_idle_ns: Arc<Counter>,
    /// `ccdb_server_watch_subscribers` — live `watch` subscriptions.
    pub watch_subscribers: Arc<Gauge>,
    /// `ccdb_server_watch_frames_total` — telemetry frames streamed.
    pub watch_frames: Arc<Counter>,
    /// `ccdb_server_watch_dropped_total` — subscriptions removed because
    /// the subscriber's write half died (stall-killed or disconnected).
    pub watch_dropped: Arc<Counter>,
    /// `ccdb_server_request_latency_ns` — admission to response written.
    pub request_latency: Arc<Histogram>,
    /// `ccdb_server_batch_frames_total` — `batch` frames handled.
    pub batch_frames: Arc<Counter>,
    /// `ccdb_server_batch_subrequests_total` — sub-requests carried inside
    /// batch frames.
    pub batch_subrequests: Arc<Counter>,
    /// `ccdb_server_batch_size` — sub-requests per batch frame.
    pub batch_size: Arc<Histogram>,
    /// `ccdb_server_phase_all_<phase>_ns` — per-phase time across every
    /// verb (the `ccdb top` phase bar).
    pub phase_all: [Arc<Histogram>; 8],
    /// `ccdb_server_phase_all_total_ns` — first byte read to response
    /// written, across every verb.
    pub phase_all_total: Arc<Histogram>,
    /// Per-verb phase histograms, parallel to [`VERBS`].
    pub phase_by_verb: Vec<(&'static str, VerbPhases)>,
}

impl ServerMetrics {
    /// The per-verb counter, or the catch-all `requests` counter for verbs
    /// outside [`VERBS`] (unknown verbs are still counted once globally).
    pub fn verb_counter(&self, verb: &str) -> Option<&Arc<Counter>> {
        self.requests_by_verb
            .iter()
            .find(|(name, _)| *name == verb)
            .map(|(_, c)| c)
    }

    /// The phase histograms for `verb`, when it is a known verb.
    pub fn verb_phases(&self, verb: &str) -> Option<&VerbPhases> {
        self.phase_by_verb
            .iter()
            .find(|(name, _)| *name == verb)
            .map(|(_, p)| p)
    }
}

pub(crate) fn server_metrics() -> &'static ServerMetrics {
    static METRICS: OnceLock<ServerMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = ccdb_obs::global();
        ServerMetrics {
            connections: r.counter("ccdb_server_connections_total"),
            sessions_active: r.gauge("ccdb_server_sessions_active"),
            sessions_v1: r.gauge("ccdb_server_sessions_v1"),
            sessions_v2: r.gauge("ccdb_server_sessions_v2"),
            requests: r.counter("ccdb_server_requests_total"),
            requests_by_verb: VERBS
                .iter()
                .map(|v| (*v, r.counter(&format!("ccdb_server_requests_{v}_total"))))
                .collect(),
            bytes_in: r.counter("ccdb_server_bytes_in_total"),
            bytes_out: r.counter("ccdb_server_bytes_out_total"),
            overloaded: r.counter("ccdb_server_overloaded_total"),
            malformed: r.counter("ccdb_server_malformed_total"),
            internal_errors: r.counter("ccdb_server_internal_errors_total"),
            idle_closed: r.counter("ccdb_server_idle_closed_total"),
            write_stalled_closed: r.counter("ccdb_server_write_stalled_closed_total"),
            queue_depth: r.gauge("ccdb_server_queue_depth"),
            wakeup_latency: r.histogram("ccdb_server_wakeup_latency_ns", LATENCY_BUCKETS_NS),
            inline_requests: r.counter("ccdb_server_inline_requests_total"),
            inline_fallback: r.counter("ccdb_server_inline_fallback_total"),
            steals: r.counter("ccdb_server_steals_total"),
            eventloop_iterations: r.counter("ccdb_server_eventloop_iterations_total"),
            workers_busy: r.gauge("ccdb_server_workers_busy"),
            workers_busy_ns: r.counter("ccdb_server_workers_busy_ns_total"),
            workers_idle_ns: r.counter("ccdb_server_workers_idle_ns_total"),
            watch_subscribers: r.gauge("ccdb_server_watch_subscribers"),
            watch_frames: r.counter("ccdb_server_watch_frames_total"),
            watch_dropped: r.counter("ccdb_server_watch_dropped_total"),
            request_latency: r.histogram("ccdb_server_request_latency_ns", LATENCY_BUCKETS_NS),
            batch_frames: r.counter("ccdb_server_batch_frames_total"),
            batch_subrequests: r.counter("ccdb_server_batch_subrequests_total"),
            batch_size: r.histogram("ccdb_server_batch_size", HOP_BUCKETS),
            phase_all: PHASE_NAMES.map(|phase| {
                r.histogram(
                    &format!("ccdb_server_phase_all_{phase}_ns"),
                    LATENCY_BUCKETS_NS,
                )
            }),
            phase_all_total: r.histogram("ccdb_server_phase_all_total_ns", LATENCY_BUCKETS_NS),
            phase_by_verb: VERBS
                .iter()
                .map(|v| {
                    (
                        *v,
                        VerbPhases {
                            phases: PHASE_NAMES.map(|phase| {
                                r.histogram(
                                    &format!("ccdb_server_phase_{v}_{phase}_ns"),
                                    LATENCY_BUCKETS_NS,
                                )
                            }),
                            total: r.histogram(
                                &format!("ccdb_server_phase_{v}_total_ns"),
                                LATENCY_BUCKETS_NS,
                            ),
                        },
                    )
                })
                .collect(),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verb_counters_cover_every_verb() {
        let m = server_metrics();
        for v in VERBS {
            assert!(m.verb_counter(v).is_some(), "no counter for {v}");
        }
        assert!(m.verb_counter("no_such_verb").is_none());
    }

    #[test]
    fn series_appear_in_the_global_registry() {
        let _ = server_metrics();
        let text = ccdb_obs::global().render_prometheus();
        for series in [
            "ccdb_server_requests_total",
            "ccdb_server_requests_attr_total",
            "ccdb_server_sessions_v1",
            "ccdb_server_sessions_v2",
            "ccdb_server_overloaded_total",
            "ccdb_server_write_stalled_closed_total",
            "ccdb_server_queue_depth",
            "ccdb_server_request_latency_ns",
            "ccdb_server_requests_batch_total",
            "ccdb_server_batch_frames_total",
            "ccdb_server_batch_size",
            "ccdb_server_phase_all_lock_ns",
            "ccdb_server_phase_attr_total_ns",
            "ccdb_server_phase_set_attr_queue_ns",
            "ccdb_server_requests_flight_total",
            "ccdb_server_wakeup_latency_ns",
            "ccdb_server_inline_requests_total",
            "ccdb_server_inline_fallback_total",
            "ccdb_server_steals_total",
            "ccdb_server_eventloop_iterations_total",
            "ccdb_server_workers_busy",
            "ccdb_server_workers_busy_ns_total",
            "ccdb_server_workers_idle_ns_total",
            "ccdb_server_watch_subscribers",
            "ccdb_server_watch_frames_total",
            "ccdb_server_requests_telemetry_total",
            "ccdb_server_requests_watch_total",
        ] {
            assert!(text.contains(series), "missing {series}");
        }
    }

    #[test]
    fn phase_histograms_cover_every_verb_and_phase() {
        let m = server_metrics();
        for v in VERBS {
            let p = m
                .verb_phases(v)
                .unwrap_or_else(|| panic!("no phases for {v}"));
            assert_eq!(p.phases.len(), PHASE_NAMES.len());
        }
        assert!(m.verb_phases("no_such_verb").is_none());
    }
}
