//! The ccdb wire protocol: length-prefixed JSON frames.
//!
//! A frame is a 4-byte big-endian payload length followed by that many
//! bytes of UTF-8 JSON. Both directions use the same framing.
//!
//! **Request** objects carry `{"v": 1, "id": <u64>, "verb": "<name>",
//! "params": {...}}`. `v` is the protocol version and must equal
//! [`PROTOCOL_VERSION`]; `id` is chosen by the client and echoed verbatim
//! in the response so pipelined requests can be matched. An optional
//! `"trace": <u64>` field carries a client-chosen trace id: the server
//! opens its handling span inside that trace (bypassing the sampler), so
//! a client-side trace continues into the server's span tree.
//!
//! **Response** objects are `{"id": <u64>, "ok": true, "result": ...}` on
//! success and `{"id": <u64>, "ok": false, "error": {"kind": "...",
//! "message": "..."}}` on failure. The error `kind` is machine-matchable
//! ([`ErrorKind`]); `"overloaded"` in particular is the server's explicit
//! backpressure signal — the request was *rejected at admission*, not
//! queued, and the client should back off and retry.
//!
//! Attribute values travel in the serde encoding of
//! [`ccdb_core::Value`]: unit variants as strings (`"Missing"`),
//! data-carrying variants as single-key objects (`{"Int": 5}`,
//! `{"Point": {"x": 1, "y": 2}}`).

use std::io::{self, Read, Write};

use serde_json::Value as Json;

/// Version tag every request must carry; bumped on incompatible changes.
pub const PROTOCOL_VERSION: u64 = 1;

/// Default cap on a single frame's payload, in bytes. A length prefix
/// above the server's cap is answered with a `protocol` error and the
/// connection is closed *without reading the body* — a hostile or corrupt
/// prefix cannot make the server allocate.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Why reading a frame failed.
#[derive(Debug)]
pub enum FrameError {
    /// Clean end-of-stream at a frame boundary.
    Closed,
    /// The stream ended mid-prefix or mid-payload (truncated frame).
    Truncated,
    /// The length prefix exceeded the frame cap.
    TooLarge(usize),
    /// Underlying socket error (including read timeouts).
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Truncated => write!(f, "truncated frame"),
            FrameError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds cap"),
            FrameError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl FrameError {
    /// Whether this is a read timeout (idle connection), not a dead one.
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            FrameError::Io(e) if e.kind() == io::ErrorKind::WouldBlock
                || e.kind() == io::ErrorKind::TimedOut
        )
    }
}

/// Writes one frame: big-endian length prefix + payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame's payload, enforcing `max` on the length prefix.
///
/// EOF before the first prefix byte is a clean [`FrameError::Closed`];
/// EOF anywhere later is [`FrameError::Truncated`].
pub fn read_frame(r: &mut impl Read, max: usize) -> Result<Vec<u8>, FrameError> {
    read_frame_timed(r, max).map(|(payload, _)| payload)
}

/// [`read_frame`], additionally stamping the instant the *first* bytes of
/// the frame arrived. The server's `recv` phase is measured from that
/// stamp to frame completion — time spent blocked waiting for a client to
/// send anything at all (think time between requests) is not part of any
/// request and must not be charged to one.
pub fn read_frame_timed(
    r: &mut impl Read,
    max: usize,
) -> Result<(Vec<u8>, std::time::Instant), FrameError> {
    let mut prefix = [0u8; 4];
    let mut got = 0;
    let mut first_byte = None;
    while got < prefix.len() {
        match r.read(&mut prefix[got..]) {
            Ok(0) => {
                return Err(if got == 0 {
                    FrameError::Closed
                } else {
                    FrameError::Truncated
                })
            }
            Ok(n) => {
                if first_byte.is_none() {
                    first_byte = Some(std::time::Instant::now());
                }
                got += n;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > max {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len];
    let mut got = 0;
    while got < len {
        match r.read(&mut payload[got..]) {
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let first_byte = first_byte.unwrap_or_else(std::time::Instant::now);
    Ok((payload, first_byte))
}

/// Machine-matchable response error categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Malformed frame/JSON or unsupported protocol version.
    Protocol,
    /// Well-formed request with missing/invalid verb or parameters.
    BadRequest,
    /// Rejected at admission: the bounded request queue is full.
    Overloaded,
    /// The server is draining; no new requests are admitted.
    Shutdown,
    /// The store rejected the operation (a `CoreError`).
    Core,
    /// A handler panicked; the request died but the server did not.
    Internal,
}

impl ErrorKind {
    /// Wire string for this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Protocol => "protocol",
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::Shutdown => "shutdown",
            ErrorKind::Core => "core",
            ErrorKind::Internal => "internal",
        }
    }
}

/// A parsed request envelope.
#[derive(Debug, Clone)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// Operation name.
    pub verb: String,
    /// Verb parameters (an object; `{}` when absent).
    pub params: Json,
    /// Client-supplied trace id to continue server-side, if any.
    pub trace: Option<u64>,
}

impl Request {
    /// Serializes a request envelope.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("v".into(), Json::UInt(PROTOCOL_VERSION)),
            ("id".into(), Json::UInt(self.id)),
            ("verb".into(), Json::String(self.verb.clone())),
            ("params".into(), self.params.clone()),
        ];
        if let Some(t) = self.trace {
            fields.push(("trace".into(), Json::UInt(t)));
        }
        Json::Object(fields)
    }

    /// Parses and validates a request envelope (including the version
    /// check). The error string is safe to echo to the client.
    pub fn parse(payload: &[u8]) -> Result<Request, String> {
        let text = std::str::from_utf8(payload).map_err(|_| "payload is not UTF-8".to_string())?;
        let v: Json = serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e}"))?;
        let version = v
            .get("v")
            .and_then(Json::as_u64)
            .ok_or_else(|| "missing protocol version `v`".to_string())?;
        if version != PROTOCOL_VERSION {
            return Err(format!(
                "unsupported protocol version {version} (server speaks {PROTOCOL_VERSION})"
            ));
        }
        let id = v
            .get("id")
            .and_then(Json::as_u64)
            .ok_or_else(|| "missing request `id`".to_string())?;
        let verb = v
            .get("verb")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing `verb`".to_string())?
            .to_string();
        let params = v.get("params").cloned().unwrap_or(Json::Object(vec![]));
        let trace = v.get("trace").and_then(Json::as_u64);
        Ok(Request {
            id,
            verb,
            params,
            trace,
        })
    }
}

/// Builds a success response.
pub fn ok_response(id: u64, result: Json) -> Json {
    Json::Object(vec![
        ("id".into(), Json::UInt(id)),
        ("ok".into(), Json::Bool(true)),
        ("result".into(), result),
    ])
}

/// Builds an error response.
pub fn err_response(id: u64, kind: ErrorKind, message: &str) -> Json {
    Json::Object(vec![
        ("id".into(), Json::UInt(id)),
        ("ok".into(), Json::Bool(false)),
        (
            "error".into(),
            Json::Object(vec![
                ("kind".into(), Json::String(kind.as_str().into())),
                ("message".into(), Json::String(message.into())),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        assert_eq!(&buf[..4], &[0, 0, 0, 5]);
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r, 64).unwrap(), b"hello");
        assert!(matches!(read_frame(&mut r, 64), Err(FrameError::Closed)));
    }

    #[test]
    fn oversized_prefix_rejected_without_reading_body() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(1_000_000u32).to_be_bytes());
        let mut r = &buf[..];
        assert!(matches!(
            read_frame(&mut r, 1024),
            Err(FrameError::TooLarge(1_000_000))
        ));
    }

    #[test]
    fn truncated_payload_detected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(10u32).to_be_bytes());
        buf.extend_from_slice(b"abc");
        let mut r = &buf[..];
        assert!(matches!(read_frame(&mut r, 64), Err(FrameError::Truncated)));
        // Truncation inside the prefix itself.
        let short = [0u8, 0];
        assert!(matches!(
            read_frame(&mut &short[..], 64),
            Err(FrameError::Truncated)
        ));
    }

    #[test]
    fn request_roundtrip_and_version_check() {
        let req = Request {
            id: 9,
            verb: "attr".into(),
            params: Json::Object(vec![("obj".into(), Json::UInt(3))]),
            trace: None,
        };
        let bytes = serde_json::to_vec(&req.to_json()).unwrap();
        let back = Request::parse(&bytes).unwrap();
        assert_eq!(back.id, 9);
        assert_eq!(back.verb, "attr");
        assert_eq!(back.params.get("obj").and_then(Json::as_u64), Some(3));
        assert_eq!(back.trace, None);

        // A trace id survives the round trip; absent stays absent.
        let traced = Request {
            trace: Some(777),
            ..req
        };
        let bytes = serde_json::to_vec(&traced.to_json()).unwrap();
        assert_eq!(Request::parse(&bytes).unwrap().trace, Some(777));

        let bad = br#"{"v": 99, "id": 1, "verb": "ping"}"#;
        let err = Request::parse(bad).unwrap_err();
        assert!(err.contains("version 99"), "{err}");
        assert!(Request::parse(b"not json").is_err());
        assert!(Request::parse(br#"{"v": 1, "id": 1}"#).is_err());
    }

    #[test]
    fn response_shapes() {
        let ok = ok_response(4, Json::String("pong".into()));
        assert_eq!(ok.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(ok.get("id").and_then(Json::as_u64), Some(4));
        let err = err_response(4, ErrorKind::Overloaded, "queue full");
        assert_eq!(err.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            err.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str),
            Some("overloaded")
        );
    }
}
