//! The ccdb wire protocol: length-prefixed frames in two dialects.
//!
//! **v1 (JSON)**: a frame is a 4-byte big-endian payload length followed
//! by that many bytes of UTF-8 JSON. Both directions use the same
//! framing.
//!
//! **v2 (binary)**: same 4-byte length prefix, but the payload is a fixed
//! binary header (version byte, verb id / status byte, flags, request id,
//! optional trace id) followed by a length-delimited binary value
//! encoding ("bval") of the params/result. A connection opts into v2 by
//! sending the 4-byte [`HELLO_V2`] magic immediately after connect; the
//! server echoes it back as the ack. The magic's first byte (`0xCC`)
//! cannot collide with a legal v1 frame: v1 payloads cap at
//! [`MAX_FRAME_BYTES`] (1 MiB), so the first byte of every valid v1
//! length prefix is `0x00`. See DESIGN.md §10 for the layout.
//!
//! **Request** objects carry `{"v": 1, "id": <u64>, "verb": "<name>",
//! "params": {...}}`. `v` is the protocol version and must equal
//! [`PROTOCOL_VERSION`]; `id` is chosen by the client and echoed verbatim
//! in the response so pipelined requests can be matched. An optional
//! `"trace": <u64>` field carries a client-chosen trace id: the server
//! opens its handling span inside that trace (bypassing the sampler), so
//! a client-side trace continues into the server's span tree.
//!
//! **Response** objects are `{"id": <u64>, "ok": true, "result": ...}` on
//! success and `{"id": <u64>, "ok": false, "error": {"kind": "...",
//! "message": "..."}}` on failure. The error `kind` is machine-matchable
//! ([`ErrorKind`]); `"overloaded"` in particular is the server's explicit
//! backpressure signal — the request was *rejected at admission*, not
//! queued, and the client should back off and retry.
//!
//! Attribute values travel in the serde encoding of
//! [`ccdb_core::Value`]: unit variants as strings (`"Missing"`),
//! data-carrying variants as single-key objects (`{"Int": 5}`,
//! `{"Point": {"x": 1, "y": 2}}`).

use std::io::{self, Read, Write};

use serde_json::Value as Json;

/// Version tag every v1 request must carry; bumped on incompatible changes.
pub const PROTOCOL_VERSION: u64 = 1;

/// Version byte stamped into every v2 binary frame header.
pub const PROTOCOL_V2: u8 = 2;

/// The 4-byte magic a v2 client sends raw (unframed) immediately after
/// connect, and the server echoes back as the acceptance ack. Layout:
/// `0xCC 0xDB <version> 0x00`. A v1-pinned server answers the hello with
/// a v1 JSON `protocol` error instead of the ack.
pub const HELLO_V2: [u8; 4] = [0xCC, 0xDB, PROTOCOL_V2, 0x00];

/// Default cap on a single frame's payload, in bytes. A length prefix
/// above the server's cap is answered with a `protocol` error and the
/// connection is closed *without reading the body* — a hostile or corrupt
/// prefix cannot make the server allocate.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Why reading a frame failed.
#[derive(Debug)]
pub enum FrameError {
    /// Clean end-of-stream at a frame boundary.
    Closed,
    /// The stream ended mid-prefix or mid-payload (truncated frame).
    Truncated,
    /// The length prefix exceeded the frame cap.
    TooLarge(usize),
    /// Underlying socket error (including read timeouts).
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Truncated => write!(f, "truncated frame"),
            FrameError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds cap"),
            FrameError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl FrameError {
    /// Whether the platform reported a genuine read timeout
    /// (`TimedOut`) — the connection is idle, not dead.
    ///
    /// This used to also match `WouldBlock`, which conflated two
    /// meanings: on a *blocking* socket with `SO_RCVTIMEO`, Linux reports
    /// the timeout as `EAGAIN`/`WouldBlock`, but on a *nonblocking*
    /// socket the very same kind means "no data buffered yet" and the
    /// connection is very much alive. Under a readiness event loop that
    /// conflation reaps live connections, so the meanings are split:
    /// blocking `SO_RCVTIMEO` callers must check
    /// `is_timeout() || is_would_block()`, nonblocking callers treat
    /// [`is_would_block`] as "retry after the next readiness event" and
    /// leave idle detection to the event loop's own deadlines.
    ///
    /// [`is_would_block`]: FrameError::is_would_block
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            FrameError::Io(e) if e.kind() == io::ErrorKind::TimedOut
        )
    }

    /// Whether this is `WouldBlock`: on a nonblocking socket the kernel
    /// simply has no bytes right now and the read should be retried after
    /// the next readiness event; on a blocking socket with `SO_RCVTIMEO`,
    /// Linux uses this same kind for the idle timeout.
    pub fn is_would_block(&self) -> bool {
        matches!(
            self,
            FrameError::Io(e) if e.kind() == io::ErrorKind::WouldBlock
        )
    }
}

/// Writes one frame: big-endian length prefix + payload, coalesced into a
/// single `write_all` call. Issuing the prefix and payload as two
/// separate writes on a `TCP_NODELAY` socket can put the 4-byte prefix on
/// the wire as its own segment — one extra syscall and, at worst, one
/// extra packet per frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    let mut buf = Vec::with_capacity(4 + payload.len());
    buf.extend_from_slice(&len.to_be_bytes());
    buf.extend_from_slice(payload);
    w.write_all(&buf)?;
    w.flush()
}

/// Appends one frame (length prefix + payload) to `out` without any I/O.
/// The event loop and batched writers use this to build a single flush
/// buffer covering several responses.
pub fn append_frame(out: &mut Vec<u8>, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    out.extend_from_slice(&len.to_be_bytes());
    out.extend_from_slice(payload);
    Ok(())
}

/// Reads one frame's payload, enforcing `max` on the length prefix.
///
/// EOF before the first prefix byte is a clean [`FrameError::Closed`];
/// EOF anywhere later is [`FrameError::Truncated`].
pub fn read_frame(r: &mut impl Read, max: usize) -> Result<Vec<u8>, FrameError> {
    read_frame_timed(r, max).map(|(payload, _)| payload)
}

/// [`read_frame`], additionally stamping the instant the *first* bytes of
/// the frame arrived. The server's `recv` phase is measured from that
/// stamp to frame completion — time spent blocked waiting for a client to
/// send anything at all (think time between requests) is not part of any
/// request and must not be charged to one.
pub fn read_frame_timed(
    r: &mut impl Read,
    max: usize,
) -> Result<(Vec<u8>, std::time::Instant), FrameError> {
    let mut prefix = [0u8; 4];
    let mut got = 0;
    let mut first_byte = None;
    while got < prefix.len() {
        match r.read(&mut prefix[got..]) {
            Ok(0) => {
                return Err(if got == 0 {
                    FrameError::Closed
                } else {
                    FrameError::Truncated
                })
            }
            Ok(n) => {
                if first_byte.is_none() {
                    first_byte = Some(std::time::Instant::now());
                }
                got += n;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > max {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len];
    let mut got = 0;
    while got < len {
        match r.read(&mut payload[got..]) {
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let first_byte = first_byte.unwrap_or_else(std::time::Instant::now);
    Ok((payload, first_byte))
}

/// Machine-matchable response error categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Malformed frame/JSON or unsupported protocol version.
    Protocol,
    /// Well-formed request with missing/invalid verb or parameters.
    BadRequest,
    /// Rejected at admission: the bounded request queue is full.
    Overloaded,
    /// The server is draining; no new requests are admitted.
    Shutdown,
    /// The store rejected the operation (a `CoreError`).
    Core,
    /// A handler panicked; the request died but the server did not.
    Internal,
    /// Transaction conflict: a lock wait timed out or deadlocked, or
    /// commit-time first-committer-wins validation failed. The session's
    /// transaction has been aborted; the client should retry it.
    Conflict,
}

impl ErrorKind {
    /// Wire string for this kind (v1 JSON responses).
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Protocol => "protocol",
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::Shutdown => "shutdown",
            ErrorKind::Core => "core",
            ErrorKind::Internal => "internal",
            ErrorKind::Conflict => "conflict",
        }
    }

    /// Parses the v1 wire string back into a kind.
    pub fn from_wire(s: &str) -> Option<ErrorKind> {
        Some(match s {
            "protocol" => ErrorKind::Protocol,
            "bad_request" => ErrorKind::BadRequest,
            "overloaded" => ErrorKind::Overloaded,
            "shutdown" => ErrorKind::Shutdown,
            "core" => ErrorKind::Core,
            "internal" => ErrorKind::Internal,
            "conflict" => ErrorKind::Conflict,
            _ => return None,
        })
    }

    /// Status byte for v2 response headers (`0` is reserved for success).
    pub fn code(self) -> u8 {
        match self {
            ErrorKind::Protocol => 1,
            ErrorKind::BadRequest => 2,
            ErrorKind::Overloaded => 3,
            ErrorKind::Shutdown => 4,
            ErrorKind::Core => 5,
            ErrorKind::Internal => 6,
            ErrorKind::Conflict => 7,
        }
    }

    /// Inverse of [`code`](ErrorKind::code).
    pub fn from_code(code: u8) -> Option<ErrorKind> {
        Some(match code {
            1 => ErrorKind::Protocol,
            2 => ErrorKind::BadRequest,
            3 => ErrorKind::Overloaded,
            4 => ErrorKind::Shutdown,
            5 => ErrorKind::Core,
            6 => ErrorKind::Internal,
            7 => ErrorKind::Conflict,
            _ => return None,
        })
    }
}

/// A parsed request envelope.
#[derive(Debug, Clone)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// Operation name.
    pub verb: String,
    /// Verb parameters (an object; `{}` when absent).
    pub params: Json,
    /// Client-supplied trace id to continue server-side, if any.
    pub trace: Option<u64>,
}

impl Request {
    /// Serializes a request envelope.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("v".into(), Json::UInt(PROTOCOL_VERSION)),
            ("id".into(), Json::UInt(self.id)),
            ("verb".into(), Json::String(self.verb.clone())),
            ("params".into(), self.params.clone()),
        ];
        if let Some(t) = self.trace {
            fields.push(("trace".into(), Json::UInt(t)));
        }
        Json::Object(fields)
    }

    /// Parses and validates a request envelope (including the version
    /// check). The error string is safe to echo to the client.
    pub fn parse(payload: &[u8]) -> Result<Request, String> {
        let text = std::str::from_utf8(payload).map_err(|_| "payload is not UTF-8".to_string())?;
        let v: Json = serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e}"))?;
        let version = v
            .get("v")
            .and_then(Json::as_u64)
            .ok_or_else(|| "missing protocol version `v`".to_string())?;
        if version != PROTOCOL_VERSION {
            return Err(format!(
                "unsupported protocol version {version} (server speaks {PROTOCOL_VERSION})"
            ));
        }
        let id = v
            .get("id")
            .and_then(Json::as_u64)
            .ok_or_else(|| "missing request `id`".to_string())?;
        let verb = v
            .get("verb")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing `verb`".to_string())?
            .to_string();
        let params = v.get("params").cloned().unwrap_or(Json::Object(vec![]));
        let trace = v.get("trace").and_then(Json::as_u64);
        Ok(Request {
            id,
            verb,
            params,
            trace,
        })
    }
}

/// Builds a success response.
pub fn ok_response(id: u64, result: Json) -> Json {
    Json::Object(vec![
        ("id".into(), Json::UInt(id)),
        ("ok".into(), Json::Bool(true)),
        ("result".into(), result),
    ])
}

/// Builds an error response.
pub fn err_response(id: u64, kind: ErrorKind, message: &str) -> Json {
    Json::Object(vec![
        ("id".into(), Json::UInt(id)),
        ("ok".into(), Json::Bool(false)),
        (
            "error".into(),
            Json::Object(vec![
                ("kind".into(), Json::String(kind.as_str().into())),
                ("message".into(), Json::String(message.into())),
            ]),
        ),
    ])
}

// ---------------------------------------------------------------------------
// Protocol v2: binary framing
// ---------------------------------------------------------------------------

/// Every public verb the server speaks, in wire-id order: the v2 verb id
/// is `index + 1`. Metrics pre-register per-verb counters from this list.
pub const VERBS: &[&str] = &[
    "ping",
    "session",
    "create",
    "attr",
    "set_attr",
    "bind",
    "unbind",
    "select",
    "check_all",
    "effective",
    "explain",
    "stats",
    "metrics",
    "flight",
    "batch",
    "shutdown",
    // Appended in PR 8 — ids must stay append-only so v1↔v2 verb ids
    // never drift between releases.
    "telemetry",
    "watch",
    // Appended in PR 9: wire transactions (ids 19, 20, 21).
    "begin",
    "commit",
    "abort",
];

/// Debug-only verb id (the `boom` panic probe, enabled by
/// `ServerConfig::debug_verbs`). Kept far from the public range so new
/// public verbs never collide with it.
const VERB_ID_BOOM: u8 = 0xF0;

/// The v2 verb id for `verb`, when it has one.
pub fn verb_id(verb: &str) -> Option<u8> {
    if verb == "boom" {
        return Some(VERB_ID_BOOM);
    }
    VERBS.iter().position(|v| *v == verb).map(|i| (i + 1) as u8)
}

/// The verb named by a v2 verb id, when the id is assigned.
pub fn verb_name(id: u8) -> Option<&'static str> {
    if id == VERB_ID_BOOM {
        return Some("boom");
    }
    (id as usize)
        .checked_sub(1)
        .and_then(|i| VERBS.get(i).copied())
}

/// v2 header flag: an 8-byte trace id follows the fixed header.
pub const V2_FLAG_TRACE: u8 = 0x01;

/// Fixed v2 header length: version, kind, flags, reserved, 8-byte id.
pub const V2_HEADER_LEN: usize = 12;

// bval type tags. Strings/arrays/objects carry a u32 big-endian
// count/length; objects repeat (key-string-without-tag, value).
const BV_NULL: u8 = 0x00;
const BV_FALSE: u8 = 0x01;
const BV_TRUE: u8 = 0x02;
const BV_INT: u8 = 0x03; // i64 BE
const BV_UINT: u8 = 0x04; // u64 BE
const BV_FLOAT: u8 = 0x05; // f64 bits BE
const BV_STR: u8 = 0x06;
const BV_ARRAY: u8 = 0x07;
const BV_OBJECT: u8 = 0x08;

/// Nesting cap for bval decoding; deeper input is hostile, not data.
const BV_MAX_DEPTH: u32 = 64;

/// Appends the bval encoding of `v` to `out`.
pub fn bval_encode(v: &Json, out: &mut Vec<u8>) {
    match v {
        Json::Null => out.push(BV_NULL),
        Json::Bool(false) => out.push(BV_FALSE),
        Json::Bool(true) => out.push(BV_TRUE),
        Json::Int(i) => {
            out.push(BV_INT);
            out.extend_from_slice(&i.to_be_bytes());
        }
        Json::UInt(u) => {
            out.push(BV_UINT);
            out.extend_from_slice(&u.to_be_bytes());
        }
        Json::Float(f) => {
            out.push(BV_FLOAT);
            out.extend_from_slice(&f.to_bits().to_be_bytes());
        }
        Json::String(s) => {
            out.push(BV_STR);
            bval_put_str(out, s);
        }
        Json::Array(items) => {
            out.push(BV_ARRAY);
            out.extend_from_slice(&(items.len() as u32).to_be_bytes());
            for item in items {
                bval_encode(item, out);
            }
        }
        Json::Object(pairs) => {
            out.push(BV_OBJECT);
            out.extend_from_slice(&(pairs.len() as u32).to_be_bytes());
            for (k, val) in pairs {
                bval_put_str(out, k);
                bval_encode(val, out);
            }
        }
    }
}

fn bval_put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_be_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Streaming bval reader over a borrowed byte slice. Counts claimed by
/// the input never drive allocation directly: capacities are clamped to
/// what the remaining bytes could actually hold, so a hostile
/// `count = u32::MAX` header fails on truncation instead of reserving
/// gigabytes.
struct BvalReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BvalReader<'a> {
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.remaining() < n {
            return Err("truncated bval payload".to_string());
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes)
            .map(str::to_string)
            .map_err(|_| "bval string is not UTF-8".to_string())
    }

    fn value(&mut self, depth: u32) -> Result<Json, String> {
        if depth > BV_MAX_DEPTH {
            return Err("bval nesting too deep".to_string());
        }
        match self.u8()? {
            BV_NULL => Ok(Json::Null),
            BV_FALSE => Ok(Json::Bool(false)),
            BV_TRUE => Ok(Json::Bool(true)),
            BV_INT => Ok(Json::Int(i64::from_be_bytes(
                self.take(8)?.try_into().unwrap(),
            ))),
            BV_UINT => Ok(Json::UInt(self.u64()?)),
            BV_FLOAT => Ok(Json::Float(f64::from_bits(self.u64()?))),
            BV_STR => Ok(Json::String(self.str()?)),
            BV_ARRAY => {
                let count = self.u32()? as usize;
                // Each element costs at least its one tag byte.
                let mut items = Vec::with_capacity(count.min(self.remaining()));
                for _ in 0..count {
                    items.push(self.value(depth + 1)?);
                }
                Ok(Json::Array(items))
            }
            BV_OBJECT => {
                let count = self.u32()? as usize;
                // Each pair costs at least 4 (key length) + 1 (tag) bytes.
                let mut pairs = Vec::with_capacity(count.min(self.remaining() / 5));
                for _ in 0..count {
                    let key = self.str()?;
                    let val = self.value(depth + 1)?;
                    pairs.push((key, val));
                }
                Ok(Json::Object(pairs))
            }
            tag => Err(format!("unknown bval tag 0x{tag:02x}")),
        }
    }
}

/// Decodes one bval value, requiring the input to be fully consumed.
pub fn bval_decode(bytes: &[u8]) -> Result<Json, String> {
    let mut r = BvalReader { bytes, pos: 0 };
    let v = r.value(0)?;
    if r.remaining() != 0 {
        return Err(format!("{} trailing bytes after bval value", r.remaining()));
    }
    Ok(v)
}

impl Request {
    /// Encodes this request as a v2 frame payload (header + bval params).
    /// Fails only for verbs without an assigned v2 id.
    pub fn encode_v2(&self) -> Result<Vec<u8>, String> {
        let verb =
            verb_id(&self.verb).ok_or_else(|| format!("verb `{}` has no v2 id", self.verb))?;
        let mut out = Vec::with_capacity(V2_HEADER_LEN + 16);
        out.push(PROTOCOL_V2);
        out.push(verb);
        out.push(if self.trace.is_some() {
            V2_FLAG_TRACE
        } else {
            0
        });
        out.push(0);
        out.extend_from_slice(&self.id.to_be_bytes());
        if let Some(t) = self.trace {
            out.extend_from_slice(&t.to_be_bytes());
        }
        bval_encode(&self.params, &mut out);
        Ok(out)
    }

    /// Parses a v2 frame payload into a request envelope. All validation
    /// (version byte, verb id, header length, params shape) happens
    /// against the borrowed slice before anything request-sized is
    /// allocated; the error string is safe to echo to the client.
    pub fn parse_v2(payload: &[u8]) -> Result<Request, String> {
        if payload.len() < V2_HEADER_LEN {
            return Err(format!(
                "v2 header needs {V2_HEADER_LEN} bytes, got {}",
                payload.len()
            ));
        }
        if payload[0] != PROTOCOL_V2 {
            return Err(format!(
                "unsupported protocol version {} (connection negotiated {PROTOCOL_V2})",
                payload[0]
            ));
        }
        let verb = verb_name(payload[1])
            .ok_or_else(|| format!("unknown v2 verb id {}", payload[1]))?
            .to_string();
        let flags = payload[2];
        if flags & !V2_FLAG_TRACE != 0 {
            return Err(format!("unknown v2 flags 0x{flags:02x}"));
        }
        let id = u64::from_be_bytes(payload[4..12].try_into().unwrap());
        let mut rest = &payload[V2_HEADER_LEN..];
        let trace = if flags & V2_FLAG_TRACE != 0 {
            if rest.len() < 8 {
                return Err("v2 header truncated before trace id".to_string());
            }
            let t = u64::from_be_bytes(rest[..8].try_into().unwrap());
            rest = &rest[8..];
            Some(t)
        } else {
            None
        };
        let params = if rest.is_empty() {
            Json::Object(vec![])
        } else {
            match bval_decode(rest)? {
                Json::Null => Json::Object(vec![]),
                obj @ Json::Object(_) => obj,
                other => {
                    return Err(format!(
                        "v2 params must be an object, got {}",
                        other.type_name()
                    ))
                }
            }
        };
        Ok(Request {
            id,
            verb,
            params,
            trace,
        })
    }
}

/// Encodes a response envelope (the same [`ok_response`]/[`err_response`]
/// shape v1 serializes as JSON) into a v2 frame payload: fixed header
/// with a status byte (`0` = ok, else [`ErrorKind::code`]), then the bval
/// result (ok) or bval error-message string (error). Malformed envelopes
/// degrade to an `internal` error frame rather than panicking a worker.
pub fn encode_response_v2(resp: &Json) -> Vec<u8> {
    let id = resp.get("id").and_then(Json::as_u64).unwrap_or(0);
    let ok = resp.get("ok").and_then(Json::as_bool).unwrap_or(false);
    let mut out = Vec::with_capacity(V2_HEADER_LEN + 16);
    out.push(PROTOCOL_V2);
    if ok {
        out.push(0);
        out.push(0);
        out.push(0);
        out.extend_from_slice(&id.to_be_bytes());
        bval_encode(resp.get("result").unwrap_or(&Json::Null), &mut out);
    } else {
        let kind = resp
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str)
            .and_then(ErrorKind::from_wire)
            .unwrap_or(ErrorKind::Internal);
        let message = resp
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(Json::as_str)
            .unwrap_or("malformed error envelope");
        out.push(kind.code());
        out.push(0);
        out.push(0);
        out.extend_from_slice(&id.to_be_bytes());
        bval_encode(&Json::String(message.to_string()), &mut out);
    }
    out
}

/// Decodes a v2 response frame payload back into the v1-shaped envelope
/// (`{"id", "ok", "result"}` / `{"id", "ok", "error": {...}}`), so
/// clients can share one response-matching path across both protocols.
pub fn decode_response_v2(payload: &[u8]) -> Result<Json, String> {
    if payload.len() < V2_HEADER_LEN {
        return Err(format!(
            "v2 response header needs {V2_HEADER_LEN} bytes, got {}",
            payload.len()
        ));
    }
    if payload[0] != PROTOCOL_V2 {
        return Err(format!("unsupported response version {}", payload[0]));
    }
    let status = payload[1];
    let id = u64::from_be_bytes(payload[4..12].try_into().unwrap());
    let body = bval_decode(&payload[V2_HEADER_LEN..])?;
    if status == 0 {
        return Ok(ok_response(id, body));
    }
    let kind =
        ErrorKind::from_code(status).ok_or_else(|| format!("unknown v2 status code {status}"))?;
    let message = body.as_str().unwrap_or("").to_string();
    Ok(err_response(id, kind, &message))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        assert_eq!(&buf[..4], &[0, 0, 0, 5]);
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r, 64).unwrap(), b"hello");
        assert!(matches!(read_frame(&mut r, 64), Err(FrameError::Closed)));
    }

    #[test]
    fn oversized_prefix_rejected_without_reading_body() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(1_000_000u32).to_be_bytes());
        let mut r = &buf[..];
        assert!(matches!(
            read_frame(&mut r, 1024),
            Err(FrameError::TooLarge(1_000_000))
        ));
    }

    #[test]
    fn truncated_payload_detected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(10u32).to_be_bytes());
        buf.extend_from_slice(b"abc");
        let mut r = &buf[..];
        assert!(matches!(read_frame(&mut r, 64), Err(FrameError::Truncated)));
        // Truncation inside the prefix itself.
        let short = [0u8, 0];
        assert!(matches!(
            read_frame(&mut &short[..], 64),
            Err(FrameError::Truncated)
        ));
    }

    #[test]
    fn request_roundtrip_and_version_check() {
        let req = Request {
            id: 9,
            verb: "attr".into(),
            params: Json::Object(vec![("obj".into(), Json::UInt(3))]),
            trace: None,
        };
        let bytes = serde_json::to_vec(&req.to_json()).unwrap();
        let back = Request::parse(&bytes).unwrap();
        assert_eq!(back.id, 9);
        assert_eq!(back.verb, "attr");
        assert_eq!(back.params.get("obj").and_then(Json::as_u64), Some(3));
        assert_eq!(back.trace, None);

        // A trace id survives the round trip; absent stays absent.
        let traced = Request {
            trace: Some(777),
            ..req
        };
        let bytes = serde_json::to_vec(&traced.to_json()).unwrap();
        assert_eq!(Request::parse(&bytes).unwrap().trace, Some(777));

        let bad = br#"{"v": 99, "id": 1, "verb": "ping"}"#;
        let err = Request::parse(bad).unwrap_err();
        assert!(err.contains("version 99"), "{err}");
        assert!(Request::parse(b"not json").is_err());
        assert!(Request::parse(br#"{"v": 1, "id": 1}"#).is_err());
    }

    #[test]
    fn response_shapes() {
        let ok = ok_response(4, Json::String("pong".into()));
        assert_eq!(ok.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(ok.get("id").and_then(Json::as_u64), Some(4));
        let err = err_response(4, ErrorKind::Overloaded, "queue full");
        assert_eq!(err.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            err.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str),
            Some("overloaded")
        );
    }

    #[test]
    fn timeout_and_would_block_are_distinct() {
        let wb = FrameError::Io(io::Error::new(io::ErrorKind::WouldBlock, "no data"));
        let to = FrameError::Io(io::Error::new(io::ErrorKind::TimedOut, "idle"));
        assert!(wb.is_would_block() && !wb.is_timeout());
        assert!(to.is_timeout() && !to.is_would_block());
        assert!(!FrameError::Closed.is_timeout());
        assert!(!FrameError::Closed.is_would_block());
    }

    #[test]
    fn write_frame_is_a_single_write_call() {
        // A writer that counts write() calls: the prefix and payload must
        // arrive coalesced (one syscall on a real socket).
        struct Counting {
            calls: usize,
            bytes: Vec<u8>,
        }
        impl Write for Counting {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.calls += 1;
                self.bytes.extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut w = Counting {
            calls: 0,
            bytes: Vec::new(),
        };
        write_frame(&mut w, b"payload").unwrap();
        assert_eq!(w.calls, 1, "prefix and payload must be one write");
        assert_eq!(&w.bytes[..4], &[0, 0, 0, 7]);
        assert_eq!(&w.bytes[4..], b"payload");
    }

    #[test]
    fn verb_ids_are_stable_and_bijective() {
        for (i, v) in VERBS.iter().enumerate() {
            let id = verb_id(v).unwrap_or_else(|| panic!("no id for {v}"));
            assert_eq!(id, (i + 1) as u8);
            assert_eq!(verb_name(id), Some(*v));
        }
        assert_eq!(verb_id("boom"), Some(VERB_ID_BOOM));
        assert_eq!(verb_name(VERB_ID_BOOM), Some("boom"));
        assert_eq!(verb_id("no_such_verb"), None);
        assert_eq!(verb_name(0), None);
        assert_eq!(verb_name(99), None);
    }

    #[test]
    fn bval_roundtrips_every_shape() {
        let v = Json::Object(vec![
            ("null".into(), Json::Null),
            ("t".into(), Json::Bool(true)),
            ("f".into(), Json::Bool(false)),
            ("neg".into(), Json::Int(-42)),
            ("big".into(), Json::UInt(u64::MAX)),
            ("pi".into(), Json::Float(3.25)),
            ("s".into(), Json::String("héllo\n".into())),
            (
                "arr".into(),
                Json::Array(vec![Json::Int(1), Json::String("x".into()), Json::Null]),
            ),
            (
                "nested".into(),
                Json::Object(vec![("k".into(), Json::Array(vec![]))]),
            ),
        ]);
        let mut buf = Vec::new();
        bval_encode(&v, &mut buf);
        assert_eq!(bval_decode(&buf).unwrap(), v);
    }

    #[test]
    fn bval_rejects_hostile_input_without_huge_allocation() {
        // Array claiming u32::MAX elements with no bytes behind it.
        let mut buf = vec![BV_ARRAY];
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        assert!(bval_decode(&buf).unwrap_err().contains("truncated"));

        // Object claiming a huge pair count.
        let mut buf = vec![BV_OBJECT];
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        assert!(bval_decode(&buf).is_err());

        // String length running past the end.
        let mut buf = vec![BV_STR];
        buf.extend_from_slice(&1_000_000u32.to_be_bytes());
        buf.push(b'x');
        assert!(bval_decode(&buf).is_err());

        // Nesting bomb: deeper than BV_MAX_DEPTH arrays of one element.
        let mut buf = Vec::new();
        for _ in 0..(BV_MAX_DEPTH + 2) {
            buf.push(BV_ARRAY);
            buf.extend_from_slice(&1u32.to_be_bytes());
        }
        buf.push(BV_NULL);
        assert!(bval_decode(&buf).unwrap_err().contains("deep"));

        // Unknown tag and trailing garbage.
        assert!(bval_decode(&[0x7F]).unwrap_err().contains("tag"));
        assert!(bval_decode(&[BV_NULL, BV_NULL])
            .unwrap_err()
            .contains("trailing"));
        assert!(bval_decode(&[]).is_err());
    }

    #[test]
    fn v2_request_roundtrip() {
        let req = Request {
            id: 0xDEAD_BEEF_u64,
            verb: "set_attr".into(),
            params: Json::Object(vec![
                ("obj".into(), Json::UInt(3)),
                ("name".into(), Json::String("X".into())),
                (
                    "value".into(),
                    Json::Object(vec![("Int".into(), Json::Int(12))]),
                ),
            ]),
            trace: None,
        };
        let payload = req.encode_v2().unwrap();
        assert_eq!(payload[0], PROTOCOL_V2);
        assert_eq!(payload[1], verb_id("set_attr").unwrap());
        let back = Request::parse_v2(&payload).unwrap();
        assert_eq!(back.id, req.id);
        assert_eq!(back.verb, "set_attr");
        assert_eq!(back.params, req.params);
        assert_eq!(back.trace, None);

        // Trace id flag + extension bytes.
        let traced = Request {
            trace: Some(0x1234_5678),
            ..req
        };
        let payload = traced.encode_v2().unwrap();
        assert_eq!(payload[2] & V2_FLAG_TRACE, V2_FLAG_TRACE);
        assert_eq!(
            Request::parse_v2(&payload).unwrap().trace,
            Some(0x1234_5678)
        );
    }

    #[test]
    fn v2_request_rejects_malformed_headers() {
        // Too short for the fixed header.
        assert!(Request::parse_v2(&[PROTOCOL_V2, 1, 0]).is_err());
        // Wrong version byte.
        let mut p = Request {
            id: 1,
            verb: "ping".into(),
            params: Json::Object(vec![]),
            trace: None,
        }
        .encode_v2()
        .unwrap();
        p[0] = 9;
        assert!(Request::parse_v2(&p).unwrap_err().contains("version 9"));
        // Unknown verb id.
        p[0] = PROTOCOL_V2;
        p[1] = 0xEE;
        assert!(Request::parse_v2(&p).unwrap_err().contains("verb id"));
        // Unknown flag bits.
        p[1] = 1;
        p[2] = 0x80;
        assert!(Request::parse_v2(&p).unwrap_err().contains("flags"));
        // Trace flag set but no trace bytes.
        let mut short = vec![PROTOCOL_V2, 1, V2_FLAG_TRACE, 0];
        short.extend_from_slice(&7u64.to_be_bytes());
        assert!(Request::parse_v2(&short).unwrap_err().contains("trace"));
        // Params must be an object.
        let mut bad = vec![PROTOCOL_V2, 1, 0, 0];
        bad.extend_from_slice(&7u64.to_be_bytes());
        bad.push(BV_INT);
        bad.extend_from_slice(&5i64.to_be_bytes());
        assert!(Request::parse_v2(&bad).unwrap_err().contains("object"));
    }

    #[test]
    fn v2_response_roundtrip_both_outcomes() {
        let ok = ok_response(42, Json::Array(vec![Json::UInt(1), Json::UInt(2)]));
        let payload = encode_response_v2(&ok);
        assert_eq!(payload[1], 0);
        assert_eq!(decode_response_v2(&payload).unwrap(), ok);

        let err = err_response(43, ErrorKind::Overloaded, "queue full");
        let payload = encode_response_v2(&err);
        assert_eq!(payload[1], ErrorKind::Overloaded.code());
        assert_eq!(decode_response_v2(&payload).unwrap(), err);

        // Every kind survives the code round trip.
        for kind in [
            ErrorKind::Protocol,
            ErrorKind::BadRequest,
            ErrorKind::Overloaded,
            ErrorKind::Shutdown,
            ErrorKind::Core,
            ErrorKind::Internal,
            ErrorKind::Conflict,
        ] {
            assert_eq!(ErrorKind::from_code(kind.code()), Some(kind));
            assert_eq!(ErrorKind::from_wire(kind.as_str()), Some(kind));
        }
        assert_eq!(ErrorKind::from_code(0), None);
        assert_eq!(ErrorKind::from_code(200), None);
    }

    #[test]
    fn hello_magic_cannot_be_a_v1_prefix() {
        // Any valid v1 frame's first prefix byte is 0x00 (cap is 1 MiB),
        // so 0xCC unambiguously marks the v2 hello.
        const { assert!(MAX_FRAME_BYTES < (1 << 24)) };
        assert_eq!(HELLO_V2[0], 0xCC);
        assert_eq!(HELLO_V2[2], PROTOCOL_V2);
    }
}
