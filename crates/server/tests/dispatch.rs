//! Dispatch-tier correctness: the inline fast path may only ever serve
//! read-only snapshot verbs, and turning it on must not change any
//! transactional semantics. Metric deltas prove routing (every inline
//! execution increments `ccdb_server_inline_requests_total`; a request
//! that takes the worker queue does not), and the same workload must
//! round-trip identically on both readiness backends.

mod common;

use std::time::Duration;

use ccdb_core::{Surrogate, Value};
use ccdb_server::{Client, PollBackend, ServerConfig};
use serde_json::Value as Json;

/// Extracts a scalar value from a Prometheus-text scrape.
fn scrape_value(text: &str, name: &str) -> Option<u64> {
    text.lines()
        .find(|l| l.split_whitespace().next() == Some(name))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse::<f64>().ok())
        .map(|v| v as u64)
}

fn inline_count(c: &mut Client) -> u64 {
    scrape_value(&c.metrics().unwrap(), "ccdb_server_inline_requests_total").unwrap_or(0)
}

fn connect(server: &ccdb_server::Server) -> Client {
    let c = Client::connect(server.local_addr()).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    c
}

fn seed(c: &mut Client) -> (Surrogate, Surrogate) {
    let interface = c.create("If", &[("X", Value::Int(7))]).unwrap();
    let imp = c.create("Impl", &[]).unwrap();
    c.bind("AllOf_If", interface, imp).unwrap();
    (interface, imp)
}

/// Reads inline; writes and batches carrying writes never do. The metric
/// delta is the proof: a `metrics` scrape is itself inline, but its own
/// increment lands after the response is serialized, so between two
/// scrapes on one connection the first scrape contributes exactly one
/// count and nothing else hides in the delta.
#[test]
fn read_verbs_inline_while_writes_always_take_the_queue() {
    let server = common::start(ServerConfig::default());
    let mut c = connect(&server);
    let (interface, imp) = seed(&mut c);

    let before_reads = inline_count(&mut c);
    for _ in 0..20 {
        assert_eq!(c.attr(imp, "X").unwrap(), Value::Int(7));
    }
    let after_reads = inline_count(&mut c);
    assert!(
        after_reads - before_reads >= 20,
        "resolved reads on an idle server must run inline: \
         delta {} (before {before_reads}, after {after_reads})",
        after_reads - before_reads
    );

    // 20 transmitter writes: none may inline. The only admissible delta
    // is the prior scrape's own deferred increment.
    for n in 0..20i64 {
        c.set_attr(interface, "X", Value::Int(n)).unwrap();
    }
    let after_writes = inline_count(&mut c);
    assert!(
        after_writes - after_reads <= 1,
        "writes leaked onto the inline path: delta {}",
        after_writes - after_reads
    );

    // A batch frame is worker-only even when every sub-request is a
    // read, and certainly when it carries a write.
    let subs = vec![
        (
            "set_attr",
            serde_json::json!({
                "obj": interface.0, "name": "X",
                "value": serde_json::to_value(&Value::Int(99)),
            }),
        ),
        ("attr", serde_json::json!({"obj": imp.0, "name": "X"})),
    ];
    for slot in c.batch(subs).unwrap() {
        slot.unwrap();
    }
    let after_batch = inline_count(&mut c);
    assert!(
        after_batch - after_writes <= 1,
        "batch frames leaked onto the inline path: delta {}",
        after_batch - after_writes
    );

    // Cross-session visibility: a second session's inline read sees the
    // batch's committed write immediately — the pinned snapshot is the
    // current one, not a stale one.
    let mut other = connect(&server);
    assert_eq!(other.attr(imp, "X").unwrap(), Value::Int(99));
    server.shutdown();
}

/// A session inside a transaction loses inline eligibility entirely: its
/// reads must go to workers so they resolve against the transaction's
/// own uncommitted writes (the pinned snapshot can't see those), while
/// other sessions' inline reads keep seeing the committed state.
#[test]
fn in_txn_reads_bypass_the_inline_path_and_see_uncommitted_writes() {
    let server = common::start(ServerConfig {
        txn_lock_timeout: Duration::from_millis(200),
        ..ServerConfig::default()
    });
    let mut a = connect(&server);
    let mut b = connect(&server);
    let (interface, imp) = seed(&mut a);

    a.begin().unwrap();
    a.set_attr(interface, "X", Value::Int(42)).unwrap();

    // A's in-transaction reads observe its own uncommitted write…
    let before = inline_count(&mut b);
    for _ in 0..10 {
        assert_eq!(a.attr(imp, "X").unwrap(), Value::Int(42));
    }
    let after = inline_count(&mut b);
    assert!(
        after - before <= 1,
        "in-txn reads leaked onto the inline path: delta {}",
        after - before
    );

    a.commit().unwrap();
    // …and after commit the other session's inline read sees it.
    assert_eq!(b.attr(imp, "X").unwrap(), Value::Int(42));
    server.shutdown();
}

/// §6 lock inheritance is untouched by the fast path: a transactional
/// composite read still S-locks the resolution chain, a competing
/// transactional write still conflicts, and the first committer wins.
#[test]
fn first_committer_wins_holds_with_the_fast_path_on() {
    let server = common::start(ServerConfig {
        txn_lock_timeout: Duration::from_millis(200),
        ..ServerConfig::default()
    });
    let mut a = connect(&server);
    let mut b = connect(&server);
    let (interface, imp) = seed(&mut a);

    a.begin().unwrap();
    assert_eq!(a.attr(imp, "X").unwrap(), Value::Int(7));

    b.begin().unwrap();
    let err = b.set_attr(interface, "X", Value::Int(0)).unwrap_err();
    assert!(err.is_conflict(), "expected conflict, got {err}");

    // A (the first committer) lands; inline reads then see the state A
    // committed, not anything of B's.
    a.commit().unwrap();
    assert_eq!(b.attr(imp, "X").unwrap(), Value::Int(7));
    server.shutdown();
}

/// The identical workload round-trips on both backends, and the resolved
/// backend is what the config asked for (epoll is skipped where the
/// platform lacks it rather than silently substituted).
#[test]
fn both_backends_serve_the_same_workload() {
    let mut backends = vec![PollBackend::Poll];
    if polling::epoll_supported() {
        backends.push(PollBackend::Epoll);
    }
    for requested in backends {
        let server = common::start(ServerConfig {
            poll_backend: requested,
            ..ServerConfig::default()
        });
        let expect = match requested {
            PollBackend::Poll => "poll",
            PollBackend::Epoll => "epoll",
            PollBackend::Auto => unreachable!(),
        };
        assert_eq!(server.backend(), expect);

        let mut c = connect(&server);
        let info = c.ping_info().unwrap();
        assert_eq!(
            info.get("backend").and_then(Json::as_str),
            Some(expect),
            "server_info must report the active backend: {info:?}"
        );

        let (interface, imp) = seed(&mut c);
        for n in 0..50i64 {
            c.set_attr(interface, "X", Value::Int(n)).unwrap();
            assert_eq!(
                c.attr(imp, "X").unwrap(),
                Value::Int(n),
                "[{expect}] write not visible through the binding"
            );
        }
        server.shutdown();
    }
}
