//! Streaming telemetry over the wire: `watch` subscriptions must deliver
//! incremental frames in both protocol dialects, the `telemetry` verb
//! must answer windowed queries from the server-side ring, and a
//! subscriber that stops draining its socket must be killed by the
//! write-stall path without perturbing any other session.

mod common;

use std::io::Read;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ccdb_core::Value;
use ccdb_server::{Client, ServerConfig};
use serde_json::Value as Json;

/// Every server in this binary samples fast: the telemetry sampler is
/// process-global and the first server to start it fixes the cadence, so
/// all tests here agree on 25 ms.
fn fast_cfg() -> ServerConfig {
    ServerConfig {
        sample_interval_ms: 25,
        ..ServerConfig::default()
    }
}

/// Extracts a scalar value from a Prometheus-text scrape.
fn scrape_value(text: &str, name: &str) -> Option<u64> {
    text.lines()
        .find(|l| l.split_whitespace().next() == Some(name))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse::<f64>().ok())
        .map(|v| v as u64)
}

#[test]
fn watch_streams_incremental_frames_over_both_dialects() {
    let server = common::start(fast_cfg());
    let addr = server.local_addr();

    for proto in [1u8, 2u8] {
        let mut sub = Client::connect_proto(addr, proto).unwrap();
        sub.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

        // Traffic on a second connection so counters actually move.
        let stop = Arc::new(AtomicBool::new(false));
        let pinger = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
                while !stop.load(Ordering::Relaxed) {
                    c.ping().unwrap();
                    std::thread::sleep(Duration::from_millis(2));
                }
            })
        };

        let ack = sub.watch(50, &["ccdb_server_*"]).unwrap();
        assert_eq!(
            ack.get("watching").and_then(Json::as_bool),
            Some(true),
            "[v{proto}] bad ack: {ack:?}"
        );
        assert_eq!(ack.get("interval_ms").and_then(Json::as_u64), Some(50));

        let mut last_tick = 0u64;
        let mut last_seq = 0u64;
        let mut saw_requests_delta = false;
        for i in 0..4 {
            let f = sub.recv_watch_frame().unwrap();
            assert_eq!(
                f.get("watch").and_then(Json::as_bool),
                Some(true),
                "[v{proto}] frame {i} is not a watch frame: {f:?}"
            );
            let seq = f.get("seq").and_then(Json::as_u64).unwrap();
            let tick = f.get("tick").and_then(Json::as_u64).unwrap();
            assert!(seq > last_seq, "[v{proto}] seq not increasing");
            assert!(tick >= last_tick, "[v{proto}] tick went backwards");
            last_seq = seq;
            last_tick = tick;
            let series = f.get("series").and_then(Json::as_array).unwrap();
            // The pinger guarantees the request counter moves between
            // frames, so the incremental encoding must carry it.
            if series.iter().any(|s| {
                s.get("name").and_then(Json::as_str) == Some("ccdb_server_requests_total")
                    && s.get("delta").and_then(Json::as_u64).unwrap_or(0) > 0
            }) {
                saw_requests_delta = true;
            }
        }
        assert!(
            saw_requests_delta,
            "[v{proto}] no frame carried a ccdb_server_requests_total delta"
        );

        // Cancel: frames already in flight may precede the ack.
        sub.watch_stop().ok();
        stop.store(true, Ordering::Relaxed);
        pinger.join().unwrap();
    }
    server.shutdown();
}

#[test]
fn telemetry_verb_answers_windowed_queries_from_the_ring() {
    let server = common::start(fast_cfg());
    let addr = server.local_addr();
    let mut c = Client::connect(addr).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

    // Generate load, then poll until the sampler has visibly ticked and
    // the windowed per-verb digest covers the pings.
    let deadline = Instant::now() + Duration::from_secs(10);
    let t = loop {
        for _ in 0..20 {
            // delay_ms (even 0) makes the ping ineligible for the inline
            // fast path, so this load exercises the worker queue and
            // populates the scheduler's wakeup histogram below.
            c.request("ping", serde_json::json!({"delay_ms": 0}))
                .unwrap();
        }
        let t = c.telemetry(serde_json::json!({"points": 16})).unwrap();
        let tick = t.get("tick").and_then(Json::as_u64).unwrap_or(0);
        let has_ping_digest = t
            .get("verbs")
            .and_then(Json::as_array)
            .is_some_and(|verbs| {
                verbs.iter().any(|v| {
                    v.get("verb").and_then(Json::as_str) == Some("ping")
                        && v.get("count").and_then(Json::as_u64).unwrap_or(0) > 0
                        && v.get("p50_ns").and_then(Json::as_f64).is_some()
                })
            });
        // Inline pings never touch the queue, so the wakeup digest only
        // fills in once the sampler ticks past this loop's delayed
        // (queued) pings — wait for that too.
        let has_wakeup = t
            .get("wakeup")
            .and_then(|w| w.get("count"))
            .and_then(Json::as_u64)
            .unwrap_or(0)
            > 0;
        if tick >= 2 && has_ping_digest && has_wakeup {
            break t;
        }
        assert!(
            Instant::now() < deadline,
            "sampler never produced a ping digest: {t:?}"
        );
        std::thread::sleep(Duration::from_millis(30));
    };

    assert_eq!(t.get("sampler_running").and_then(Json::as_bool), Some(true));
    assert!(t.get("interval_ms").and_then(Json::as_u64).unwrap() >= 1);

    // The request counter series carries a per-tick point vector for
    // sparklines plus a windowed rate.
    let series = t.get("series").and_then(Json::as_array).unwrap();
    let requests = series
        .iter()
        .find(|s| s.get("name").and_then(Json::as_str) == Some("ccdb_server_requests_total"))
        .expect("requests series present");
    assert_eq!(requests.get("kind").and_then(Json::as_str), Some("counter"));
    let points = requests.get("points").and_then(Json::as_array).unwrap();
    assert!(!points.is_empty() && points.len() <= 16, "{points:?}");
    assert!(requests.get("rate").and_then(Json::as_f64).is_some());

    // The scheduler's own wakeup histogram is populated under load and
    // digested over the same window.
    let wakeup = t.get("wakeup").expect("wakeup block present");
    assert!(
        wakeup.get("count").and_then(Json::as_u64).unwrap_or(0) > 0,
        "wakeup histogram empty: {wakeup:?}"
    );
    assert!(wakeup.get("p50_ns").and_then(Json::as_f64).is_some());
    server.shutdown();
}

#[test]
fn watch_is_refused_when_the_sampler_is_disabled() {
    let server = common::start(ServerConfig {
        sample_interval_ms: 0,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    let mut c = Client::connect(addr).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let err = c.watch(100, &[]).unwrap_err();
    assert!(
        matches!(&err, ccdb_server::ClientError::Server { kind, .. } if kind == "bad_request"),
        "expected bad_request, got {err}"
    );
    server.shutdown();
}

#[test]
fn stalled_watch_subscriber_is_killed_without_perturbing_other_sessions() {
    // Small frame cap → small outbound backlog cap (4×), short stall
    // timeout, and a clamped kernel send buffer — without the clamp,
    // auto-tuned loopback buffering absorbs minutes of telemetry frames
    // before the server ever sees queued bytes, and the kill can't fire
    // inside any reasonable test deadline.
    let server = common::start(ServerConfig {
        write_stall_timeout: Duration::from_millis(300),
        max_frame_bytes: 16 * 1024,
        send_buffer_bytes: Some(8 * 1024),
        ..fast_cfg()
    });
    let addr = server.local_addr();

    let mut healthy = Client::connect(addr).unwrap();
    healthy
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let baseline_stalled = scrape_value(
        &healthy.metrics().unwrap(),
        "ccdb_server_write_stalled_closed_total",
    )
    .unwrap_or(0);

    // The victim subscribes to *everything* at the fastest interval, then
    // never reads its socket again.
    let mut victim = Client::connect(addr).unwrap();
    victim
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let ack = victim.watch(20, &["*"]).unwrap();
    assert_eq!(ack.get("watching").and_then(Json::as_bool), Some(true));

    // Load keeps histograms moving so every frame carries real payload
    // (and exercises the sessions that must NOT be perturbed). Writes
    // are the heavy payload source: every publish cycle moves the
    // snapshot/storelock/rescache/resolution series on top of the
    // per-verb phase histograms, so each sampler tick ships a frame fat
    // enough to fill the victim's kernel buffers in seconds — a
    // ping-only loop once needed ~20 s to trip the backlog cap, which
    // made this test miss its deadline on loaded single-core CI boxes.
    let interface = healthy.create("If", &[("X", Value::Int(0))]).unwrap();
    let imp = healthy.create("Impl", &[]).unwrap();
    healthy.bind("AllOf_If", interface, imp).unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut killed = false;
    let mut n = 0i64;
    while Instant::now() < deadline {
        for _ in 0..10 {
            healthy.ping().expect("healthy session must keep working");
            healthy
                .set_attr(interface, "X", Value::Int(n))
                .expect("healthy writes must keep publishing");
            assert_eq!(
                healthy.attr(imp, "X").expect("resolved read"),
                Value::Int(n)
            );
            n += 1;
        }
        let scrape = healthy.metrics().unwrap();
        let stalled = scrape_value(&scrape, "ccdb_server_write_stalled_closed_total").unwrap_or(0);
        if stalled > baseline_stalled {
            killed = true;
            break;
        }
    }
    assert!(killed, "stalled subscriber was never write-stall killed");

    // The victim's socket is dead: its next read hits EOF or reset.
    let mut buf = [0u8; 4096];
    let sock_dead = loop {
        match victim.read(&mut buf) {
            Ok(0) => break true,
            Ok(_) => continue, // draining frames buffered before the kill
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break false,
            Err(e) if e.kind() == std::io::ErrorKind::TimedOut => break false,
            Err(_) => break true,
        }
    };
    assert!(sock_dead, "victim socket still open after stall kill");

    // And the healthy session never noticed: lock-step requests still
    // round-trip and the subscription bookkeeping recorded the drop.
    healthy.ping().unwrap();
    let drop_deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let dropped = scrape_value(
            &healthy.metrics().unwrap(),
            "ccdb_server_watch_dropped_total",
        )
        .unwrap_or(0);
        if dropped >= 1 {
            break;
        }
        assert!(Instant::now() < drop_deadline, "watch_dropped not recorded");
        std::thread::sleep(Duration::from_millis(20));
    }
    server.shutdown();
}
