//! Wire protocol v2 integration tests: negotiation, dialect coexistence
//! on one server, a v1-pinned server refusing the hello cleanly, hostile
//! v2 frames, and the poll-based reader's many-idle-sessions guarantee.

mod common;

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use ccdb_core::Value;
use ccdb_server::{Client, ClientError, ServerConfig, HELLO_V2};
use serde_json::Value as Json;

/// v1 and v2 clients interleave requests on the same server and the same
/// shared state; responses stay matched to the dialect that asked.
#[test]
fn v1_and_v2_clients_interleave_on_one_server() {
    let server = common::start_default();
    let addr = server.local_addr();

    let mut v1 = Client::connect(addr).unwrap();
    let mut v2 = Client::connect_v2(addr).unwrap();
    assert_eq!(v1.proto(), 1);
    assert_eq!(v2.proto(), 2);
    v1.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    v2.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

    // A write made through one dialect is read back through the other.
    let interface = v2.create("If", &[("X", Value::Int(1))]).unwrap();
    let imp = v1.create("Impl", &[]).unwrap();
    v1.bind("AllOf_If", interface, imp).unwrap();
    for round in 0..20i64 {
        if round % 2 == 0 {
            v1.set_attr(interface, "X", Value::Int(round)).unwrap();
            assert_eq!(v2.attr(imp, "X").unwrap(), Value::Int(round));
        } else {
            v2.set_attr(interface, "X", Value::Int(round)).unwrap();
            assert_eq!(v1.attr(imp, "X").unwrap(), Value::Int(round));
        }
    }

    // Both sessions are visible with their negotiated dialect.
    let info = v2.session().unwrap();
    assert_eq!(info.get("proto").and_then(Json::as_u64), Some(2));
    let info = v1.session().unwrap();
    assert_eq!(info.get("proto").and_then(Json::as_u64), Some(1));
    server.shutdown();
}

/// Errors and the whole verb surface keep working over v2: unknown verb,
/// bad params, batch, and an explain tree survive the binary encoding.
#[test]
fn v2_carries_errors_batches_and_structured_results() {
    let server = common::start_default();
    let addr = server.local_addr();
    let mut c = Client::connect_v2(addr).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

    let interface = c.create("If", &[("X", Value::Int(7))]).unwrap();
    let imp = c.create("Impl", &[]).unwrap();
    c.bind("AllOf_If", interface, imp).unwrap();

    // Server-side error arrives as a typed error, not a transport fault.
    match c.attr(imp, "NoSuchAttr") {
        Err(ClientError::Server { kind, .. }) => assert_eq!(kind, "core"),
        other => panic!("expected server error over v2, got {other:?}"),
    }

    // A batch frame round-trips sub-responses in order.
    let subs: Vec<(&str, Json)> = (0..5)
        .map(|_| {
            (
                "attr",
                Json::Object(vec![
                    ("obj".into(), Json::UInt(imp.0)),
                    ("name".into(), Json::String("X".into())),
                ]),
            )
        })
        .collect();
    let results = c.batch(subs).unwrap();
    assert_eq!(results.len(), 5);
    for slot in results {
        slot.unwrap();
    }

    // Structured (nested) result payloads survive the value encoding.
    let tree = c.explain("Impl", "X").unwrap();
    assert!(
        tree.get("hops")
            .and_then(Json::as_array)
            .is_some_and(|h| !h.is_empty()),
        "explain tree over v2: {tree:?}"
    );

    // Trace ids ride the v2 header flag and come back in the flight
    // recorder, same as over v1.
    c.set_trace(Some(0xDEAD_BEEF));
    c.ping().unwrap();
    c.set_trace(None);
    server.shutdown();
}

/// A server pinned to v1 answers the v2 hello with a clean, framed v1
/// `protocol` error and closes; a v1 client on the same server is fine.
#[test]
fn v1_pinned_server_rejects_the_hello_cleanly() {
    let server = common::start(ServerConfig {
        max_proto: 1,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    match Client::connect_v2(addr) {
        Err(ClientError::Server { kind, message }) => {
            assert_eq!(kind, "protocol");
            assert!(
                message.contains("pinned"),
                "error should say the server is pinned: {message}"
            );
        }
        Err(other) => panic!("expected protocol error from pinned server, got {other}"),
        Ok(_) => panic!("pinned server must not accept the v2 hello"),
    }

    // The fallback constructor lands on v1 and works.
    let mut c = Client::connect(addr).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    c.ping().unwrap();
    server.shutdown();
}

/// Raw byte-level abuse of the v2 framing: truncated headers, hostile
/// element counts, and bad magic must be refused without the server
/// allocating for the claimed sizes or falling over.
#[test]
fn hostile_v2_frames_are_refused_without_allocation() {
    let server = common::start(ServerConfig {
        max_frame_bytes: 1 << 20,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    let hello = |s: &mut TcpStream| {
        s.write_all(&HELLO_V2).unwrap();
        let mut ack = [0u8; 4];
        s.read_exact(&mut ack).unwrap();
        assert_eq!(ack, HELLO_V2);
    };
    let alive = |addr| {
        let mut c = Client::connect_v2(addr).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        c.ping().expect("server still serves v2 after abuse");
    };

    // Bad hello magic (0xCC prefix but wrong tail): refused, closed.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s.write_all(&[0xCC, 0xDB, 0xFF, 0xFF]).unwrap();
        let mut buf = Vec::new();
        let _ = s.read_to_end(&mut buf); // server answers an error then closes
    }
    alive(addr);

    // Truncated v2 header: a framed payload shorter than the fixed
    // header. Parse error is reported on the session, which survives.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        hello(&mut s);
        let payload = [2u8, 1, 0]; // 3 bytes < 12-byte header
        s.write_all(&(payload.len() as u32).to_be_bytes()).unwrap();
        s.write_all(&payload).unwrap();
        let mut len = [0u8; 4];
        s.read_exact(&mut len).unwrap();
        let mut resp = vec![0u8; u32::from_be_bytes(len) as usize];
        s.read_exact(&mut resp).unwrap();
        // Error status byte, not an ok: kind slot carries a nonzero code.
        assert_eq!(resp[0], 2, "v2 response version byte");
        assert_ne!(resp[1], 0, "truncated header must be an error");
    }
    alive(addr);

    // Hostile element count: an array claiming u32::MAX elements inside
    // a tiny frame. The decoder must reject it from the *available
    // bytes*, instantly, instead of reserving gigabytes.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        hello(&mut s);
        let mut payload = vec![2u8, 15, 0, 0]; // version, verb id (batch), flags, reserved
        payload.extend_from_slice(&1u64.to_be_bytes()); // request id
        payload.push(0x08); // object tag
        payload.extend_from_slice(&u32::MAX.to_be_bytes()); // hostile count
        s.write_all(&(payload.len() as u32).to_be_bytes()).unwrap();
        s.write_all(&payload).unwrap();
        let started = std::time::Instant::now();
        let mut len = [0u8; 4];
        s.read_exact(&mut len).unwrap();
        let mut resp = vec![0u8; u32::from_be_bytes(len) as usize];
        s.read_exact(&mut resp).unwrap();
        assert_ne!(resp[1], 0, "hostile count must be an error");
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "refusal must be immediate, not an allocation stall"
        );
    }
    alive(addr);

    // A v1 JSON frame sent after negotiating v2 is a parse error on the
    // v2 session, answered in v2 framing, and the session survives.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        hello(&mut s);
        let json = br#"{"v":1,"id":1,"verb":"ping"}"#;
        s.write_all(&(json.len() as u32).to_be_bytes()).unwrap();
        s.write_all(json).unwrap();
        let mut len = [0u8; 4];
        s.read_exact(&mut len).unwrap();
        let mut resp = vec![0u8; u32::from_be_bytes(len) as usize];
        s.read_exact(&mut resp).unwrap();
        assert_ne!(resp[1], 0, "JSON on a v2 session must be an error");
    }
    alive(addr);
    server.shutdown();
}

/// The poll-based reader's core promise: parking hundreds of idle
/// sessions adds zero OS threads, and the server stays responsive.
#[test]
fn many_idle_sessions_cost_no_threads() {
    let server = common::start(ServerConfig {
        workers: 2,
        idle_timeout: Duration::from_secs(600),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    let threads = || -> Option<u64> {
        let text = std::fs::read_to_string("/proc/self/status").ok()?;
        text.lines()
            .find_map(|l| l.strip_prefix("Threads:"))
            .and_then(|v| v.trim().parse().ok())
    };

    let before = threads();
    let mut parked = Vec::new();
    for _ in 0..300 {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        s.write_all(&HELLO_V2).unwrap();
        let mut ack = [0u8; 4];
        s.read_exact(&mut ack).unwrap();
        parked.push(s);
    }
    let after = threads();

    if let (Some(b), Some(a)) = (before, after) {
        assert!(
            a.saturating_sub(b) < 32,
            "300 idle sessions must not spawn reader threads ({b} -> {a})"
        );
    }

    // Still promptly serving both dialects under the parked crowd.
    let mut c = Client::connect_v2(addr).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    c.ping().unwrap();
    let mut c1 = Client::connect(addr).unwrap();
    c1.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    c1.ping().unwrap();
    drop(parked);
    server.shutdown();
}
