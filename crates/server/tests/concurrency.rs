//! Shutdown-drain and multi-session behavior of one server process.

mod common;

use std::thread;
use std::time::Duration;

use ccdb_core::Value;
use ccdb_server::{Client, ClientError, ServerConfig};

/// A request already admitted when shutdown begins still gets its
/// response: drain means "finish what you accepted", not "drop it".
#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let server = common::start(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    let handle = server.handle();

    let in_flight = thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        // 300ms of service time: shutdown fires while this runs.
        c.ping_delay_ms(300)
    });
    // Give the slow ping time to be admitted, then start draining.
    thread::sleep(Duration::from_millis(100));
    handle.begin_shutdown();

    let result = in_flight.join().unwrap();
    assert!(
        result.is_ok(),
        "admitted request must complete through drain: {result:?}"
    );
    server.shutdown();
}

/// Requests arriving after drain begins are refused with `shutdown`,
/// not silently dropped.
#[test]
fn requests_after_drain_begins_get_shutdown_errors() {
    let server = common::start_default();
    let mut c = Client::connect(server.local_addr()).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    c.ping().unwrap();

    server.handle().begin_shutdown();
    // The reader answers `shutdown` until the socket is torn down; the
    // teardown race means we accept either outcome, but never a hang.
    match c.ping() {
        Err(ClientError::Server { kind, .. }) => assert_eq!(kind, "shutdown"),
        Err(ClientError::Io(_)) | Err(ClientError::Protocol(_)) => {}
        Ok(()) => panic!("post-drain request must not be served"),
    }
    server.shutdown();
}

/// The `shutdown` verb over the wire is answered before the server
/// stops, and `run_until_shutdown` then returns.
#[test]
fn wire_shutdown_verb_is_acknowledged_and_stops_the_server() {
    let server = common::start_default();
    let addr = server.local_addr();
    let mut c = Client::connect(addr).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    c.shutdown_server().expect("shutdown verb acknowledged");

    // run_until_shutdown must observe the drain and join everything.
    let runner = thread::spawn(move || server.run_until_shutdown());
    runner.join().expect("run_until_shutdown returns");

    // The port is no longer served.
    let gone = Client::connect(addr)
        .map(|mut c| {
            c.set_read_timeout(Some(Duration::from_millis(500)))
                .unwrap();
            c.ping().is_err()
        })
        .unwrap_or(true);
    assert!(gone, "server still serving after shutdown");
}

/// Two sessions share one store: a write through one connection is
/// visible to reads through another (the wire preserves the paper's
/// instant-visibility semantics).
#[test]
fn writes_on_one_session_are_visible_to_another() {
    let server = common::start_default();
    let mut writer = Client::connect(server.local_addr()).unwrap();
    let mut reader = Client::connect(server.local_addr()).unwrap();

    let interface = writer.create("If", &[("X", Value::Int(1))]).unwrap();
    let imp = writer.create("Impl", &[]).unwrap();
    writer.bind("AllOf_If", interface, imp).unwrap();

    assert_eq!(reader.attr(imp, "X").unwrap(), Value::Int(1));
    writer.set_attr(interface, "X", Value::Int(2)).unwrap();
    assert_eq!(reader.attr(imp, "X").unwrap(), Value::Int(2));
    server.shutdown();
}

/// Sessions disappear from the registry when their connection closes.
#[test]
fn closed_connections_unregister_their_sessions() {
    let server = common::start_default();
    {
        let mut a = Client::connect(server.local_addr()).unwrap();
        let mut b = Client::connect(server.local_addr()).unwrap();
        a.ping().unwrap();
        b.ping().unwrap();
        assert_eq!(server.session_count(), 2);
    } // both clients dropped → readers see Closed
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.session_count() > 0 && std::time::Instant::now() < deadline {
        thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(server.session_count(), 0, "sessions not unregistered");
    server.shutdown();
}
