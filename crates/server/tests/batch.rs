//! Wire-level behavior of the `batch` verb: one frame, one admission
//! queue job, one store guard; per-entry error isolation inside the
//! frame; clean interleaving with pipelined non-batch frames.

mod common;

use std::time::Duration;

use ccdb_core::Value;
use ccdb_server::{Client, ClientError, ServerConfig};
use serde_json::{json, Value as Json};

#[test]
fn empty_batch_roundtrips_as_an_empty_slot_array() {
    let server = common::start_default();
    let mut c = Client::connect(server.local_addr()).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let slots = c.batch(vec![]).unwrap();
    assert!(slots.is_empty());
    // The connection is still perfectly usable afterwards.
    c.ping().unwrap();
    server.shutdown();
}

#[test]
fn failing_sub_request_does_not_abort_the_rest_of_the_batch() {
    let server = common::start_default();
    let mut c = Client::connect(server.local_addr()).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();

    let slots = c
        .batch(vec![
            ("create", json!({"type": "If", "attrs": {"X": {"Int": 9}}})),
            ("attr", json!({"obj": 424242, "name": "X"})), // no such object
            ("create", json!({"type": "Impl"})),
        ])
        .unwrap();
    assert_eq!(slots.len(), 3);
    let interface = slots[0].as_ref().unwrap().as_u64().unwrap();
    match &slots[1] {
        Err(ClientError::Server { kind, .. }) => assert_eq!(kind, "core"),
        other => panic!("expected core error slot, got {other:?}"),
    }
    let imp = slots[2]
        .as_ref()
        .expect("entry after a failing one must still execute")
        .as_u64()
        .unwrap();

    // Both creates really landed: a follow-up mixed batch binds them and
    // reads the transmitted value back under the same exclusive guard.
    let slots = c
        .batch(vec![
            (
                "bind",
                json!({"rel": "AllOf_If", "transmitter": interface, "inheritor": imp}),
            ),
            ("attr", json!({"obj": imp, "name": "X"})),
        ])
        .unwrap();
    let v = slots[1].as_ref().unwrap();
    assert_eq!(v.get("Int").and_then(Json::as_i64), Some(9));
    server.shutdown();
}

/// A batch is admitted as **one** queue job: when the admission queue is
/// full, the whole frame is refused with `overloaded` — no partial
/// execution, no per-entry admission.
#[test]
fn full_admission_queue_rejects_the_whole_batch_as_one_job() {
    let server = common::start(ServerConfig {
        workers: 1,
        queue_depth: 1,
        ..ServerConfig::default()
    });
    let mut c = Client::connect(server.local_addr()).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();

    // Saturate the single worker and the depth-1 queue with slow pings,
    // then pipeline a batch behind them. The frames arrive microseconds
    // apart while each ping takes 200ms, so the batch is evaluated at
    // admission while the queue is still full.
    for id in 1..=4u64 {
        let req =
            format!(r#"{{"v": 1, "id": {id}, "verb": "ping", "params": {{"delay_ms": 200}}}}"#);
        c.send_raw(req.as_bytes()).unwrap();
    }
    let batch = r#"{"v": 1, "id": 99, "verb": "batch", "params": {"requests": [
        {"verb": "ping", "params": {}},
        {"verb": "select", "params": {"type": "Impl"}}
    ]}}"#;
    c.send_raw(batch.as_bytes()).unwrap();

    let mut batch_kind = None;
    for _ in 0..5 {
        let resp = c.read_response_json().unwrap();
        if resp.get("id").and_then(Json::as_u64) == Some(99) {
            assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
            batch_kind = resp
                .get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str)
                .map(str::to_string);
        }
    }
    assert_eq!(
        batch_kind.as_deref(),
        Some("overloaded"),
        "batch behind a full queue must be refused whole"
    );

    // After the backlog drains, batches are admitted again.
    let slots = c.batch(vec![("ping", json!({}))]).unwrap();
    assert!(slots[0].is_ok());
    server.shutdown();
}

/// Batch frames pipeline like any other frame: plain requests sent
/// before and after a batch on one connection all get their responses,
/// matched by id, with the batch's slots intact.
#[test]
fn batch_frames_interleave_with_pipelined_plain_frames() {
    let server = common::start_default();
    let addr = server.local_addr();

    // Seed one Impl so the reads below have something to see.
    let mut seed = Client::connect(addr).unwrap();
    let imp = seed.create("Impl", &[("Local", Value::Int(3))]).unwrap();

    let mut c = Client::connect(addr).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let plain_before = format!(
        r#"{{"v": 1, "id": 1, "verb": "attr", "params": {{"obj": {}, "name": "Local"}}}}"#,
        imp.0
    );
    let batch = format!(
        r#"{{"v": 1, "id": 2, "verb": "batch", "params": {{"requests": [
            {{"verb": "select", "params": {{"type": "Impl"}}}},
            {{"verb": "attr", "params": {{"obj": {}, "name": "Local"}}}}
        ]}}}}"#,
        imp.0
    );
    let plain_after = r#"{"v": 1, "id": 3, "verb": "ping", "params": {}}"#.to_string();
    for frame in [&plain_before, &batch, &plain_after] {
        c.send_raw(frame.as_bytes()).unwrap();
    }

    let mut by_id = std::collections::HashMap::new();
    for _ in 0..3 {
        let resp = c.read_response_json().unwrap();
        let id = resp.get("id").and_then(Json::as_u64).unwrap();
        assert!(by_id.insert(id, resp).is_none(), "duplicate id");
    }
    for id in 1..=3u64 {
        let resp = &by_id[&id];
        assert_eq!(
            resp.get("ok").and_then(Json::as_bool),
            Some(true),
            "response {id}: {resp:?}"
        );
    }
    let slots = by_id[&2].get("result").and_then(|r| r.as_array()).unwrap();
    assert_eq!(slots.len(), 2);
    assert_eq!(
        slots[0]
            .get("result")
            .and_then(|r| r.as_array())
            .map(<[Json]>::len),
        Some(1)
    );
    assert_eq!(
        slots[1]
            .get("result")
            .and_then(|r| r.get("Int"))
            .and_then(Json::as_i64),
        Some(3)
    );
    server.shutdown();
}
