//! Observability under fire: scraping `metrics`/`stats`/`flight` while
//! writers are mutating the store must never poison a lock, corrupt a
//! counter, or return a malformed payload — and the counters a scraper
//! sees must be monotonic across scrapes.

mod common;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ccdb_core::Value;
use ccdb_server::Client;
use serde_json::Value as Json;

/// Extracts a scalar counter value from a Prometheus-text scrape.
fn scrape_value(text: &str, name: &str) -> Option<u64> {
    text.lines()
        .find(|l| l.split_whitespace().next() == Some(name))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse::<f64>().ok())
        .map(|v| v as u64)
}

#[test]
fn concurrent_scrapes_survive_a_write_storm() {
    let server = common::start_default();
    let addr = server.local_addr();

    // Seed an inheritance pair for the writers to hammer.
    let mut setup = Client::connect(addr).unwrap();
    setup
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let interface = setup.create("If", &[("X", Value::Int(1))]).unwrap();
    let imp = setup.create("Impl", &[]).unwrap();
    setup.bind("AllOf_If", interface, imp).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (0..2)
        .map(|w| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
                let mut n = 0i64;
                while !stop.load(Ordering::Relaxed) {
                    c.set_attr(interface, "X", Value::Int(w * 1000 + n))
                        .unwrap();
                    let _ = c.attr(imp, "X").unwrap();
                    n += 1;
                }
            })
        })
        .collect();

    // Scrapers: each thread alternates metrics / stats / flight and checks
    // that every payload is well-formed and its request counter only ever
    // moves forward.
    let scrapers: Vec<_> = (0..3)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
                let mut last_requests = 0u64;
                for _ in 0..25 {
                    let text = c.metrics().expect("metrics scrape failed mid-storm");
                    let requests = scrape_value(&text, "ccdb_server_requests_total")
                        .expect("scrape is missing ccdb_server_requests_total");
                    assert!(
                        requests >= last_requests,
                        "requests counter went backwards: {last_requests} -> {requests}"
                    );
                    last_requests = requests;
                    assert!(
                        text.contains("ccdb_server_phase_all_handle_ns_bucket"),
                        "scrape lost the phase histograms"
                    );
                    assert!(
                        text.contains("ccdb_core_storelock_exclusive_wait_ns"),
                        "scrape lost the lock probes"
                    );

                    let stats = c.stats().expect("stats failed mid-storm");
                    assert!(stats.get("counters").is_some(), "stats lost its shape");

                    let flight = c.flight().expect("flight failed mid-storm");
                    assert!(
                        flight.get("recorded").and_then(Json::as_u64).is_some(),
                        "flight payload lost its shape"
                    );
                }
            })
        })
        .collect();

    for s in scrapers {
        s.join().expect("a scraper thread panicked");
    }
    stop.store(true, Ordering::Relaxed);
    for w in writers {
        w.join().expect("a writer thread panicked");
    }

    // The store is still consistent after the storm: a final read resolves.
    let v = setup.attr(imp, "X").unwrap();
    assert!(
        matches!(v, Value::Int(_)),
        "post-storm read corrupted: {v:?}"
    );
    server.shutdown();
}

#[test]
fn flight_recorder_catches_slow_requests_with_phase_timelines() {
    let server = common::start_default();
    let addr = server.local_addr();
    let mut c = Client::connect(addr).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

    // A deliberately slow request (service-time injection) plus fast ones.
    // The recorder is global to this test binary, and the scrape-storm
    // test's `metrics` requests run tens of ms in debug builds — the
    // injected delay must dominate them to stay in the slowest view.
    c.ping_delay_ms(400).unwrap();
    for _ in 0..5 {
        c.ping().unwrap();
    }

    let f = c.flight().unwrap();
    let slowest = f
        .get("slowest")
        .and_then(Json::as_array)
        .map(|a| a.to_vec());
    let slowest = slowest.expect("flight payload has a slowest array");
    assert!(!slowest.is_empty(), "nothing retained: {f:?}");
    // Find *our* slow ping rather than assuming it ranks first: a ping
    // with ≥400ms total, dominated by the handle phase.
    let slow_ping = slowest
        .iter()
        .find(|r| {
            r.get("verb").and_then(Json::as_str) == Some("ping")
                && r.get("total_ns").and_then(Json::as_u64).unwrap_or(0) >= 400_000_000
        })
        .unwrap_or_else(|| panic!("slow ping not retained in slowest view: {f:?}"));
    let handle = slow_ping
        .get("phases")
        .and_then(|p| p.get("handle"))
        .and_then(Json::as_u64)
        .unwrap();
    assert!(
        handle >= 350_000_000,
        "delay not attributed to handle phase: {handle}ns"
    );
    server.shutdown();
}

#[test]
fn flight_recorder_attributes_v2_requests_with_proto_phases_and_trace() {
    let server = common::start_default();
    let addr = server.local_addr();
    let mut c = Client::connect_proto(addr, 2).expect("v2 handshake");
    c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    assert_eq!(c.proto(), 2);

    // A traced, deliberately slow request over the binary dialect: slow
    // enough to be retained in the slowest view whatever else this test
    // binary has recorded, traced so the record links to the client.
    c.set_trace(Some(424_242_424));
    c.ping_delay_ms(450).unwrap();
    c.set_trace(None);

    let f = c.flight().unwrap();
    let slowest = f
        .get("slowest")
        .and_then(Json::as_array)
        .expect("flight payload has a slowest array");
    let rec = slowest
        .iter()
        .find(|r| r.get("trace").and_then(Json::as_u64) == Some(424_242_424))
        .unwrap_or_else(|| panic!("traced v2 ping not retained: {f:?}"));

    // The record names the dialect it arrived on...
    assert_eq!(rec.get("proto").and_then(Json::as_u64), Some(2));
    assert_eq!(rec.get("verb").and_then(Json::as_str), Some("ping"));
    // ...carries the full eight-phase timeline...
    let phases = rec.get("phases").expect("record has phases");
    for name in ccdb_obs::flight::PHASE_NAMES {
        assert!(
            phases.get(name).and_then(Json::as_u64).is_some(),
            "phase `{name}` missing from v2 record: {rec:?}"
        );
    }
    assert!(
        phases.get("handle").and_then(Json::as_u64).unwrap() >= 400_000_000,
        "delay not attributed to handle phase: {rec:?}"
    );
    // ...and non-trivial framing work was actually measured (the v2
    // decode path feeds the parse phase, so it must at least be stamped).
    assert!(rec.get("session").and_then(Json::as_u64).is_some());
    server.shutdown();
}

#[test]
fn client_trace_ids_continue_into_server_spans() {
    ccdb_obs::trace::set_tracing(true);
    let server = common::start_default();
    let addr = server.local_addr();
    let mut c = Client::connect(addr).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

    c.set_trace(Some(987_654_321));
    c.ping().unwrap();
    c.set_trace(None);

    // The worker commits the span on drop, *after* it sends the reply —
    // poll briefly instead of racing it.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let found = loop {
        let spans = ccdb_obs::trace::snapshot_spans();
        if spans
            .iter()
            .any(|s| s.trace.0 == 987_654_321 && s.name == "server.request")
        {
            break true;
        }
        if std::time::Instant::now() >= deadline {
            break false;
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    ccdb_obs::trace::set_tracing(false);
    assert!(found, "no server.request span under the client's trace id");
    server.shutdown();
}
