//! End-to-end wire transactions: `begin`/`commit`/`abort` over real
//! sockets, two sessions contending under §6 lock inheritance.
//!
//! The fixture is the paper's composite: an `If` interface transmitting
//! `X` to an `Impl` through `AllOf_If`. Reading `Impl.X` inside a
//! transaction S-locks the whole resolution chain — including the
//! transmitter's item — so another session's transactional write to
//! `If.X` conflicts even though it never names the `Impl`.

mod common;

use std::time::Duration;

use ccdb_core::{Surrogate, Value};
use ccdb_server::{Client, ServerConfig};

fn start_quick() -> ccdb_server::Server {
    common::start(ServerConfig {
        workers: 4,
        // Short leash so conflicting acquires fail in test time.
        txn_lock_timeout: Duration::from_millis(200),
        debug_verbs: false,
        ..ServerConfig::default()
    })
}

fn connect(server: &ccdb_server::Server, proto: u8) -> Client {
    let c = match proto {
        2 => Client::connect_v2(server.local_addr()).unwrap(),
        _ => Client::connect(server.local_addr()).unwrap(),
    };
    c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    c
}

/// Creates If{X=7} bound to Impl{Local=1} through `c`.
fn seed(c: &mut Client) -> (Surrogate, Surrogate) {
    let interface = c.create("If", &[("X", Value::Int(7))]).unwrap();
    let imp = c.create("Impl", &[("Local", Value::Int(1))]).unwrap();
    c.bind("AllOf_If", interface, imp).unwrap();
    (interface, imp)
}

/// The full §6 story over the wire, on both dialects: a composite read's
/// inherited S-locks block a component write from another session; abort
/// releases the whole closure; a commit is visible to the next read.
#[test]
fn lock_inheritance_conflict_abort_release_and_commit_visibility() {
    for proto in [1u8, 2] {
        let server = start_quick();
        let mut a = connect(&server, proto);
        let mut b = connect(&server, proto);
        let (interface, imp) = seed(&mut a);

        // Session A reads the component's inherited attr in a txn:
        // S-locks If.X along the chain.
        a.begin().unwrap();
        assert_eq!(a.attr(imp, "X").unwrap(), Value::Int(7));

        // Session B's transactional write to the transmitter item
        // conflicts with A's inherited S-lock and times out.
        b.begin().unwrap();
        let err = b.set_attr(interface, "X", Value::Int(0)).unwrap_err();
        assert!(
            err.is_conflict(),
            "proto v{proto}: expected conflict, got {err}"
        );
        // The failed acquire aborted B server-side.
        let err = b.commit().unwrap_err();
        assert!(!err.is_conflict(), "B's txn is gone, commit is bad_request");

        // A aborts: the inherited closure (≥2 chain S-locks) is released…
        let released = a.abort().unwrap();
        assert!(
            released >= 2,
            "proto v{proto}: chain locks released, got {released}"
        );

        // …so B can immediately write the same item and commit.
        b.begin().unwrap();
        b.set_attr(interface, "X", Value::Int(42)).unwrap();
        let (version, writes) = b.commit().unwrap();
        assert!(version > 0);
        assert_eq!(writes, 1);

        // The commit is in the next published snapshot: both sessions'
        // plain reads (and A's fresh txn read) resolve the new value.
        assert_eq!(a.attr(imp, "X").unwrap(), Value::Int(42));
        a.begin().unwrap();
        assert_eq!(a.attr(imp, "X").unwrap(), Value::Int(42));
        a.commit().unwrap();

        server.shutdown();
    }
}

/// Per-session isolation: uncommitted writes are invisible to the other
/// session until commit, and the writer reads-its-own-writes through the
/// inheritance chain.
#[test]
fn uncommitted_writes_are_isolated_per_session() {
    let server = start_quick();
    let mut a = connect(&server, 2);
    let mut b = connect(&server, 1);
    let (interface, imp) = seed(&mut a);

    a.begin().unwrap();
    a.set_attr(interface, "X", Value::Int(50)).unwrap();
    // B (no txn) still sees the published 7…
    assert_eq!(b.attr(imp, "X").unwrap(), Value::Int(7));
    // …while A resolves its own uncommitted write through AllOf_If.
    assert_eq!(a.attr(imp, "X").unwrap(), Value::Int(50));
    a.commit().unwrap();
    assert_eq!(b.attr(imp, "X").unwrap(), Value::Int(50));
    server.shutdown();
}

/// A session that disconnects mid-transaction is aborted by the server:
/// its inherited locks are released, so a surviving session's conflicting
/// write succeeds instead of waiting out the lock timeout forever.
#[test]
fn disconnect_aborts_the_txn_and_releases_inherited_locks() {
    let server = start_quick();
    let mut a = connect(&server, 2);
    let mut b = connect(&server, 2);
    let (interface, imp) = seed(&mut a);

    // A pins the chain S-locks and vanishes without abort/commit.
    a.begin().unwrap();
    assert_eq!(a.attr(imp, "X").unwrap(), Value::Int(7));
    drop(a);

    // The event loop notices the disconnect and aborts A's transaction.
    // B polls with fresh transactions (a conflict aborts the txn, so each
    // attempt needs its own begin).
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        b.begin().unwrap();
        match b.set_attr(interface, "X", Value::Int(9)) {
            Ok(()) => break,
            Err(e) if e.is_conflict() && std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => panic!("disconnected session's locks never released: {e}"),
        }
    }
    b.commit().unwrap();
    assert_eq!(b.attr(imp, "X").unwrap(), Value::Int(9));
    server.shutdown();
}

/// First-committer-wins over the wire: a plain (lock-free) write that
/// lands after `begin` invalidates the transaction's buffered write at
/// commit, surfacing as the `conflict` error kind.
#[test]
fn plain_writer_beats_the_transaction_at_commit() {
    let server = start_quick();
    let mut a = connect(&server, 2);
    let mut b = connect(&server, 2);
    let (interface, imp) = seed(&mut a);

    a.begin().unwrap();
    a.set_attr(interface, "X", Value::Int(100)).unwrap();
    // B writes outside any transaction: no locks, publishes immediately.
    b.set_attr(interface, "X", Value::Int(55)).unwrap();
    let err = a.commit().unwrap_err();
    assert!(
        err.is_conflict(),
        "expected first-committer-wins conflict, got {err}"
    );
    // The losing txn published nothing.
    assert_eq!(a.attr(imp, "X").unwrap(), Value::Int(55));
    server.shutdown();
}
