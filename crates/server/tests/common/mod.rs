//! Shared fixture for the server integration tests: an interface type
//! transmitting `X` to implementations, served on an ephemeral port.

use ccdb_core::domain::Domain;
use ccdb_core::schema::{AttrDef, Catalog, InherRelTypeDef, ObjectTypeDef};
use ccdb_core::shared::SharedStore;
use ccdb_server::{Server, ServerConfig};

pub fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register_object_type(ObjectTypeDef {
        name: "If".into(),
        attributes: vec![AttrDef::new("X", Domain::Int)],
        ..Default::default()
    })
    .unwrap();
    c.register_inher_rel_type(InherRelTypeDef {
        name: "AllOf_If".into(),
        transmitter_type: "If".into(),
        inheritor_type: None,
        inheriting: vec!["X".into()],
        attributes: vec![],
        constraints: vec![],
    })
    .unwrap();
    c.register_object_type(ObjectTypeDef {
        name: "Impl".into(),
        inheritor_in: vec!["AllOf_If".into()],
        attributes: vec![AttrDef::new("Local", Domain::Int)],
        ..Default::default()
    })
    .unwrap();
    c
}

pub fn start(cfg: ServerConfig) -> Server {
    Server::start(cfg, SharedStore::new(catalog()).unwrap()).expect("server binds")
}

// Each integration-test binary compiles this module separately and uses
// a different subset of the helpers.
#[allow(dead_code)]
pub fn start_default() -> Server {
    start(ServerConfig::default())
}
