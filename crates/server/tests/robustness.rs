//! Protocol-robustness tests: malformed frames, hostile prefixes, unknown
//! verbs, version mismatches, handler panics — none of which may take the
//! server down or corrupt other sessions.

mod common;

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use ccdb_server::proto::PROTOCOL_VERSION;
use ccdb_server::{Client, ClientError, ServerConfig};
use serde_json::Value as Json;

/// After each abuse, a fresh client must still get clean service.
fn assert_alive(addr: std::net::SocketAddr) {
    let mut c = Client::connect(addr).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    c.ping().expect("server still serves after abuse");
}

#[test]
fn truncated_frame_then_disconnect_leaves_server_healthy() {
    let server = common::start_default();
    let addr = server.local_addr();
    {
        // Announce 100 bytes, send 3, vanish.
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&(100u32).to_be_bytes()).unwrap();
        s.write_all(b"abc").unwrap();
    } // dropped: connection closed mid-frame
    assert_alive(addr);
    server.shutdown();
}

#[test]
fn oversized_length_prefix_is_refused_before_allocation() {
    let server = common::start(ServerConfig {
        max_frame_bytes: 4096,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    let mut c = Client::connect(addr).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    // A 512 MiB length prefix with no body behind it.
    c.write_all(&(512u32 << 20).to_be_bytes()).unwrap();
    c.flush().unwrap();
    let resp = c.read_response_json().expect("protocol error response");
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
    let kind = resp
        .get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str);
    assert_eq!(kind, Some("protocol"));
    assert_alive(addr);
    server.shutdown();
}

#[test]
fn bad_json_and_unknown_verbs_answer_without_dropping_the_connection() {
    let server = common::start_default();
    let mut c = Client::connect(server.local_addr()).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();

    c.send_raw(b"this is not json").unwrap();
    let resp = c.read_response_json().unwrap();
    assert_eq!(
        resp.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str),
        Some("protocol")
    );

    // Same connection keeps working...
    c.ping().unwrap();

    // ...and an unknown verb is a bad_request, echoing our id.
    let err = c.request("frobnicate", Json::Object(vec![])).unwrap_err();
    match err {
        ClientError::Server { kind, message } => {
            assert_eq!(kind, "bad_request");
            assert!(message.contains("frobnicate"), "{message}");
        }
        other => panic!("expected server error, got {other:?}"),
    }
    c.ping().unwrap();
    server.shutdown();
}

#[test]
fn wrong_protocol_version_is_rejected() {
    let server = common::start_default();
    let mut c = Client::connect(server.local_addr()).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let req = format!(
        r#"{{"v": {}, "id": 1, "verb": "ping"}}"#,
        PROTOCOL_VERSION + 7
    );
    c.send_raw(req.as_bytes()).unwrap();
    let resp = c.read_response_json().unwrap();
    assert_eq!(
        resp.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str),
        Some("protocol")
    );
    let msg = resp
        .get("error")
        .and_then(|e| e.get("message"))
        .and_then(Json::as_str)
        .unwrap();
    assert!(msg.contains("version"), "{msg}");
    server.shutdown();
}

#[test]
fn handler_panic_is_answered_as_internal_and_the_pool_survives() {
    let server = common::start(ServerConfig {
        workers: 2,
        debug_verbs: true,
        ..ServerConfig::default()
    });
    let mut c = Client::connect(server.local_addr()).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    // Panic more times than there are workers: if panics killed workers,
    // the pool would be empty and the pings below would hang.
    for _ in 0..4 {
        let err = c.request("boom", Json::Object(vec![])).unwrap_err();
        match err {
            ClientError::Server { kind, .. } => assert_eq!(kind, "internal"),
            other => panic!("expected internal error, got {other:?}"),
        }
    }
    for _ in 0..4 {
        c.ping().unwrap();
    }
    server.shutdown();
}

#[test]
fn overload_answers_overloaded_instead_of_queueing_unboundedly() {
    // One slow worker, queue depth 2: pipelining 10 slow pings must get
    // some Overloaded rejections and every response must still arrive.
    let server = common::start(ServerConfig {
        workers: 1,
        queue_depth: 2,
        ..ServerConfig::default()
    });
    let mut c = Client::connect(server.local_addr()).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();

    let n = 10u64;
    for id in 1..=n {
        let req =
            format!(r#"{{"v": 1, "id": {id}, "verb": "ping", "params": {{"delay_ms": 100}}}}"#);
        c.send_raw(req.as_bytes()).unwrap();
    }
    let mut pongs = 0;
    let mut overloaded = 0;
    let mut seen_ids = std::collections::HashSet::new();
    for _ in 0..n {
        let resp = c.read_response_json().unwrap();
        let id = resp.get("id").and_then(Json::as_u64).unwrap();
        assert!(seen_ids.insert(id), "duplicate response id {id}");
        match resp.get("ok").and_then(Json::as_bool) {
            Some(true) => pongs += 1,
            Some(false) => {
                let kind = resp
                    .get("error")
                    .and_then(|e| e.get("kind"))
                    .and_then(Json::as_str);
                assert_eq!(kind, Some("overloaded"), "{resp:?}");
                overloaded += 1;
            }
            None => panic!("malformed response {resp:?}"),
        }
    }
    assert_eq!(pongs + overloaded, n);
    assert!(overloaded >= 1, "expected at least one admission rejection");
    // The queue always holds `queue_depth` admitted jobs, all of which
    // must complete; whether the worker pops the first before the queue
    // fills is a race, so only the depth itself is guaranteed.
    assert!(pongs >= 2, "admitted requests must still complete");

    // The explicit-backpressure counter moved.
    let mut c2 = Client::connect(server.local_addr()).unwrap();
    let scrape = c2.metrics().unwrap();
    let line = scrape
        .lines()
        .find(|l| l.starts_with("ccdb_server_overloaded_total"))
        .expect("overloaded counter in scrape");
    let count: u64 = line.split_whitespace().nth(1).unwrap().parse().unwrap();
    assert!(count >= overloaded, "{line}");
    server.shutdown();
}

#[test]
fn idle_connections_are_closed_by_the_read_timeout() {
    let server = common::start(ServerConfig {
        idle_timeout: Duration::from_millis(100),
        ..ServerConfig::default()
    });
    let mut c = Client::connect(server.local_addr()).unwrap();
    c.ping().unwrap();
    // Stay silent past the idle window; the server closes our socket.
    std::thread::sleep(Duration::from_millis(400));
    let dead = c.ping().is_err() || c.ping().is_err(); // first write may succeed into a dying socket
    assert!(dead, "idle connection should have been closed");
    server.shutdown();
}

#[test]
fn nonreading_client_is_killed_and_cannot_stall_the_server() {
    // Regression: inline responses (the `session` verb is answered on the
    // event-loop thread) once went through a blocking write that parked
    // up to 5s on POLLOUT, so one client that pipelined requests without
    // ever reading its socket froze accepts and reads for everyone. Now
    // responses land in a bounded outbound buffer and the stalled peer is
    // killed, while other clients get clean service throughout.
    let server = common::start(ServerConfig {
        // A small frame cap keeps the outbound backlog cap (a multiple of
        // it) small, so the abuser dies soon after kernel buffers fill.
        max_frame_bytes: 1024,
        write_stall_timeout: Duration::from_millis(200),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    let mut pig = TcpStream::connect(addr).unwrap();
    pig.set_nodelay(true).unwrap();
    let frame = {
        let payload: &[u8] = br#"{"v": 1, "id": 7, "verb": "session"}"#;
        let mut f = (payload.len() as u32).to_be_bytes().to_vec();
        f.extend_from_slice(payload);
        f
    };
    // Pipeline requests and never read a byte of the responses. The
    // server shuts the socket once the response backlog hits its cap or
    // stall deadline; our writes then fail on the reset connection.
    let mut killed = false;
    'pump: for burst in 0..2_000 {
        for _ in 0..64 {
            if pig.write_all(&frame).is_err() {
                killed = true;
                break 'pump;
            }
        }
        if burst % 100 == 0 {
            // Liveness while the abuser backlogs: a well-behaved client
            // is served promptly the whole time.
            assert_alive(addr);
        }
    }
    if !killed {
        // Backlog built slower than the pump; the stall deadline (200ms)
        // must still get the connection reaped.
        for _ in 0..100 {
            std::thread::sleep(Duration::from_millis(50));
            if pig.write_all(&frame).is_err() {
                killed = true;
                break;
            }
        }
    }
    assert!(killed, "non-reading client was never disconnected");
    assert_alive(addr);
    server.shutdown();
}

#[test]
fn session_verb_reports_per_connection_state() {
    let server = common::start_default();
    let mut a = Client::connect(server.local_addr()).unwrap();
    let mut b = Client::connect(server.local_addr()).unwrap();
    a.ping().unwrap();
    a.ping().unwrap();
    b.ping().unwrap();
    let sa = a.session().unwrap();
    let sb = b.session().unwrap();
    assert_ne!(
        sa.get("session").and_then(Json::as_u64),
        sb.get("session").and_then(Json::as_u64),
        "distinct connections get distinct sessions"
    );
    // a: 2 pings + this session request = 3; b: 1 ping + session = 2.
    assert_eq!(sa.get("requests").and_then(Json::as_u64), Some(3));
    assert_eq!(sb.get("requests").and_then(Json::as_u64), Some(2));
    assert!(sa.get("bytes_in").and_then(Json::as_u64).unwrap() > 0);
    server.shutdown();
}
