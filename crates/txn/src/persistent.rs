//! Write-through persistent database: the transaction layer coupled to the
//! WAL-protected KV store, so every committed transaction is durable.
//!
//! [`PersistentDatabase`] wraps a [`Database`] and a
//! [`DurableKv`](ccdb_storage::kv::DurableKv): commits write the
//! transaction's [`PersistenceDelta`](crate::txn::PersistenceDelta) in one
//! KV transaction *before* releasing locks, so a crash after commit replays
//! the change and a crash before commit leaves no trace.

use std::path::Path;

use ccdb_core::persist::{self, load_store};
use ccdb_core::store::ObjectStore;
use ccdb_core::{CoreError, Surrogate, Value};
use ccdb_storage::kv::DurableKv;

use crate::txn::{Database, TxnError, TxnHandle, TxnResult};

/// A durable, multi-user object database in a directory.
pub struct PersistentDatabase {
    db: Database,
    kv: DurableKv,
}

impl PersistentDatabase {
    /// Create a fresh database in `dir` from a store (fails over whatever
    /// was there: the full store is written as the initial state).
    pub fn create(dir: impl AsRef<Path>, store: ObjectStore) -> TxnResult<Self> {
        let kv = DurableKv::open(dir).map_err(CoreError::from)?;
        persist::save_store(&store, &kv)?;
        Ok(PersistentDatabase {
            db: Database::new(store),
            kv,
        })
    }

    /// Open an existing database from `dir` (running crash recovery).
    pub fn open(dir: impl AsRef<Path>) -> TxnResult<Self> {
        let kv = DurableKv::open(dir).map_err(CoreError::from)?;
        let store = load_store(&kv)?;
        Ok(PersistentDatabase {
            db: Database::new(store),
            kv,
        })
    }

    /// The in-memory transaction layer (all reads/writes go through it).
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Begin a transaction.
    pub fn begin(&self, user: &str) -> TxnHandle {
        self.db.begin(user)
    }

    /// Durable commit: persist the transaction's delta in one KV
    /// transaction, then release locks. On persistence failure the
    /// transaction is aborted (in-memory effects rolled back) and the error
    /// returned.
    pub fn commit(&self, tx: TxnHandle) -> TxnResult<()> {
        let delta = self.db.persistence_delta(&tx);
        let result: Result<(), TxnError> = (|| {
            let kv_tx = self.kv.begin().map_err(CoreError::from)?;
            self.db.with_store(|st| -> TxnResult<()> {
                for s in &delta.save {
                    persist::save_object(st, &self.kv, kv_tx, *s)?;
                }
                Ok(())
            })?;
            for s in &delta.delete {
                persist::delete_object(&self.kv, kv_tx, *s)?;
            }
            self.kv.commit(kv_tx).map_err(CoreError::from)?;
            Ok(())
        })();
        match result {
            Ok(()) => {
                self.db.commit(tx);
                Ok(())
            }
            Err(e) => {
                self.db.abort(tx);
                Err(e)
            }
        }
    }

    /// Abort: in-memory rollback; nothing was persisted.
    pub fn abort(&self, tx: TxnHandle) {
        self.db.abort(tx);
    }

    /// Checkpoint the underlying KV store (truncates the WAL).
    pub fn checkpoint(&self) -> TxnResult<()> {
        self.kv.checkpoint().map_err(CoreError::from)?;
        Ok(())
    }

    // Convenience pass-throughs for the common operations.

    /// See [`Database::read_attr`].
    pub fn read_attr(&self, tx: &TxnHandle, obj: Surrogate, attr: &str) -> TxnResult<Value> {
        self.db.read_attr(tx, obj, attr)
    }

    /// See [`Database::write_attr`].
    pub fn write_attr(
        &self,
        tx: &TxnHandle,
        obj: Surrogate,
        attr: &str,
        value: Value,
    ) -> TxnResult<()> {
        self.db.write_attr(tx, obj, attr, value)
    }

    /// See [`Database::create_object`].
    pub fn create_object(
        &self,
        tx: &TxnHandle,
        type_name: &str,
        attrs: Vec<(&str, Value)>,
    ) -> TxnResult<Surrogate> {
        self.db.create_object(tx, type_name, attrs)
    }

    /// See [`Database::create_subobject`].
    pub fn create_subobject(
        &self,
        tx: &TxnHandle,
        parent: Surrogate,
        subclass: &str,
        attrs: Vec<(&str, Value)>,
    ) -> TxnResult<Surrogate> {
        self.db.create_subobject(tx, parent, subclass, attrs)
    }

    /// See [`Database::bind`].
    pub fn bind(
        &self,
        tx: &TxnHandle,
        rel_type: &str,
        transmitter: Surrogate,
        inheritor: Surrogate,
    ) -> TxnResult<Surrogate> {
        self.db.bind(tx, rel_type, transmitter, inheritor)
    }

    /// See [`Database::unbind`].
    pub fn unbind(&self, tx: &TxnHandle, rel_obj: Surrogate) -> TxnResult<()> {
        self.db.unbind(tx, rel_obj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdb_core::domain::Domain;
    use ccdb_core::schema::{AttrDef, Catalog, InherRelTypeDef, ObjectTypeDef, SubclassSpec};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register_object_type(ObjectTypeDef {
            name: "Pin".into(),
            attributes: vec![AttrDef::new("Id", Domain::Int)],
            ..Default::default()
        })
        .unwrap();
        c.register_object_type(ObjectTypeDef {
            name: "If".into(),
            attributes: vec![AttrDef::new("Length", Domain::Int)],
            subclasses: vec![SubclassSpec {
                name: "Pins".into(),
                element_type: "Pin".into(),
            }],
            ..Default::default()
        })
        .unwrap();
        c.register_inher_rel_type(InherRelTypeDef {
            name: "AllOf_If".into(),
            transmitter_type: "If".into(),
            inheritor_type: None,
            inheriting: vec!["Length".into()],
            attributes: vec![],
            constraints: vec![],
        })
        .unwrap();
        c.register_object_type(ObjectTypeDef {
            name: "Impl".into(),
            inheritor_in: vec!["AllOf_If".into()],
            ..Default::default()
        })
        .unwrap();
        c
    }

    #[test]
    fn committed_transactions_survive_restart() {
        let dir = tempfile::tempdir().unwrap();
        let (interface, imp);
        {
            let pdb = PersistentDatabase::create(dir.path(), ObjectStore::new(catalog()).unwrap())
                .unwrap();
            let tx = pdb.begin("alice");
            interface = pdb
                .create_object(&tx, "If", vec![("Length", Value::Int(5))])
                .unwrap();
            imp = pdb.create_object(&tx, "Impl", vec![]).unwrap();
            pdb.bind(&tx, "AllOf_If", interface, imp).unwrap();
            pdb.commit(tx).unwrap();
            // Crash (no checkpoint).
        }
        let pdb = PersistentDatabase::open(dir.path()).unwrap();
        let tx = pdb.begin("bob");
        assert_eq!(pdb.read_attr(&tx, imp, "Length").unwrap(), Value::Int(5));
        pdb.db().commit(tx);
    }

    #[test]
    fn aborted_transactions_leave_no_trace() {
        let dir = tempfile::tempdir().unwrap();
        let interface;
        {
            let pdb = PersistentDatabase::create(dir.path(), ObjectStore::new(catalog()).unwrap())
                .unwrap();
            let tx = pdb.begin("alice");
            interface = pdb
                .create_object(&tx, "If", vec![("Length", Value::Int(5))])
                .unwrap();
            pdb.commit(tx).unwrap();
            let tx = pdb.begin("alice");
            pdb.write_attr(&tx, interface, "Length", Value::Int(99))
                .unwrap();
            let ghost = pdb.create_object(&tx, "If", vec![]).unwrap();
            pdb.abort(tx);
            assert!(pdb.db().with_store(|st| st.object(ghost).is_err()));
        }
        let pdb = PersistentDatabase::open(dir.path()).unwrap();
        assert_eq!(
            pdb.db()
                .with_store(|st| st.attr(interface, "Length").unwrap()),
            Value::Int(5)
        );
        assert_eq!(pdb.db().with_store(|st| st.object_count()), 1);
    }

    #[test]
    fn unbind_deletes_the_relationship_record() {
        let dir = tempfile::tempdir().unwrap();
        let (interface, imp);
        {
            let pdb = PersistentDatabase::create(dir.path(), ObjectStore::new(catalog()).unwrap())
                .unwrap();
            let tx = pdb.begin("alice");
            interface = pdb
                .create_object(&tx, "If", vec![("Length", Value::Int(5))])
                .unwrap();
            imp = pdb.create_object(&tx, "Impl", vec![]).unwrap();
            pdb.bind(&tx, "AllOf_If", interface, imp).unwrap();
            pdb.commit(tx).unwrap();
            let rel = pdb
                .db()
                .with_store(|st| st.binding_of(imp, "AllOf_If").unwrap());
            let tx = pdb.begin("alice");
            pdb.unbind(&tx, rel).unwrap();
            pdb.commit(tx).unwrap();
        }
        let pdb = PersistentDatabase::open(dir.path()).unwrap();
        pdb.db().with_store(|st| {
            assert_eq!(
                st.attr(imp, "Length").unwrap(),
                Value::Missing,
                "binding gone"
            );
            assert!(st.binding_of(imp, "AllOf_If").is_none());
            assert!(st.object(interface).is_ok());
        });
    }

    #[test]
    fn subobject_creation_persists_the_parent_membership() {
        let dir = tempfile::tempdir().unwrap();
        let (interface, pin);
        {
            let pdb = PersistentDatabase::create(dir.path(), ObjectStore::new(catalog()).unwrap())
                .unwrap();
            let tx = pdb.begin("alice");
            interface = pdb.create_object(&tx, "If", vec![]).unwrap();
            pdb.commit(tx).unwrap();
            pdb.checkpoint().unwrap();
            let tx = pdb.begin("alice");
            pin = pdb
                .create_subobject(&tx, interface, "Pins", vec![("Id", Value::Int(1))])
                .unwrap();
            pdb.commit(tx).unwrap();
        }
        let pdb = PersistentDatabase::open(dir.path()).unwrap();
        pdb.db().with_store(|st| {
            assert_eq!(st.subclass_members(interface, "Pins").unwrap(), vec![pin]);
        });
    }
}

#[cfg(test)]
mod delete_tests {
    use super::*;
    use ccdb_core::domain::Domain;
    use ccdb_core::schema::{AttrDef, Catalog, ObjectTypeDef, SubclassSpec};

    #[test]
    fn committed_deletes_are_durable() {
        let mut c = Catalog::new();
        c.register_object_type(ObjectTypeDef {
            name: "Pin".into(),
            attributes: vec![AttrDef::new("Id", Domain::Int)],
            ..Default::default()
        })
        .unwrap();
        c.register_object_type(ObjectTypeDef {
            name: "Gate".into(),
            subclasses: vec![SubclassSpec {
                name: "Pins".into(),
                element_type: "Pin".into(),
            }],
            ..Default::default()
        })
        .unwrap();
        let dir = tempfile::tempdir().unwrap();
        let (gate, pin, survivor);
        {
            let pdb = PersistentDatabase::create(dir.path(), ObjectStore::new(c).unwrap()).unwrap();
            let tx = pdb.begin("alice");
            gate = pdb.create_object(&tx, "Gate", vec![]).unwrap();
            pin = pdb
                .create_subobject(&tx, gate, "Pins", vec![("Id", Value::Int(1))])
                .unwrap();
            survivor = pdb.create_object(&tx, "Gate", vec![]).unwrap();
            pdb.commit(tx).unwrap();
            let tx = pdb.begin("alice");
            pdb.db().delete(&tx, gate).unwrap();
            pdb.commit(tx).unwrap();
        }
        let pdb = PersistentDatabase::open(dir.path()).unwrap();
        pdb.db().with_store(|st| {
            assert!(st.object(gate).is_err());
            assert!(st.object(pin).is_err(), "cascade persisted");
            assert!(st.object(survivor).is_ok());
        });
    }
}
