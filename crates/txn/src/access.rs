//! Access control manager (§6).
//!
//! The paper requires a *tight connection* between access control and
//! locking: "if objects are to be locked implicitly by complex operations
//! the access control manager should be consulted to grant no lock which
//! allows more operations than the access control admits" — e.g. a user
//! expanding a chip gets only read locks on customized standard cells.
//!
//! Rights are granted per user on individual objects, on named classes, or
//! as a default; object grants override class grants override the default.

use std::collections::HashMap;

use ccdb_core::Surrogate;

use crate::lock::LockMode;

/// What a user may do with an object.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Right {
    /// No access at all.
    None,
    /// Read-only access (the paper's protected "standard objects").
    Read,
    /// Full read/update access.
    Update,
}

impl Right {
    /// The strongest lock mode this right admits.
    pub fn max_mode(self) -> Option<LockMode> {
        match self {
            Right::None => None,
            Right::Read => Some(LockMode::S),
            Right::Update => Some(LockMode::X),
        }
    }

    /// Cap a requested mode to this right. `None` = not even readable.
    pub fn cap(self, requested: LockMode) -> Option<LockMode> {
        match self {
            Right::None => None,
            Right::Update => Some(requested),
            Right::Read => Some(match requested {
                LockMode::X | LockMode::SIX | LockMode::S => LockMode::S,
                LockMode::IX | LockMode::IS => LockMode::IS,
            }),
        }
    }
}

/// Per-user rights registry.
#[derive(Clone, Debug, Default)]
pub struct AccessControl {
    default_right: HashMap<String, Right>,
    class_rights: HashMap<(String, String), Right>,
    object_rights: HashMap<(String, Surrogate), Right>,
}

impl AccessControl {
    /// Empty registry: unknown users get [`Right::Update`] everywhere
    /// (access control is opt-in, as in the paper's scenario where only
    /// standard cells are protected).
    pub fn new() -> Self {
        AccessControl::default()
    }

    /// Set a user's default right.
    pub fn set_default(&mut self, user: &str, right: Right) {
        self.default_right.insert(user.to_string(), right);
    }

    /// Grant a right on all members of a named class.
    pub fn grant_class(&mut self, user: &str, class: &str, right: Right) {
        self.class_rights
            .insert((user.to_string(), class.to_string()), right);
    }

    /// Grant a right on one object.
    pub fn grant_object(&mut self, user: &str, obj: Surrogate, right: Right) {
        self.object_rights.insert((user.to_string(), obj), right);
    }

    /// Effective right of `user` on `obj` (member of `classes`).
    pub fn right(&self, user: &str, obj: Surrogate, classes: &[&str]) -> Right {
        if let Some(r) = self.object_rights.get(&(user.to_string(), obj)) {
            return *r;
        }
        let mut best: Option<Right> = None;
        for c in classes {
            if let Some(r) = self.class_rights.get(&(user.to_string(), c.to_string())) {
                best = Some(best.map_or(*r, |b| b.max(*r)));
            }
        }
        if let Some(r) = best {
            return r;
        }
        self.default_right
            .get(user)
            .copied()
            .unwrap_or(Right::Update)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rights_cap_lock_modes() {
        assert_eq!(Right::Read.cap(LockMode::X), Some(LockMode::S));
        assert_eq!(Right::Read.cap(LockMode::S), Some(LockMode::S));
        assert_eq!(Right::Read.cap(LockMode::IX), Some(LockMode::IS));
        assert_eq!(Right::Update.cap(LockMode::X), Some(LockMode::X));
        assert_eq!(Right::None.cap(LockMode::S), None);
        assert_eq!(Right::Read.max_mode(), Some(LockMode::S));
    }

    #[test]
    fn precedence_object_over_class_over_default() {
        let mut ac = AccessControl::new();
        ac.set_default("eve", Right::None);
        ac.grant_class("eve", "StandardCells", Right::Read);
        ac.grant_object("eve", Surrogate(7), Right::Update);
        assert_eq!(ac.right("eve", Surrogate(1), &[]), Right::None);
        assert_eq!(
            ac.right("eve", Surrogate(2), &["StandardCells"]),
            Right::Read
        );
        assert_eq!(
            ac.right("eve", Surrogate(7), &["StandardCells"]),
            Right::Update
        );
    }

    #[test]
    fn unknown_users_default_to_update() {
        let ac = AccessControl::new();
        assert_eq!(ac.right("nobody", Surrogate(1), &[]), Right::Update);
    }

    #[test]
    fn strongest_class_right_wins() {
        let mut ac = AccessControl::new();
        ac.grant_class("amy", "A", Right::Read);
        ac.grant_class("amy", "B", Right::Update);
        assert_eq!(ac.right("amy", Surrogate(1), &["A", "B"]), Right::Update);
    }
}
