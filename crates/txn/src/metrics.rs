//! Process-global metric handles for ccdb-txn, registered in the
//! [`ccdb_obs::global`] registry under `ccdb_txn_*` names.
//!
//! Per-[`crate::LockManager`] counters (the [`crate::LockStats`] view)
//! stay per-instance; these handles aggregate across every lock manager
//! in the process.

use std::sync::{Arc, OnceLock};

use ccdb_obs::{Counter, Histogram};

pub(crate) struct TxnMetrics {
    /// `ccdb_txn_lock_grants_total`
    pub grants: Arc<Counter>,
    /// `ccdb_txn_lock_waits_total`
    pub waits: Arc<Counter>,
    /// `ccdb_txn_lock_deadlocks_total`
    pub deadlocks: Arc<Counter>,
    /// `ccdb_txn_lock_timeouts_total`
    pub timeouts: Arc<Counter>,
    /// `ccdb_txn_lock_released_total` — release_all calls.
    pub released: Arc<Counter>,
    /// `ccdb_txn_lock_acquire_latency_ns` — blocking acquire() latency.
    pub acquire_latency: Arc<Histogram>,
    /// `ccdb_txn_wire_begins_total` — wire transactions opened.
    pub wire_begins: Arc<Counter>,
    /// `ccdb_txn_wire_commits_total` — wire transactions committed.
    pub wire_commits: Arc<Counter>,
    /// `ccdb_txn_wire_aborts_total` — wire transactions aborted (explicit,
    /// disconnect, lock failure, or commit conflict).
    pub wire_aborts: Arc<Counter>,
    /// `ccdb_txn_wire_conflicts_total` — commits refused by
    /// first-committer-wins validation.
    pub wire_conflicts: Arc<Counter>,
}

pub(crate) fn txn_metrics() -> &'static TxnMetrics {
    static METRICS: OnceLock<TxnMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = ccdb_obs::global();
        TxnMetrics {
            grants: r.counter("ccdb_txn_lock_grants_total"),
            waits: r.counter("ccdb_txn_lock_waits_total"),
            deadlocks: r.counter("ccdb_txn_lock_deadlocks_total"),
            timeouts: r.counter("ccdb_txn_lock_timeouts_total"),
            released: r.counter("ccdb_txn_lock_released_total"),
            acquire_latency: r.histogram(
                "ccdb_txn_lock_acquire_latency_ns",
                ccdb_obs::metrics::LATENCY_BUCKETS_NS,
            ),
            wire_begins: r.counter("ccdb_txn_wire_begins_total"),
            wire_commits: r.counter("ccdb_txn_wire_commits_total"),
            wire_aborts: r.counter("ccdb_txn_wire_aborts_total"),
            wire_conflicts: r.counter("ccdb_txn_wire_conflicts_total"),
        }
    })
}
