//! Long design transactions (§6, after \[KSUW85\]/\[KLMP84\]).
//!
//! A designer *checks out* a set of objects into a private workspace, works
//! on the copies for an arbitrarily long time (days, in CAD practice),
//! and *checks in* the result. Check-in is optimistic: it fails if another
//! check-in modified one of the same objects meanwhile — short 2PL locks
//! would be disastrous at design-session granularity, as the paper notes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use ccdb_core::object::ObjectData;
use ccdb_core::store::ObjectStore;
use ccdb_core::{CoreError, Surrogate, Value};
use parking_lot::Mutex;

/// Errors of the design-transaction layer.
#[derive(Debug)]
pub enum DesignError {
    /// The object changed since checkout; the workspace must be rebased.
    StaleCheckin {
        /// The conflicting object.
        object: Surrogate,
    },
    /// The object was not part of this checkout.
    NotCheckedOut(Surrogate),
    /// Underlying model error.
    Core(CoreError),
}

impl std::fmt::Display for DesignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DesignError::StaleCheckin { object } => {
                write!(f, "stale check-in: {object} changed since checkout")
            }
            DesignError::NotCheckedOut(s) => write!(f, "object {s} is not checked out"),
            DesignError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DesignError {}

impl From<CoreError> for DesignError {
    fn from(e: CoreError) -> Self {
        DesignError::Core(e)
    }
}

/// Version stamps for optimistic check-in.
#[derive(Default)]
pub struct StampRegistry {
    stamps: Mutex<HashMap<Surrogate, u64>>,
    clock: AtomicU64,
}

impl StampRegistry {
    /// Fresh registry.
    pub fn new() -> Self {
        StampRegistry::default()
    }

    /// Current stamp of an object (0 = never stamped).
    pub fn stamp(&self, s: Surrogate) -> u64 {
        self.stamps.lock().get(&s).copied().unwrap_or(0)
    }

    /// Bump an object's stamp (called on every check-in write).
    pub fn bump(&self, s: Surrogate) -> u64 {
        let t = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        self.stamps.lock().insert(s, t);
        t
    }
}

/// A private workspace holding checked-out copies.
pub struct DesignTxn {
    /// Designer name (for reports).
    pub designer: String,
    base: HashMap<Surrogate, u64>,
    workspace: HashMap<Surrogate, ObjectData>,
}

impl DesignTxn {
    /// Check the given objects out of `store` into a private workspace.
    pub fn checkout(
        designer: &str,
        store: &ObjectStore,
        stamps: &StampRegistry,
        objects: &[Surrogate],
    ) -> Result<Self, DesignError> {
        let mut base = HashMap::new();
        let mut workspace = HashMap::new();
        for &s in objects {
            let data = store.object(s)?.clone();
            base.insert(s, stamps.stamp(s));
            workspace.insert(s, data);
        }
        Ok(DesignTxn {
            designer: designer.to_string(),
            base,
            workspace,
        })
    }

    /// Objects in this workspace.
    pub fn objects(&self) -> impl Iterator<Item = Surrogate> + '_ {
        self.workspace.keys().copied()
    }

    /// Read an attribute from the private copy.
    pub fn attr(&self, obj: Surrogate, name: &str) -> Result<Value, DesignError> {
        let o = self
            .workspace
            .get(&obj)
            .ok_or(DesignError::NotCheckedOut(obj))?;
        Ok(o.attrs.get(name).cloned().unwrap_or(Value::Missing))
    }

    /// Update an attribute on the private copy (no locks held meanwhile).
    pub fn set_attr(
        &mut self,
        obj: Surrogate,
        name: &str,
        value: Value,
    ) -> Result<(), DesignError> {
        let o = self
            .workspace
            .get_mut(&obj)
            .ok_or(DesignError::NotCheckedOut(obj))?;
        o.attrs.insert(name.to_string(), value);
        Ok(())
    }

    /// Optimistic check-in: verify stamps, then write modified attributes
    /// back through the store's normal (validated) write path.
    pub fn checkin(
        self,
        store: &mut ObjectStore,
        stamps: &StampRegistry,
    ) -> Result<(), DesignError> {
        // Validate first — all-or-nothing.
        for (&s, &base_stamp) in &self.base {
            if stamps.stamp(s) != base_stamp {
                return Err(DesignError::StaleCheckin { object: s });
            }
            store.object(s)?; // still alive?
        }
        for (&s, copy) in &self.workspace {
            let current = store.object(s)?.clone();
            for (attr, value) in &copy.attrs {
                if current.attrs.get(attr) != Some(value) {
                    store.set_attr(s, attr, value.clone())?;
                }
            }
            stamps.bump(s);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdb_core::domain::Domain;
    use ccdb_core::schema::{AttrDef, Catalog, ObjectTypeDef};

    fn store_with_part() -> (ObjectStore, Surrogate) {
        let mut c = Catalog::new();
        c.register_object_type(ObjectTypeDef {
            name: "Part".into(),
            attributes: vec![
                AttrDef::new("X", Domain::Int),
                AttrDef::new("Y", Domain::Int),
            ],
            ..Default::default()
        })
        .unwrap();
        let mut st = ObjectStore::new(c).unwrap();
        let p = st
            .create_object("Part", vec![("X", Value::Int(1))])
            .unwrap();
        (st, p)
    }

    #[test]
    fn checkout_modify_checkin() {
        let (mut st, p) = store_with_part();
        let stamps = StampRegistry::new();
        let mut txn = DesignTxn::checkout("alice", &st, &stamps, &[p]).unwrap();
        txn.set_attr(p, "X", Value::Int(42)).unwrap();
        assert_eq!(txn.attr(p, "X").unwrap(), Value::Int(42));
        // The store is untouched while the designer works.
        assert_eq!(st.attr(p, "X").unwrap(), Value::Int(1));
        txn.checkin(&mut st, &stamps).unwrap();
        assert_eq!(st.attr(p, "X").unwrap(), Value::Int(42));
    }

    #[test]
    fn concurrent_designers_first_wins() {
        let (mut st, p) = store_with_part();
        let stamps = StampRegistry::new();
        let mut alice = DesignTxn::checkout("alice", &st, &stamps, &[p]).unwrap();
        let mut bob = DesignTxn::checkout("bob", &st, &stamps, &[p]).unwrap();
        alice.set_attr(p, "X", Value::Int(10)).unwrap();
        bob.set_attr(p, "X", Value::Int(20)).unwrap();
        alice.checkin(&mut st, &stamps).unwrap();
        let err = bob.checkin(&mut st, &stamps).unwrap_err();
        assert!(matches!(err, DesignError::StaleCheckin { object } if object == p));
        assert_eq!(st.attr(p, "X").unwrap(), Value::Int(10));
    }

    #[test]
    fn disjoint_checkouts_do_not_conflict() {
        let (mut st, p) = store_with_part();
        let q = st.create_object("Part", vec![]).unwrap();
        let stamps = StampRegistry::new();
        let mut alice = DesignTxn::checkout("alice", &st, &stamps, &[p]).unwrap();
        let mut bob = DesignTxn::checkout("bob", &st, &stamps, &[q]).unwrap();
        alice.set_attr(p, "X", Value::Int(10)).unwrap();
        bob.set_attr(q, "X", Value::Int(20)).unwrap();
        alice.checkin(&mut st, &stamps).unwrap();
        bob.checkin(&mut st, &stamps).unwrap();
        assert_eq!(st.attr(p, "X").unwrap(), Value::Int(10));
        assert_eq!(st.attr(q, "X").unwrap(), Value::Int(20));
    }

    #[test]
    fn touching_foreign_objects_rejected() {
        let (st, p) = store_with_part();
        let stamps = StampRegistry::new();
        let mut txn = DesignTxn::checkout("alice", &st, &stamps, &[]).unwrap();
        assert!(matches!(
            txn.set_attr(p, "X", Value::Int(1)),
            Err(DesignError::NotCheckedOut(_))
        ));
        assert!(matches!(
            txn.attr(p, "X"),
            Err(DesignError::NotCheckedOut(_))
        ));
    }

    #[test]
    fn checkin_goes_through_validated_write_path() {
        let (mut st, p) = store_with_part();
        let stamps = StampRegistry::new();
        let mut txn = DesignTxn::checkout("alice", &st, &stamps, &[p]).unwrap();
        // A domain-violating private edit is caught at check-in.
        txn.set_attr(p, "X", Value::Bool(true)).unwrap();
        let err = txn.checkin(&mut st, &stamps).unwrap_err();
        assert!(matches!(
            err,
            DesignError::Core(CoreError::DomainMismatch { .. })
        ));
    }
}
