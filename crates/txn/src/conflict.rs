//! Relationship-based conflict detection (§6).
//!
//! "The explicitly defined relationships between objects can be used to
//! identify potential conflicts (two update transactions are working on
//! objects which are related to each other)." Given the write sets of two
//! transactions, [`potential_conflicts`] reports pairs of written objects
//! that are connected by a model edge — the same object, an inheritance
//! binding, a relationship participation, or complex-object ownership.

use std::collections::HashSet;

use ccdb_core::object::ObjectKind;
use ccdb_core::store::ObjectStore;
use ccdb_core::Surrogate;

/// Why two written objects are considered related.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ConflictKind {
    /// The very same object.
    SameObject,
    /// Transmitter/inheritor of one inheritance relationship.
    InheritanceEdge,
    /// Participants of (or participant + the relationship object itself of)
    /// one relationship.
    RelationshipEdge,
    /// Owner and subobject of one complex object.
    OwnershipEdge,
}

/// A reported potential conflict.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PotentialConflict {
    /// Object written by the first transaction.
    pub a: Surrogate,
    /// Object written by the second transaction.
    pub b: Surrogate,
    /// The connecting edge.
    pub kind: ConflictKind,
}

/// Objects adjacent to `s` via model edges, each tagged with the edge kind.
fn neighbours(store: &ObjectStore, s: Surrogate) -> Vec<(Surrogate, ConflictKind)> {
    let mut out = Vec::new();
    let Ok(o) = store.object(s) else { return out };
    // Ownership edges (both directions).
    if let Some(owner) = &o.owner {
        out.push((owner.parent, ConflictKind::OwnershipEdge));
    }
    for m in o.all_subclass_members() {
        out.push((m, ConflictKind::OwnershipEdge));
    }
    // Inheritance edges: this object as inheritor…
    for rel in o.bindings.values() {
        if let Ok(r) = store.object(*rel) {
            if let Some(t) = r.transmitter() {
                out.push((t, ConflictKind::InheritanceEdge));
            }
        }
    }
    // …and as transmitter.
    for rel in store.inheritance_rels_of(s) {
        if let Ok(r) = store.object(*rel) {
            if let Some(i) = r.inheritor() {
                out.push((i, ConflictKind::InheritanceEdge));
            }
        }
    }
    // Relationship edges: the relationship object's participants, and — for
    // plain objects — co-participants through every relationship they are
    // part of (two bolts joined by one screwing are potential conflicts).
    match &o.kind {
        ObjectKind::Relationship { participants } => {
            for members in participants.values() {
                for m in members {
                    out.push((*m, ConflictKind::RelationshipEdge));
                }
            }
        }
        _ => {
            for rel in store.relationships_of(s) {
                out.push((*rel, ConflictKind::RelationshipEdge));
                if let Ok(r) = store.object(*rel) {
                    if let ObjectKind::Relationship { participants } = &r.kind {
                        for members in participants.values() {
                            for m in members {
                                if *m != s {
                                    out.push((*m, ConflictKind::RelationshipEdge));
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

/// Report written-object pairs of `writes_a` × `writes_b` connected by a
/// model edge (directly, or via one shared relationship object).
pub fn potential_conflicts(
    store: &ObjectStore,
    writes_a: &[Surrogate],
    writes_b: &[Surrogate],
) -> Vec<PotentialConflict> {
    let set_b: HashSet<Surrogate> = writes_b.iter().copied().collect();
    let mut out = Vec::new();
    for &a in writes_a {
        if set_b.contains(&a) {
            out.push(PotentialConflict {
                a,
                b: a,
                kind: ConflictKind::SameObject,
            });
        }
        for (n, kind) in neighbours(store, a) {
            if set_b.contains(&n) {
                out.push(PotentialConflict { a, b: n, kind });
            }
        }
    }
    out.sort_by_key(|c| (c.a, c.b));
    out.dedup_by_key(|c| (c.a, c.b));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdb_core::domain::Domain;
    use ccdb_core::schema::{
        AttrDef, Catalog, InherRelTypeDef, ObjectTypeDef, ParticipantSpec, RelTypeDef, SubclassSpec,
    };

    fn setup() -> (ObjectStore, Surrogate, Surrogate, Surrogate, Surrogate) {
        let mut c = Catalog::new();
        c.register_object_type(ObjectTypeDef {
            name: "Part".into(),
            attributes: vec![AttrDef::new("X", Domain::Int)],
            subclasses: vec![SubclassSpec {
                name: "Subs".into(),
                element_type: "Part".into(),
            }],
            ..Default::default()
        })
        .unwrap();
        c.register_inher_rel_type(InherRelTypeDef {
            name: "AllOf_Part".into(),
            transmitter_type: "Part".into(),
            inheritor_type: None,
            inheriting: vec!["X".into()],
            attributes: vec![],
            constraints: vec![],
        })
        .unwrap();
        c.register_object_type(ObjectTypeDef {
            name: "User".into(),
            inheritor_in: vec!["AllOf_Part".into()],
            ..Default::default()
        })
        .unwrap();
        c.register_rel_type(RelTypeDef {
            name: "Link".into(),
            participants: vec![
                ParticipantSpec::one("A", "Part"),
                ParticipantSpec::one("B", "Part"),
            ],
            ..Default::default()
        })
        .unwrap();
        let mut st = ObjectStore::new(c).unwrap();
        let part = st.create_object("Part", vec![]).unwrap();
        let sub = st.create_subobject(part, "Subs", vec![]).unwrap();
        let user = st.create_object("User", vec![]).unwrap();
        st.bind("AllOf_Part", part, user, vec![]).unwrap();
        let other = st.create_object("Part", vec![]).unwrap();
        (st, part, sub, user, other)
    }

    #[test]
    fn same_object_conflict() {
        let (st, part, ..) = setup();
        let cs = potential_conflicts(&st, &[part], &[part]);
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].kind, ConflictKind::SameObject);
    }

    #[test]
    fn inheritance_edge_conflict() {
        let (st, part, _, user, _) = setup();
        let cs = potential_conflicts(&st, &[part], &[user]);
        assert!(
            cs.iter().any(|c| c.kind == ConflictKind::InheritanceEdge),
            "{cs:?}"
        );
        // Symmetric.
        let cs = potential_conflicts(&st, &[user], &[part]);
        assert!(cs.iter().any(|c| c.kind == ConflictKind::InheritanceEdge));
    }

    #[test]
    fn ownership_edge_conflict() {
        let (st, part, sub, ..) = setup();
        let cs = potential_conflicts(&st, &[sub], &[part]);
        assert!(cs.iter().any(|c| c.kind == ConflictKind::OwnershipEdge));
    }

    #[test]
    fn relationship_edge_via_rel_object() {
        let (mut st, part, _, _, other) = setup();
        let link = st
            .create_rel("Link", vec![("A", vec![part]), ("B", vec![other])], vec![])
            .unwrap();
        // A txn writing the relationship object conflicts with one writing
        // a participant.
        let cs = potential_conflicts(&st, &[link], &[other]);
        assert!(
            cs.iter().any(|c| c.kind == ConflictKind::RelationshipEdge),
            "{cs:?}"
        );
    }

    #[test]
    fn co_participants_conflict_through_the_relationship() {
        let (mut st, part, _, _, other) = setup();
        st.create_rel("Link", vec![("A", vec![part]), ("B", vec![other])], vec![])
            .unwrap();
        // Neither write set contains the relationship object itself, but the
        // two participants are still related through it.
        let cs = potential_conflicts(&st, &[part], &[other]);
        assert!(
            cs.iter().any(|c| c.kind == ConflictKind::RelationshipEdge),
            "{cs:?}"
        );
    }

    #[test]
    fn unrelated_objects_do_not_conflict() {
        let (st, part, _, _, other) = setup();
        assert!(potential_conflicts(&st, &[part], &[other]).is_empty());
        assert!(potential_conflicts(&st, &[], &[part]).is_empty());
    }
}
