//! Wire-transaction sessions: `begin`/`commit`/`abort` for server
//! connections over a [`SharedStore`].
//!
//! The [`crate::txn::Database`] API is handle-based and designed for
//! embedded callers; a network server instead needs transactions keyed by
//! *session* (one per connection) with crash-safe cleanup when the peer
//! disappears. [`TxnRegistry`] provides that layer, combining the two
//! mechanisms this codebase has for §6 semantics:
//!
//! - **Pessimistic item locks with lock inheritance** (paper §6): an
//!   in-transaction read S-locks every `(object, item)` pair of the
//!   attribute's resolution chain — the permeability-filtered closure a
//!   composite's read actually depends on — and an in-transaction write
//!   X-locks the written item. Lock requests from other transactions on
//!   any part of that closure conflict exactly as the paper prescribes,
//!   with deadlock detection and timeouts from [`crate::LockManager`].
//! - **First-committer-wins validation against the begin snapshot**
//!   (MVCC): plain, non-transactional writers bypass the lock manager
//!   entirely, so at commit each buffered write is validated against the
//!   store's per-`(object, attr)` write stamps — if anyone published a
//!   newer version of an item this transaction wrote, the commit fails
//!   with a conflict and the transaction aborts.
//!
//! A transaction executes against a private **workspace**: a
//! copy-on-write clone of the begin snapshot (structural sharing makes
//! this cheap) with a detached resolution cache, so the transaction reads
//! its own uncommitted writes with full inheritance semantics while the
//! published store never sees them. Commit replays the buffered writes as
//! one atomic write cycle — validated first on a scratch clone, so a
//! half-applied commit is impossible — and the new version is published
//! before the commit reply is sent.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ccdb_core::error::CoreError;
use ccdb_core::shared::SharedStore;
use ccdb_core::store::ObjectStore;
use ccdb_core::{lockprobe, Surrogate, Value};
use parking_lot::Mutex;

use crate::lock::{LockError, LockManager, LockMode, Resource, TxnId};
use crate::metrics::txn_metrics;

/// Why a wire-transaction operation failed.
#[derive(Debug)]
pub enum SessionError {
    /// The session has no open transaction.
    NoTxn,
    /// The session already has an open transaction.
    AlreadyInTxn,
    /// Lock acquisition failed (deadlock or timeout); the transaction has
    /// been aborted and all its locks released.
    Lock(LockError),
    /// Object-model error (the transaction stays open).
    Core(CoreError),
    /// First-committer-wins validation failed: another session published a
    /// newer version of an item this transaction wrote. The transaction
    /// has been aborted.
    WriteConflict {
        /// The contended object.
        obj: Surrogate,
        /// The contended attribute.
        attr: String,
        /// The version that beat this transaction to the item.
        committed_version: u64,
    },
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::NoTxn => write!(f, "no transaction is open on this session"),
            SessionError::AlreadyInTxn => {
                write!(f, "a transaction is already open on this session")
            }
            SessionError::Lock(e) => write!(f, "{e}"),
            SessionError::Core(e) => write!(f, "{e}"),
            SessionError::WriteConflict {
                obj,
                attr,
                committed_version,
            } => write!(
                f,
                "write-write conflict on {obj}.{attr}: version {committed_version} \
                 committed after this transaction began"
            ),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<CoreError> for SessionError {
    fn from(e: CoreError) -> Self {
        SessionError::Core(e)
    }
}

/// Outcome of a successful [`TxnRegistry::commit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitInfo {
    /// The store version this commit published (0 for a read-only
    /// transaction, which publishes nothing).
    pub version: u64,
    /// Buffered writes replayed.
    pub writes: usize,
}

/// State of one open wire transaction.
struct SessionTxn {
    id: TxnId,
    begin_version: u64,
    /// COW clone of the begin snapshot with the transaction's own writes
    /// applied (read-your-own-writes with full resolution semantics).
    workspace: ObjectStore,
    /// Buffered writes in arrival order, replayed at commit.
    writes: Vec<(Surrogate, String, Value)>,
}

/// Per-server registry of wire transactions, keyed by session id.
///
/// The outer map lock is held only for entry bookkeeping; each session's
/// state sits behind its own mutex, so one session blocked in a lock wait
/// never stalls another session's begin/commit/abort.
pub struct TxnRegistry {
    locks: Arc<LockManager>,
    next: AtomicU64,
    sessions: Mutex<HashMap<u64, Arc<Mutex<SessionTxn>>>>,
}

impl Default for TxnRegistry {
    fn default() -> Self {
        TxnRegistry::new()
    }
}

impl TxnRegistry {
    /// Registry with the lock manager's default wait timeout.
    pub fn new() -> Self {
        TxnRegistry::with_lock_manager(LockManager::new())
    }

    /// Registry with a custom lock-wait timeout (a server usually wants a
    /// shorter leash than an embedded caller).
    pub fn with_timeout(timeout: Duration) -> Self {
        TxnRegistry::with_lock_manager(LockManager::with_timeout(timeout))
    }

    /// Registry over an externally-constructed lock manager.
    pub fn with_lock_manager(locks: LockManager) -> Self {
        TxnRegistry {
            locks: Arc::new(locks),
            next: AtomicU64::new(1),
            sessions: Mutex::new(HashMap::new()),
        }
    }

    /// The underlying lock manager (stats/diagnostics).
    pub fn locks(&self) -> &LockManager {
        &self.locks
    }

    /// Number of open wire transactions.
    pub fn active(&self) -> usize {
        self.sessions.lock().len()
    }

    /// Does `session` have an open transaction?
    pub fn in_txn(&self, session: u64) -> bool {
        self.sessions.lock().contains_key(&session)
    }

    fn entry(&self, session: u64) -> Result<Arc<Mutex<SessionTxn>>, SessionError> {
        self.sessions
            .lock()
            .get(&session)
            .cloned()
            .ok_or(SessionError::NoTxn)
    }

    /// Acquire a lock for the transaction, charging the wait to the worker
    /// thread's `lock` phase accumulator. On failure the whole transaction
    /// is dead by 2PL rules, so the caller must abort it.
    fn acquire(&self, txn: TxnId, res: Resource, mode: LockMode) -> Result<(), LockError> {
        let t0 = Instant::now();
        let out = self.locks.acquire(txn, res, mode);
        lockprobe::charge_exclusive_wait(
            u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
        );
        out
    }

    /// Open a transaction on `session`, pinning the current published
    /// version as its begin snapshot. Returns `(txn_id, begin_version)`.
    pub fn begin(&self, session: u64, store: &SharedStore) -> Result<(u64, u64), SessionError> {
        let mut sessions = self.sessions.lock();
        if sessions.contains_key(&session) {
            return Err(SessionError::AlreadyInTxn);
        }
        let snap = store.snapshot();
        let begin_version = snap.version();
        let mut workspace = (*snap).clone();
        workspace.detach_resolution_cache();
        let id = TxnId(self.next.fetch_add(1, Ordering::Relaxed));
        sessions.insert(
            session,
            Arc::new(Mutex::new(SessionTxn {
                id,
                begin_version,
                workspace,
                writes: Vec::new(),
            })),
        );
        txn_metrics().wire_begins.inc();
        Ok((id.0, begin_version))
    }

    /// In-transaction attribute read under §6 lock inheritance: S-locks
    /// every `(object, item)` of the resolution chain — computed on the
    /// workspace, so it follows the transaction's own uncommitted
    /// bindings — then resolves against the workspace.
    pub fn read_attr(
        &self,
        session: u64,
        obj: Surrogate,
        attr: &str,
    ) -> Result<Value, SessionError> {
        let entry = self.entry(session)?;
        let st = entry.lock();
        let chain = st.workspace.resolution_chain(obj, attr)?;
        for (o, item) in &chain {
            if let Err(e) = self.acquire(st.id, Resource::Item(*o, item.clone()), LockMode::S) {
                drop(st);
                self.abort(session).ok();
                return Err(SessionError::Lock(e));
            }
        }
        Ok(st.workspace.attr(obj, attr)?)
    }

    /// In-transaction local write: X-locks the written item, applies the
    /// write to the workspace (visible to this session's later reads),
    /// and buffers it for replay at commit.
    pub fn set_attr(
        &self,
        session: u64,
        obj: Surrogate,
        attr: &str,
        value: Value,
    ) -> Result<(), SessionError> {
        let entry = self.entry(session)?;
        let mut st = entry.lock();
        if let Err(e) = self.acquire(st.id, Resource::Item(obj, attr.to_string()), LockMode::X) {
            drop(st);
            self.abort(session).ok();
            return Err(SessionError::Lock(e));
        }
        st.workspace.set_attr(obj, attr, value.clone())?;
        st.writes.push((obj, attr.to_string(), value));
        Ok(())
    }

    /// Commit: validate every buffered write against the master's write
    /// stamps (first-committer-wins vs. the begin version), replay them as
    /// one atomic write cycle, publish, and release all locks — including
    /// the inherited S-locks along every resolution chain this transaction
    /// read. On conflict the transaction is aborted and nothing is
    /// published from it.
    pub fn commit(&self, session: u64, store: &SharedStore) -> Result<CommitInfo, SessionError> {
        let Some(entry) = self.sessions.lock().remove(&session) else {
            return Err(SessionError::NoTxn);
        };
        let st = entry.lock();
        if st.writes.is_empty() {
            // Read-only: nothing to validate or publish.
            self.locks.release_all(st.id);
            txn_metrics().wire_commits.inc();
            return Ok(CommitInfo {
                version: 0,
                writes: 0,
            });
        }
        let outcome: Result<u64, SessionError> = store.write(|master| {
            for (obj, attr, _) in &st.writes {
                let stamped = master.write_stamp(*obj, attr);
                if stamped > st.begin_version {
                    return Err(SessionError::WriteConflict {
                        obj: *obj,
                        attr: attr.clone(),
                        committed_version: stamped,
                    });
                }
            }
            // Dry-run on a scratch COW clone so a failing write (object
            // deleted since begin, domain violation through a rebind, ...)
            // rejects the whole commit with the master untouched.
            let mut scratch = master.clone();
            scratch.detach_resolution_cache();
            for (obj, attr, value) in &st.writes {
                scratch.set_attr(*obj, attr, value.clone())?;
            }
            for (obj, attr, value) in &st.writes {
                master
                    .set_attr(*obj, attr, value.clone())
                    .expect("validated on scratch clone");
            }
            Ok(master.version())
        });
        self.locks.release_all(st.id);
        match outcome {
            Ok(version) => {
                txn_metrics().wire_commits.inc();
                Ok(CommitInfo {
                    version,
                    writes: st.writes.len(),
                })
            }
            Err(e) => {
                if matches!(e, SessionError::WriteConflict { .. }) {
                    txn_metrics().wire_conflicts.inc();
                }
                txn_metrics().wire_aborts.inc();
                Err(e)
            }
        }
    }

    /// Abort: discard the workspace and buffered writes, release all locks
    /// (including inherited ones). Returns the number of locks released.
    pub fn abort(&self, session: u64) -> Result<usize, SessionError> {
        let Some(entry) = self.sessions.lock().remove(&session) else {
            return Err(SessionError::NoTxn);
        };
        let st = entry.lock();
        let held = self.locks.held_count(st.id);
        self.locks.release_all(st.id);
        txn_metrics().wire_aborts.inc();
        Ok(held)
    }

    /// Abort `session`'s transaction if it has one — the disconnect/drain
    /// hook. Returns whether a transaction was open.
    pub fn abort_if_any(&self, session: u64) -> bool {
        self.abort(session).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdb_core::domain::Domain;
    use ccdb_core::schema::{AttrDef, Catalog, InherRelTypeDef, ObjectTypeDef};

    fn fixture() -> (SharedStore, Surrogate, Surrogate) {
        let mut c = Catalog::new();
        c.register_object_type(ObjectTypeDef {
            name: "If".into(),
            attributes: vec![AttrDef::new("X", Domain::Int)],
            ..Default::default()
        })
        .unwrap();
        c.register_inher_rel_type(InherRelTypeDef {
            name: "AllOf_If".into(),
            transmitter_type: "If".into(),
            inheritor_type: None,
            inheriting: vec!["X".into()],
            attributes: vec![],
            constraints: vec![],
        })
        .unwrap();
        c.register_object_type(ObjectTypeDef {
            name: "Impl".into(),
            inheritor_in: vec!["AllOf_If".into()],
            attributes: vec![AttrDef::new("Local", Domain::Int)],
            ..Default::default()
        })
        .unwrap();
        let mut st = ObjectStore::new(c).unwrap();
        let interface = st.create_object("If", vec![("X", Value::Int(7))]).unwrap();
        let imp = st
            .create_object("Impl", vec![("Local", Value::Int(1))])
            .unwrap();
        st.bind("AllOf_If", interface, imp, vec![]).unwrap();
        (SharedStore::from_store(st), interface, imp)
    }

    fn quick_registry() -> TxnRegistry {
        TxnRegistry::with_timeout(Duration::from_millis(100))
    }

    #[test]
    fn begin_set_commit_publishes_one_version() {
        let (store, interface, imp) = fixture();
        let reg = quick_registry();
        let before = store.published_version();
        let (_, begin_v) = reg.begin(1, &store).unwrap();
        assert_eq!(begin_v, before);
        reg.set_attr(1, interface, "X", Value::Int(50)).unwrap();
        // Uncommitted: published readers still see the old value...
        assert_eq!(store.attr(imp, "X").unwrap(), Value::Int(7));
        // ...while the transaction reads its own write through inheritance.
        assert_eq!(reg.read_attr(1, imp, "X").unwrap(), Value::Int(50));
        let info = reg.commit(1, &store).unwrap();
        assert_eq!(info.writes, 1);
        assert!(info.version > before);
        assert_eq!(store.attr(imp, "X").unwrap(), Value::Int(50));
        assert_eq!(reg.active(), 0);
    }

    #[test]
    fn abort_discards_writes_and_releases_inherited_locks() {
        let (store, interface, imp) = fixture();
        let reg = quick_registry();
        let (tid, _) = reg.begin(1, &store).unwrap();
        // The read S-locks the whole resolution chain (§6): the
        // transmitter's item is part of the inherited closure.
        reg.read_attr(1, imp, "X").unwrap();
        reg.set_attr(1, imp, "Local", Value::Int(9)).unwrap();
        assert!(
            reg.locks().held_count(TxnId(tid)) >= 2,
            "chain S-locks + write X-lock"
        );
        let released = reg.abort(1).unwrap();
        assert!(released >= 2);
        assert_eq!(reg.locks().held_count(TxnId(tid)), 0);
        assert_eq!(store.attr(imp, "Local").unwrap(), Value::Int(1));
        // The transmitter item is immediately lockable by someone else.
        let (store2, _, _) = (store.clone(), interface, imp);
        reg.begin(2, &store2).unwrap();
        reg.set_attr(2, interface, "X", Value::Int(8)).unwrap();
        reg.commit(2, &store2).unwrap();
        assert_eq!(store.attr(imp, "X").unwrap(), Value::Int(8));
    }

    #[test]
    fn component_write_conflicts_with_composite_read_lock() {
        let (store, interface, imp) = fixture();
        let reg = quick_registry();
        // Session 1 reads the component's inherited attr: S-locks the
        // transmitter's permeable item along the chain.
        reg.begin(1, &store).unwrap();
        reg.read_attr(1, imp, "X").unwrap();
        // Session 2 tries to write that transmitter item: X conflicts with
        // the inherited S lock and times out.
        reg.begin(2, &store).unwrap();
        let err = reg.set_attr(2, interface, "X", Value::Int(0)).unwrap_err();
        assert!(matches!(err, SessionError::Lock(LockError::Timeout { .. })));
        // The failed acquire aborted session 2.
        assert!(!reg.in_txn(2));
        // After session 1 ends, the item is free again.
        reg.abort(1).unwrap();
        reg.begin(3, &store).unwrap();
        reg.set_attr(3, interface, "X", Value::Int(3)).unwrap();
        reg.commit(3, &store).unwrap();
    }

    #[test]
    fn first_committer_wins_against_plain_writers() {
        let (store, interface, imp) = fixture();
        let reg = quick_registry();
        let (tid, begin_v) = reg.begin(1, &store).unwrap();
        reg.set_attr(1, interface, "X", Value::Int(100)).unwrap();
        // A plain (non-transactional) writer slips in after begin — it
        // takes no locks, so only commit-time validation can catch it.
        store.set_attr(interface, "X", Value::Int(55)).unwrap();
        let err = reg.commit(1, &store).unwrap_err();
        match err {
            SessionError::WriteConflict {
                obj,
                attr,
                committed_version,
            } => {
                assert_eq!(obj, interface);
                assert_eq!(attr, "X");
                assert!(committed_version > begin_v);
            }
            other => panic!("expected WriteConflict, got {other}"),
        }
        // The losing transaction is gone and published nothing.
        assert!(!reg.in_txn(1));
        assert_eq!(store.attr(imp, "X").unwrap(), Value::Int(55));
        assert_eq!(reg.locks().held_count(TxnId(tid)), 0);
    }

    #[test]
    fn failing_write_rejects_the_whole_commit_atomically() {
        let (store, interface, imp) = fixture();
        let reg = quick_registry();
        reg.begin(1, &store).unwrap();
        reg.set_attr(1, interface, "X", Value::Int(1)).unwrap();
        reg.set_attr(1, imp, "Local", Value::Int(2)).unwrap();
        // Sabotage the second write: delete the object after begin. (No
        // write stamp is bumped by delete, so stamp validation alone would
        // miss it — the scratch dry-run must catch it.)
        store.write(|st| st.delete_force(imp)).unwrap();
        let err = reg.commit(1, &store).unwrap_err();
        assert!(matches!(err, SessionError::Core(_)), "got {err}");
        // Neither write landed.
        assert_eq!(store.attr(interface, "X").unwrap(), Value::Int(7));
    }

    #[test]
    fn session_bookkeeping_errors() {
        let (store, interface, _) = fixture();
        let reg = quick_registry();
        assert!(matches!(reg.abort(9), Err(SessionError::NoTxn)));
        assert!(matches!(reg.commit(9, &store), Err(SessionError::NoTxn)));
        assert!(matches!(
            reg.set_attr(9, interface, "X", Value::Int(0)),
            Err(SessionError::NoTxn)
        ));
        reg.begin(9, &store).unwrap();
        assert!(matches!(
            reg.begin(9, &store),
            Err(SessionError::AlreadyInTxn)
        ));
        assert!(reg.abort_if_any(9));
        assert!(!reg.abort_if_any(9));
    }

    #[test]
    fn read_only_commit_publishes_nothing() {
        let (store, _, imp) = fixture();
        let reg = quick_registry();
        let before = store.published_version();
        reg.begin(1, &store).unwrap();
        assert_eq!(reg.read_attr(1, imp, "X").unwrap(), Value::Int(7));
        let info = reg.commit(1, &store).unwrap();
        assert_eq!(info.writes, 0);
        assert_eq!(store.published_version(), before);
    }

    #[test]
    fn txn_reads_are_repeatable_against_the_begin_snapshot() {
        let (store, interface, imp) = fixture();
        let reg = TxnRegistry::new();
        reg.begin(1, &store).unwrap();
        assert_eq!(reg.read_attr(1, imp, "X").unwrap(), Value::Int(7));
        // The S lock from the read blocks transactional writers, and the
        // workspace pins the snapshot against plain writers: even after a
        // plain write publishes X=77, this transaction still reads 7.
        store.set_attr(interface, "X", Value::Int(77)).unwrap();
        assert_eq!(reg.read_attr(1, imp, "X").unwrap(), Value::Int(7));
        reg.commit(1, &store).unwrap();
        assert_eq!(store.attr(imp, "X").unwrap(), Value::Int(77));
    }
}
