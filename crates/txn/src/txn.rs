//! The transaction manager: strict two-phase locking over an
//! [`ObjectStore`], with the paper's §6 specifics —
//!
//! - **lock inheritance** opposite to data inheritance: reading an inherited
//!   item read-locks the *(transmitter, item)* pairs along the resolution
//!   chain, not whole transmitters;
//! - **expansion locking**: one operation locks a composite's whole
//!   visibility footprint;
//! - **access-control coupling**: implicit locks taken by expansion are
//!   capped to what the access-control manager admits (standard parts stay
//!   read-locked even inside an update expansion).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use ccdb_core::expand::{expand, expansion_footprint, ExpandedObject};
use ccdb_core::object::ObjectData;
use ccdb_core::store::DeletionRecord;
use ccdb_core::store::ObjectStore;
use ccdb_core::{CoreError, Surrogate, Value};
use parking_lot::{Mutex, RwLock};

use crate::access::{AccessControl, Right};
use crate::lock::{LockError, LockManager, LockMode, Resource, TxnId};

/// Transaction-layer errors.
#[derive(Debug)]
pub enum TxnError {
    /// Locking failed (deadlock/timeout) — caller should abort and retry.
    Lock(LockError),
    /// Object-model error.
    Core(CoreError),
    /// Access control refused the operation.
    AccessDenied {
        /// The requesting user.
        user: String,
        /// The protected object.
        object: Surrogate,
    },
}

impl std::fmt::Display for TxnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TxnError::Lock(e) => write!(f, "{e}"),
            TxnError::Core(e) => write!(f, "{e}"),
            TxnError::AccessDenied { user, object } => {
                write!(f, "access denied: user `{user}` may not update {object}")
            }
        }
    }
}

impl std::error::Error for TxnError {}

impl From<LockError> for TxnError {
    fn from(e: LockError) -> Self {
        TxnError::Lock(e)
    }
}

impl From<CoreError> for TxnError {
    fn from(e: CoreError) -> Self {
        TxnError::Core(e)
    }
}

/// Result alias.
pub type TxnResult<T> = Result<T, TxnError>;

/// What a persistence layer must do at commit (see
/// [`Database::persistence_delta`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PersistenceDelta {
    /// Live objects whose records must be (re)written.
    pub save: Vec<Surrogate>,
    /// Surrogates whose records must be removed.
    pub delete: Vec<Surrogate>,
}

/// Handle of an open transaction.
#[derive(Clone, Debug)]
pub struct TxnHandle {
    /// Lock-manager id.
    pub id: TxnId,
    /// The user on whose behalf the transaction runs.
    pub user: String,
}

enum UndoOp {
    SetAttr {
        obj: Surrogate,
        attr: String,
        old: Value,
    },
    Created {
        obj: Surrogate,
    },
    Bound {
        rel_obj: Surrogate,
    },
    Unbound {
        rel: Box<ObjectData>,
    },
    DeletedTree {
        rec: Box<DeletionRecord>,
        parent: Option<Surrogate>,
    },
}

/// A multi-user database: object store + lock manager + access control.
pub struct Database {
    store: RwLock<ObjectStore>,
    locks: LockManager,
    access: RwLock<AccessControl>,
    next_txn: AtomicU64,
    undo: Mutex<HashMap<TxnId, Vec<UndoOp>>>,
}

impl Database {
    /// Wrap a store.
    pub fn new(store: ObjectStore) -> Self {
        Database {
            store: RwLock::new(store),
            locks: LockManager::new(),
            access: RwLock::new(AccessControl::new()),
            next_txn: AtomicU64::new(1),
            undo: Mutex::new(HashMap::new()),
        }
    }

    /// Use a pre-configured lock manager (e.g. short timeouts in tests).
    pub fn with_lock_manager(store: ObjectStore, locks: LockManager) -> Self {
        Database {
            locks,
            ..Self::new(store)
        }
    }

    /// The lock manager (for stats).
    pub fn locks(&self) -> &LockManager {
        &self.locks
    }

    /// Run read-only logic against the store (no locking — for setup and
    /// verification code outside transactions).
    pub fn with_store<R>(&self, f: impl FnOnce(&ObjectStore) -> R) -> R {
        f(&self.store.read())
    }

    /// Run mutating logic against the store outside any transaction (setup).
    pub fn with_store_mut<R>(&self, f: impl FnOnce(&mut ObjectStore) -> R) -> R {
        f(&mut self.store.write())
    }

    /// Configure access control.
    pub fn with_access_mut<R>(&self, f: impl FnOnce(&mut AccessControl) -> R) -> R {
        f(&mut self.access.write())
    }

    /// Begin a transaction for `user`.
    pub fn begin(&self, user: &str) -> TxnHandle {
        let id = TxnId(self.next_txn.fetch_add(1, Ordering::Relaxed));
        TxnHandle {
            id,
            user: user.to_string(),
        }
    }

    fn push_undo(&self, tx: &TxnHandle, op: UndoOp) {
        self.undo.lock().entry(tx.id).or_default().push(op);
    }

    fn right_of(&self, tx: &TxnHandle, obj: Surrogate) -> Right {
        let store = self.store.read();
        let classes = store.classes_of(obj);
        self.access.read().right(&tx.user, obj, &classes)
    }

    fn acquire_capped(
        &self,
        tx: &TxnHandle,
        res: Resource,
        requested: LockMode,
    ) -> TxnResult<LockMode> {
        let right = self.right_of(tx, res.object());
        let Some(mode) = right.cap(requested) else {
            return Err(TxnError::AccessDenied {
                user: tx.user.clone(),
                object: res.object(),
            });
        };
        self.locks.acquire(tx.id, res, mode)?;
        Ok(mode)
    }

    // ------------------------------------------------------------------
    // Reads
    // ------------------------------------------------------------------

    /// Read an attribute under lock inheritance: S-locks each
    /// `(object, item)` pair of the resolution chain.
    pub fn read_attr(&self, tx: &TxnHandle, obj: Surrogate, attr: &str) -> TxnResult<Value> {
        let chain = self.store.read().resolution_chain(obj, attr)?;
        for (o, item) in &chain {
            self.acquire_capped(tx, Resource::Item(*o, item.clone()), LockMode::S)?;
        }
        Ok(self.store.read().attr(obj, attr)?)
    }

    /// Read subclass members under lock inheritance.
    pub fn read_subclass(
        &self,
        tx: &TxnHandle,
        obj: Surrogate,
        name: &str,
    ) -> TxnResult<Vec<Surrogate>> {
        let chain = self.store.read().resolution_chain(obj, name)?;
        for (o, item) in &chain {
            self.acquire_capped(tx, Resource::Item(*o, item.clone()), LockMode::S)?;
        }
        Ok(self.store.read().subclass_members(obj, name)?)
    }

    // ------------------------------------------------------------------
    // Writes
    // ------------------------------------------------------------------

    /// Write a local attribute under an X item lock.
    pub fn write_attr(
        &self,
        tx: &TxnHandle,
        obj: Surrogate,
        attr: &str,
        value: Value,
    ) -> TxnResult<()> {
        let right = self.right_of(tx, obj);
        if right != Right::Update {
            return Err(TxnError::AccessDenied {
                user: tx.user.clone(),
                object: obj,
            });
        }
        self.locks
            .acquire(tx.id, Resource::Item(obj, attr.to_string()), LockMode::X)?;
        let mut store = self.store.write();
        let old = store
            .object(obj)?
            .attrs
            .get(attr)
            .cloned()
            .unwrap_or(Value::Missing);
        store.set_attr(obj, attr, value)?;
        drop(store);
        self.push_undo(
            tx,
            UndoOp::SetAttr {
                obj,
                attr: attr.to_string(),
                old,
            },
        );
        Ok(())
    }

    /// Create a top-level object (X on the new object).
    pub fn create_object(
        &self,
        tx: &TxnHandle,
        type_name: &str,
        attrs: Vec<(&str, Value)>,
    ) -> TxnResult<Surrogate> {
        let s = self.store.write().create_object(type_name, attrs)?;
        self.locks
            .acquire(tx.id, Resource::Object(s), LockMode::X)?;
        self.push_undo(tx, UndoOp::Created { obj: s });
        Ok(s)
    }

    /// Create a subobject (X on the new object, IX+item X on the parent
    /// subclass).
    pub fn create_subobject(
        &self,
        tx: &TxnHandle,
        parent: Surrogate,
        subclass: &str,
        attrs: Vec<(&str, Value)>,
    ) -> TxnResult<Surrogate> {
        self.acquire_capped(
            tx,
            Resource::Item(parent, subclass.to_string()),
            LockMode::X,
        )?;
        let s = self
            .store
            .write()
            .create_subobject(parent, subclass, attrs)?;
        self.locks
            .acquire(tx.id, Resource::Object(s), LockMode::X)?;
        self.push_undo(tx, UndoOp::Created { obj: s });
        Ok(s)
    }

    /// Create a top-level relationship object (X on it; S on participants
    /// so they cannot vanish mid-transaction).
    pub fn create_rel(
        &self,
        tx: &TxnHandle,
        rel_type: &str,
        participants: Vec<(&str, Vec<Surrogate>)>,
        attrs: Vec<(&str, Value)>,
    ) -> TxnResult<Surrogate> {
        for (_, members) in &participants {
            for m in members {
                self.acquire_capped(tx, Resource::Object(*m), LockMode::S)?;
            }
        }
        let s = self
            .store
            .write()
            .create_rel(rel_type, participants, attrs)?;
        self.locks
            .acquire(tx.id, Resource::Object(s), LockMode::X)?;
        self.push_undo(tx, UndoOp::Created { obj: s });
        Ok(s)
    }

    /// Create a relationship member in a local subrel class of `parent`.
    pub fn create_subrel(
        &self,
        tx: &TxnHandle,
        parent: Surrogate,
        subrel: &str,
        participants: Vec<(&str, Vec<Surrogate>)>,
        attrs: Vec<(&str, Value)>,
    ) -> TxnResult<Surrogate> {
        self.acquire_capped(tx, Resource::Item(parent, subrel.to_string()), LockMode::X)?;
        for (_, members) in &participants {
            for m in members {
                self.acquire_capped(tx, Resource::Object(*m), LockMode::S)?;
            }
        }
        let s = self
            .store
            .write()
            .create_subrel(parent, subrel, participants, attrs)?;
        self.locks
            .acquire(tx.id, Resource::Object(s), LockMode::X)?;
        self.push_undo(tx, UndoOp::Created { obj: s });
        Ok(s)
    }

    /// Bind an inheritor to a transmitter (X on the inheritor's binding
    /// slot, S on the transmitter's permeable items).
    pub fn bind(
        &self,
        tx: &TxnHandle,
        rel_type: &str,
        transmitter: Surrogate,
        inheritor: Surrogate,
    ) -> TxnResult<Surrogate> {
        let permeable: Vec<String> = self
            .store
            .read()
            .catalog()
            .inher_rel_type(rel_type)
            .map(|d| d.inheriting.clone())?;
        self.acquire_capped(
            tx,
            Resource::Item(inheritor, format!("@{rel_type}")),
            LockMode::X,
        )?;
        for item in &permeable {
            self.acquire_capped(tx, Resource::Item(transmitter, item.clone()), LockMode::S)?;
        }
        let rel = self
            .store
            .write()
            .bind(rel_type, transmitter, inheritor, vec![])?;
        self.push_undo(tx, UndoOp::Bound { rel_obj: rel });
        Ok(rel)
    }

    /// Transactional cascade delete (§3): X-locks the whole subtree, removes
    /// it, and can restore it exactly on abort. Transmitters with live
    /// external inheritors are protected, as in
    /// [`ObjectStore::delete`](ccdb_core::store::ObjectStore::delete).
    pub fn delete(&self, tx: &TxnHandle, obj: Surrogate) -> TxnResult<()> {
        // Lock the subtree (and implicitly protect concurrent readers).
        let subtree: Vec<Surrogate> = {
            let store = self.store.read();
            let mut out = Vec::new();
            let mut stack = vec![obj];
            while let Some(s) = stack.pop() {
                let o = store.object(s)?;
                out.push(s);
                stack.extend(o.all_subclass_members());
            }
            out
        };
        for s in &subtree {
            let right = self.right_of(tx, *s);
            if right != Right::Update {
                return Err(TxnError::AccessDenied {
                    user: tx.user.clone(),
                    object: *s,
                });
            }
            self.locks
                .acquire(tx.id, Resource::Object(*s), LockMode::X)?;
        }
        let parent = self
            .store
            .read()
            .object(obj)?
            .owner
            .as_ref()
            .map(|o| o.parent);
        let rec = self.store.write().delete_recorded(obj)?;
        self.push_undo(
            tx,
            UndoOp::DeletedTree {
                rec: Box::new(rec),
                parent,
            },
        );
        Ok(())
    }

    /// Dissolve a binding.
    pub fn unbind(&self, tx: &TxnHandle, rel_obj: Surrogate) -> TxnResult<()> {
        let snapshot = self.store.read().object(rel_obj)?.clone();
        self.acquire_capped(
            tx,
            Resource::Item(
                snapshot
                    .inheritor()
                    .ok_or(CoreError::NoSuchObject(rel_obj))
                    .map_err(TxnError::Core)?,
                format!("@{}", snapshot.type_name),
            ),
            LockMode::X,
        )?;
        self.store.write().unbind(rel_obj)?;
        self.push_undo(
            tx,
            UndoOp::Unbound {
                rel: Box::new(snapshot),
            },
        );
        Ok(())
    }

    // ------------------------------------------------------------------
    // Expansion locking (§6)
    // ------------------------------------------------------------------

    /// Expand a composite for reading: S-locks every object in the
    /// visibility footprint, then materializes the expansion.
    pub fn expand_read(&self, tx: &TxnHandle, obj: Surrogate) -> TxnResult<ExpandedObject> {
        let store = self.store.read();
        let footprint = expansion_footprint(&store, obj)?;
        drop(store);
        for s in &footprint {
            self.acquire_capped(tx, Resource::Object(*s), LockMode::S)?;
        }
        Ok(expand(&self.store.read(), obj, usize::MAX)?)
    }

    /// Expand a composite for update: requests X on every object in the
    /// footprint but — following the paper — consults access control and
    /// silently degrades to S on objects the user may only read (standard
    /// cells). Returns the objects actually granted X.
    pub fn expand_update(&self, tx: &TxnHandle, obj: Surrogate) -> TxnResult<Vec<Surrogate>> {
        let store = self.store.read();
        let footprint = expansion_footprint(&store, obj)?;
        drop(store);
        let mut writable = Vec::new();
        for s in &footprint {
            let granted = self.acquire_capped(tx, Resource::Object(*s), LockMode::X)?;
            if granted == LockMode::X {
                writable.push(*s);
            }
        }
        Ok(writable)
    }

    // ------------------------------------------------------------------
    // Commit / abort
    // ------------------------------------------------------------------

    /// Commit: drop the undo log and release all locks.
    pub fn commit(&self, tx: TxnHandle) {
        self.undo.lock().remove(&tx.id);
        self.locks.release_all(tx.id);
    }

    /// Objects this transaction has written so far (from its undo log).
    pub fn write_set(&self, tx: &TxnHandle) -> Vec<Surrogate> {
        let undo = self.undo.lock();
        let mut out: Vec<Surrogate> = undo
            .get(&tx.id)
            .map(|ops| {
                ops.iter()
                    .flat_map(|op| match op {
                        UndoOp::SetAttr { obj, .. } | UndoOp::Created { obj } => vec![*obj],
                        UndoOp::Bound { rel_obj } => vec![*rel_obj],
                        UndoOp::Unbound { rel } => vec![rel.surrogate],
                        UndoOp::DeletedTree { parent, .. } => parent.iter().copied().collect(),
                    })
                    .collect()
            })
            .unwrap_or_default();
        out.sort();
        out.dedup();
        out
    }

    /// The records a persistence layer must write and delete to make this
    /// transaction's effects durable: every written/created object, owners
    /// whose subclass lists changed, inheritors whose bindings changed, and
    /// the KV records of dissolved inheritance-relationship objects.
    pub fn persistence_delta(&self, tx: &TxnHandle) -> PersistenceDelta {
        let undo = self.undo.lock();
        let store = self.store.read();
        let mut save = Vec::new();
        let mut delete = Vec::new();
        for op in undo.get(&tx.id).map(Vec::as_slice).unwrap_or(&[]) {
            match op {
                UndoOp::SetAttr { obj, .. } => save.push(*obj),
                UndoOp::Created { obj } => {
                    save.push(*obj);
                    if let Ok(o) = store.object(*obj) {
                        if let Some(owner) = &o.owner {
                            save.push(owner.parent);
                        }
                    }
                }
                UndoOp::Bound { rel_obj } => {
                    save.push(*rel_obj);
                    if let Ok(o) = store.object(*rel_obj) {
                        if let Some(i) = o.inheritor() {
                            save.push(i);
                        }
                    }
                }
                UndoOp::Unbound { rel } => {
                    delete.push(rel.surrogate);
                    if let Some(i) = rel.inheritor() {
                        save.push(i);
                    }
                }
                UndoOp::DeletedTree { rec, parent } => {
                    delete.extend(rec.surrogates());
                    if let Some(p) = parent {
                        save.push(*p);
                    }
                }
            }
        }
        // An object both created-then-unbound etc.: keep only live ones in
        // `save`; a surrogate that no longer exists must be deleted instead.
        save.sort();
        save.dedup();
        let (live, gone): (Vec<_>, Vec<_>) =
            save.into_iter().partition(|s| store.object(*s).is_ok());
        delete.extend(gone);
        delete.sort();
        delete.dedup();
        PersistenceDelta { save: live, delete }
    }

    /// Deferred integrity checking (§3: constraints are conditions the
    /// objects have to obey): validate every written object — and, for
    /// subobjects, the owning complex objects whose constraints may span
    /// them — then commit; on violation the transaction is aborted and the
    /// violations returned.
    pub fn commit_checked(&self, tx: TxnHandle) -> Result<(), Vec<ccdb_core::store::Violation>> {
        let mut to_check = self.write_set(&tx);
        {
            let store = self.store.read();
            // Pull in owner chains: a wire write must re-check its gate.
            let mut extra = Vec::new();
            for s in &to_check {
                let mut cur = *s;
                while let Some(owner) = store
                    .object(cur)
                    .ok()
                    .and_then(|o| o.owner.as_ref().map(|w| w.parent))
                {
                    extra.push(owner);
                    cur = owner;
                }
            }
            to_check.extend(extra);
            to_check.sort();
            to_check.dedup();
        }
        let mut violations = Vec::new();
        {
            let store = self.store.read();
            for s in &to_check {
                if store.object(*s).is_ok() {
                    match store.check_constraints(*s) {
                        Ok(v) => violations.extend(v),
                        Err(e) => violations.push(ccdb_core::store::Violation {
                            object: *s,
                            constraint: "<check failed>".into(),
                            detail: Some(e.to_string()),
                        }),
                    }
                }
            }
        }
        if violations.is_empty() {
            self.commit(tx);
            Ok(())
        } else {
            self.abort(tx);
            Err(violations)
        }
    }

    /// Abort: undo this transaction's effects newest-first, release locks.
    pub fn abort(&self, tx: TxnHandle) {
        let ops = self.undo.lock().remove(&tx.id).unwrap_or_default();
        let mut store = self.store.write();
        for op in ops.into_iter().rev() {
            match op {
                UndoOp::SetAttr { obj, attr, old } => {
                    let _ = store.set_attr(obj, &attr, old);
                }
                UndoOp::Created { obj } => {
                    let _ = store.delete_force(obj);
                }
                UndoOp::Bound { rel_obj } => {
                    let _ = store.unbind(rel_obj);
                }
                UndoOp::Unbound { rel } => {
                    if let (Some(t), Some(i)) = (rel.transmitter(), rel.inheritor()) {
                        let _ = store.bind(&rel.type_name, t, i, vec![]);
                    }
                }
                UndoOp::DeletedTree { rec, .. } => {
                    let _ = store.undelete(*rec);
                }
            }
        }
        drop(store);
        self.locks.release_all(tx.id);
    }
}

#[cfg(test)]
#[path = "txn_tests.rs"]
mod tests;
