//! Tests for the transaction manager, centred on §6's lock inheritance,
//! expansion locking, and access-control coupling.

use std::sync::Arc;
use std::time::Duration;

use ccdb_core::domain::Domain;
use ccdb_core::schema::{AttrDef, Catalog, InherRelTypeDef, ObjectTypeDef, SubclassSpec};

use super::*;
use crate::access::Right;
use crate::lock::LockManager;

/// Interface/implementation schema with two attributes, only one permeable.
fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register_object_type(ObjectTypeDef {
        name: "Pin".into(),
        attributes: vec![AttrDef::new("Id", Domain::Int)],
        ..Default::default()
    })
    .unwrap();
    c.register_object_type(ObjectTypeDef {
        name: "If".into(),
        attributes: vec![
            AttrDef::new("Length", Domain::Int),   // permeable
            AttrDef::new("Internal", Domain::Int), // NOT permeable
        ],
        subclasses: vec![SubclassSpec {
            name: "Pins".into(),
            element_type: "Pin".into(),
        }],
        ..Default::default()
    })
    .unwrap();
    c.register_inher_rel_type(InherRelTypeDef {
        name: "AllOf_If".into(),
        transmitter_type: "If".into(),
        inheritor_type: None,
        inheriting: vec!["Length".into(), "Pins".into()],
        attributes: vec![],
        constraints: vec![],
    })
    .unwrap();
    c.register_object_type(ObjectTypeDef {
        name: "Impl".into(),
        inheritor_in: vec!["AllOf_If".into()],
        attributes: vec![AttrDef::new("Cost", Domain::Int)],
        ..Default::default()
    })
    .unwrap();
    c
}

fn quick_db() -> Database {
    let store = ObjectStore::new(catalog()).unwrap();
    Database::with_lock_manager(store, LockManager::with_timeout(Duration::from_millis(80)))
}

/// (interface, implementation) with the implementation bound.
fn bound_pair(db: &Database) -> (Surrogate, Surrogate) {
    db.with_store_mut(|st| {
        let i = st
            .create_object(
                "If",
                vec![("Length", Value::Int(5)), ("Internal", Value::Int(1))],
            )
            .unwrap();
        st.create_subobject(i, "Pins", vec![("Id", Value::Int(1))])
            .unwrap();
        let imp = st
            .create_object("Impl", vec![("Cost", Value::Int(3))])
            .unwrap();
        st.bind("AllOf_If", i, imp, vec![]).unwrap();
        (i, imp)
    })
}

#[test]
fn read_write_commit_cycle() {
    let db = quick_db();
    let (i, _) = bound_pair(&db);
    let tx = db.begin("alice");
    assert_eq!(db.read_attr(&tx, i, "Length").unwrap(), Value::Int(5));
    db.write_attr(&tx, i, "Length", Value::Int(6)).unwrap();
    db.commit(tx);
    assert_eq!(
        db.with_store(|st| st.attr(i, "Length").unwrap()),
        Value::Int(6)
    );
}

#[test]
fn abort_undoes_writes_and_creates() {
    let db = quick_db();
    let (i, _) = bound_pair(&db);
    let tx = db.begin("alice");
    db.write_attr(&tx, i, "Length", Value::Int(99)).unwrap();
    let fresh = db
        .create_object(&tx, "If", vec![("Length", Value::Int(1))])
        .unwrap();
    db.abort(tx);
    assert_eq!(
        db.with_store(|st| st.attr(i, "Length").unwrap()),
        Value::Int(5)
    );
    assert!(db.with_store(|st| st.object(fresh).is_err()));
}

#[test]
fn abort_undoes_bind_and_unbind() {
    let db = quick_db();
    let (i, imp) = bound_pair(&db);
    // Unbind inside a txn, then abort → binding restored.
    let rel = db.with_store(|st| st.binding_of(imp, "AllOf_If").unwrap());
    let tx = db.begin("alice");
    db.unbind(&tx, rel).unwrap();
    assert_eq!(
        db.with_store(|st| st.attr(imp, "Length").unwrap()),
        Value::Missing
    );
    db.abort(tx);
    assert_eq!(
        db.with_store(|st| st.attr(imp, "Length").unwrap()),
        Value::Int(5)
    );
    // Bind a second implementation inside a txn, abort → gone.
    let imp2 = db.with_store_mut(|st| st.create_object("Impl", vec![]).unwrap());
    let tx = db.begin("alice");
    db.bind(&tx, "AllOf_If", i, imp2).unwrap();
    assert_eq!(
        db.with_store(|st| st.attr(imp2, "Length").unwrap()),
        Value::Int(5)
    );
    db.abort(tx);
    assert_eq!(
        db.with_store(|st| st.attr(imp2, "Length").unwrap()),
        Value::Missing
    );
}

#[test]
fn lock_inheritance_read_locks_the_permeable_item() {
    let db = quick_db();
    let (i, imp) = bound_pair(&db);
    let reader = db.begin("reader");
    // Reading the *inherited* Length locks (imp, Length) and (i, Length).
    assert_eq!(db.read_attr(&reader, imp, "Length").unwrap(), Value::Int(5));
    // A writer on the transmitter's permeable item blocks…
    let writer = db.begin("writer");
    let err = db
        .write_attr(&writer, i, "Length", Value::Int(7))
        .unwrap_err();
    assert!(matches!(err, TxnError::Lock(_)), "{err}");
    db.abort(writer);
    // …but a writer on the transmitter's NON-permeable item does not —
    // this is the point of item-granular lock inheritance.
    let writer2 = db.begin("writer2");
    db.write_attr(&writer2, i, "Internal", Value::Int(8))
        .unwrap();
    db.commit(writer2);
    db.commit(reader);
}

#[test]
fn writer_on_transmitter_blocks_inherited_reader() {
    let db = quick_db();
    let (i, imp) = bound_pair(&db);
    let writer = db.begin("writer");
    db.write_attr(&writer, i, "Length", Value::Int(7)).unwrap();
    let reader = db.begin("reader");
    let err = db.read_attr(&reader, imp, "Length").unwrap_err();
    assert!(matches!(err, TxnError::Lock(_)));
    db.commit(writer);
    assert_eq!(db.read_attr(&reader, imp, "Length").unwrap(), Value::Int(7));
    db.commit(reader);
}

#[test]
fn expansion_read_locks_footprint() {
    let db = quick_db();
    let (i, imp) = bound_pair(&db);
    let tx = db.begin("alice");
    let expanded = db.expand_read(&tx, imp).unwrap();
    assert_eq!(expanded.type_name, "Impl");
    // The transmitter is S-locked whole: updates elsewhere block.
    let writer = db.begin("bob");
    let err = db
        .write_attr(&writer, i, "Internal", Value::Int(9))
        .unwrap_err();
    assert!(matches!(err, TxnError::Lock(_)));
    db.commit(tx);
    db.write_attr(&writer, i, "Internal", Value::Int(9))
        .unwrap();
    db.commit(writer);
}

#[test]
fn expansion_update_respects_access_control() {
    let db = quick_db();
    let (i, imp) = bound_pair(&db);
    // The interface is a protected standard part: bob may only read it.
    db.with_access_mut(|ac| ac.grant_object("bob", i, Right::Read));
    let tx = db.begin("bob");
    let writable = db.expand_update(&tx, imp).unwrap();
    assert!(writable.contains(&imp), "own composite is writable");
    assert!(!writable.contains(&i), "standard part capped to S");
    // A concurrent reader of the standard part is NOT blocked (S vs S)…
    let tx2 = db.begin("carol");
    assert_eq!(db.read_attr(&tx2, i, "Length").unwrap(), Value::Int(5));
    db.commit(tx2);
    // …and bob cannot write it either (access denied, not just unlocked).
    let err = db.write_attr(&tx, i, "Length", Value::Int(0)).unwrap_err();
    assert!(matches!(err, TxnError::AccessDenied { .. }));
    db.commit(tx);
}

#[test]
fn no_access_at_all_fails_expansion() {
    let db = quick_db();
    let (i, imp) = bound_pair(&db);
    db.with_access_mut(|ac| ac.grant_object("mallory", i, Right::None));
    let tx = db.begin("mallory");
    let err = db.expand_read(&tx, imp).unwrap_err();
    assert!(matches!(err, TxnError::AccessDenied { object, .. } if object == i));
    db.abort(tx);
}

#[test]
fn concurrent_writers_on_different_implementations() {
    let db = Arc::new(quick_db());
    let (i, _) = bound_pair(&db);
    // Many implementations of one interface; concurrent writers on their
    // local attrs never conflict.
    let imps: Vec<Surrogate> = (0..4)
        .map(|_| {
            db.with_store_mut(|st| {
                let imp = st
                    .create_object("Impl", vec![("Cost", Value::Int(0))])
                    .unwrap();
                st.bind("AllOf_If", i, imp, vec![]).unwrap();
                imp
            })
        })
        .collect();
    let mut handles = Vec::new();
    for (k, imp) in imps.iter().enumerate() {
        let db = Arc::clone(&db);
        let imp = *imp;
        handles.push(std::thread::spawn(move || {
            for n in 0..50 {
                let tx = db.begin(&format!("user{k}"));
                db.write_attr(&tx, imp, "Cost", Value::Int(n)).unwrap();
                db.commit(tx);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    for imp in imps {
        assert_eq!(
            db.with_store(|st| st.attr(imp, "Cost").unwrap()),
            Value::Int(49)
        );
    }
}

#[test]
fn create_subobject_under_txn() {
    let db = quick_db();
    let (i, _) = bound_pair(&db);
    let tx = db.begin("alice");
    let pin = db
        .create_subobject(&tx, i, "Pins", vec![("Id", Value::Int(2))])
        .unwrap();
    db.abort(tx);
    assert!(
        db.with_store(|st| st.object(pin).is_err()),
        "aborted create rolled back"
    );
    let tx = db.begin("alice");
    let pin = db
        .create_subobject(&tx, i, "Pins", vec![("Id", Value::Int(2))])
        .unwrap();
    db.commit(tx);
    assert!(db.with_store(|st| st.object(pin).is_ok()));
}

#[test]
fn write_set_tracks_all_mutations() {
    let db = quick_db();
    let (i, imp) = bound_pair(&db);
    let tx = db.begin("alice");
    db.write_attr(&tx, i, "Length", Value::Int(7)).unwrap();
    let fresh = db.create_object(&tx, "If", vec![]).unwrap();
    let ws = db.write_set(&tx);
    assert!(ws.contains(&i) && ws.contains(&fresh));
    assert!(!ws.contains(&imp));
    db.abort(tx);
}

#[test]
fn commit_checked_rejects_constraint_violations() {
    // Schema with a constraint: Length < 100.
    let mut c = ccdb_core::schema::Catalog::new();
    c.register_object_type(ccdb_core::schema::ObjectTypeDef {
        name: "Part".into(),
        attributes: vec![ccdb_core::schema::AttrDef::new("Length", Domain::Int)],
        constraints: vec![ccdb_core::schema::Constraint::named(
            "Length < 100",
            ccdb_core::expr::Expr::bin(
                ccdb_core::expr::BinOp::Lt,
                ccdb_core::expr::Expr::Path(ccdb_core::expr::PathExpr::self_path(&["Length"])),
                ccdb_core::expr::Expr::int(100),
            ),
        )],
        ..Default::default()
    })
    .unwrap();
    let db = Database::new(ObjectStore::new(c).unwrap());
    let part = db.with_store_mut(|st| {
        st.create_object("Part", vec![("Length", Value::Int(10))])
            .unwrap()
    });

    // A valid write commits.
    let tx = db.begin("alice");
    db.write_attr(&tx, part, "Length", Value::Int(50)).unwrap();
    db.commit_checked(tx).unwrap();
    assert_eq!(
        db.with_store(|st| st.attr(part, "Length").unwrap()),
        Value::Int(50)
    );

    // An invalid write is rejected AND rolled back.
    let tx = db.begin("alice");
    db.write_attr(&tx, part, "Length", Value::Int(200)).unwrap();
    let violations = db.commit_checked(tx).unwrap_err();
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].constraint, "Length < 100");
    assert_eq!(
        db.with_store(|st| st.attr(part, "Length").unwrap()),
        Value::Int(50),
        "violating txn rolled back"
    );
}

#[test]
fn commit_checked_walks_owner_chain() {
    // Owner constraint: count (Children) <= 1; writing a child subobject
    // must re-check the parent.
    let mut c = ccdb_core::schema::Catalog::new();
    c.register_object_type(ccdb_core::schema::ObjectTypeDef {
        name: "Child".into(),
        attributes: vec![ccdb_core::schema::AttrDef::new("X", Domain::Int)],
        ..Default::default()
    })
    .unwrap();
    c.register_object_type(ccdb_core::schema::ObjectTypeDef {
        name: "Parent".into(),
        subclasses: vec![ccdb_core::schema::SubclassSpec {
            name: "Children".into(),
            element_type: "Child".into(),
        }],
        constraints: vec![ccdb_core::schema::Constraint::named(
            "at most one child",
            ccdb_core::expr::Expr::bin(
                ccdb_core::expr::BinOp::Le,
                ccdb_core::expr::Expr::Count {
                    path: ccdb_core::expr::PathExpr::self_path(&["Children"]),
                    filter: None,
                },
                ccdb_core::expr::Expr::int(1),
            ),
        )],
        ..Default::default()
    })
    .unwrap();
    let db = Database::new(ObjectStore::new(c).unwrap());
    let parent = db.with_store_mut(|st| st.create_object("Parent", vec![]).unwrap());

    let tx = db.begin("alice");
    db.create_subobject(&tx, parent, "Children", vec![])
        .unwrap();
    db.commit_checked(tx).unwrap();

    let tx = db.begin("alice");
    let second = db
        .create_subobject(&tx, parent, "Children", vec![])
        .unwrap();
    let violations = db.commit_checked(tx).unwrap_err();
    assert_eq!(violations[0].constraint, "at most one child");
    assert!(
        db.with_store(|st| st.object(second).is_err()),
        "second child rolled back"
    );
    assert_eq!(
        db.with_store(|st| st.subclass_members(parent, "Children").unwrap().len()),
        1
    );
}

#[test]
fn class_level_access_grants_apply() {
    let db = quick_db();
    let (i, imp) = bound_pair(&db);
    // Put the interface into a "StandardCells" class; eve may only read
    // members of that class but updates everything else.
    db.with_store_mut(|st| {
        st.create_class("StandardCells", "If").unwrap();
        st.add_to_class("StandardCells", i).unwrap();
    });
    db.with_access_mut(|ac| {
        ac.grant_class("eve", "StandardCells", crate::access::Right::Read);
    });
    let tx = db.begin("eve");
    // Class members: read ok, write denied.
    assert_eq!(db.read_attr(&tx, i, "Length").unwrap(), Value::Int(5));
    assert!(matches!(
        db.write_attr(&tx, i, "Length", Value::Int(9)),
        Err(TxnError::AccessDenied { .. })
    ));
    // Non-members unaffected.
    db.write_attr(&tx, imp, "Cost", Value::Int(4)).unwrap();
    db.commit(tx);
}

#[test]
fn transactional_delete_commits_and_aborts() {
    let db = quick_db();
    let (i, imp) = bound_pair(&db);
    // Abort: the implementation (and its binding) come back exactly.
    let tx = db.begin("alice");
    db.delete(&tx, imp).unwrap();
    assert!(db.with_store(|st| st.object(imp).is_err()));
    db.abort(tx);
    assert!(db.with_store(|st| st.object(imp).is_ok()));
    assert_eq!(
        db.with_store(|st| st.attr(imp, "Length").unwrap()),
        Value::Int(5)
    );
    // Commit: gone for good; the interface no longer transmits.
    let tx = db.begin("alice");
    db.delete(&tx, imp).unwrap();
    db.commit(tx);
    assert!(db.with_store(|st| st.object(imp).is_err()));
    assert!(db.with_store(|st| st.inheritance_rels_of(i).is_empty()));
}

#[test]
fn transactional_delete_respects_transmitter_protection_and_acl() {
    let db = quick_db();
    let (i, _imp) = bound_pair(&db);
    // The interface still transmits → delete refused, nothing locked burns.
    let tx = db.begin("alice");
    let err = db.delete(&tx, i).unwrap_err();
    assert!(matches!(
        err,
        TxnError::Core(CoreError::TransmitterInUse { .. })
    ));
    db.abort(tx);
    // A read-only user cannot delete.
    db.with_access_mut(|ac| ac.grant_object("eve", i, Right::Read));
    let tx = db.begin("eve");
    let err = db.delete(&tx, i).unwrap_err();
    assert!(matches!(err, TxnError::AccessDenied { .. }));
    db.abort(tx);
}

#[test]
fn delete_blocks_concurrent_readers_until_commit() {
    let db = quick_db();
    let (_i, imp) = bound_pair(&db);
    let tx = db.begin("alice");
    db.delete(&tx, imp).unwrap();
    // Another txn cannot even read the doomed object (X held) — and after
    // commit the object is simply gone.
    let tx2 = db.begin("bob");
    let err = db.read_attr(&tx2, imp, "Cost").unwrap_err();
    assert!(matches!(err, TxnError::Lock(_) | TxnError::Core(_)));
    db.commit(tx);
    let err = db.read_attr(&tx2, imp, "Cost").unwrap_err();
    assert!(matches!(err, TxnError::Core(CoreError::NoSuchObject(_))));
    db.abort(tx2);
}

#[test]
fn transactional_relationship_creation() {
    // WireType-like schema local to this test.
    let mut c = Catalog::new();
    c.register_object_type(ObjectTypeDef {
        name: "Pin2".into(),
        attributes: vec![AttrDef::new("Id", Domain::Int)],
        ..Default::default()
    })
    .unwrap();
    c.register_object_type(ObjectTypeDef {
        name: "Board".into(),
        subclasses: vec![SubclassSpec {
            name: "Pins".into(),
            element_type: "Pin2".into(),
        }],
        subrels: vec![ccdb_core::schema::SubrelSpec {
            name: "Wires".into(),
            rel_type: "Wire2".into(),
            member_constraints: vec![],
        }],
        ..Default::default()
    })
    .unwrap();
    c.register_rel_type(ccdb_core::schema::RelTypeDef {
        name: "Wire2".into(),
        participants: vec![
            ccdb_core::schema::ParticipantSpec::one("A", "Pin2"),
            ccdb_core::schema::ParticipantSpec::one("B", "Pin2"),
        ],
        ..Default::default()
    })
    .unwrap();
    let db = Database::new(ObjectStore::new(c).unwrap());
    let (board, p1, p2) = db.with_store_mut(|st| {
        let b = st.create_object("Board", vec![]).unwrap();
        let p1 = st
            .create_subobject(b, "Pins", vec![("Id", Value::Int(1))])
            .unwrap();
        let p2 = st
            .create_subobject(b, "Pins", vec![("Id", Value::Int(2))])
            .unwrap();
        (b, p1, p2)
    });
    // Abort removes both the top-level rel and the subrel member.
    let tx = db.begin("alice");
    let rel = db
        .create_rel(&tx, "Wire2", vec![("A", vec![p1]), ("B", vec![p2])], vec![])
        .unwrap();
    let wire = db
        .create_subrel(
            &tx,
            board,
            "Wires",
            vec![("A", vec![p1]), ("B", vec![p2])],
            vec![],
        )
        .unwrap();
    db.abort(tx);
    db.with_store(|st| {
        assert!(st.object(rel).is_err());
        assert!(st.object(wire).is_err());
        assert!(st.subclass_members(board, "Wires").unwrap().is_empty());
    });
    // Commit keeps them; participants hold S locks during the txn.
    let tx = db.begin("alice");
    let wire = db
        .create_subrel(
            &tx,
            board,
            "Wires",
            vec![("A", vec![p1]), ("B", vec![p2])],
            vec![],
        )
        .unwrap();
    db.commit(tx);
    db.with_store(|st| {
        assert_eq!(st.subclass_members(board, "Wires").unwrap(), vec![wire]);
        assert_eq!(st.object(wire).unwrap().participants("A"), Some(&[p1][..]));
    });
}
