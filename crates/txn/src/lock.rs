//! Hierarchical lock manager with attribute-group granularity.
//!
//! Resources form a two-level hierarchy: a *whole object* and its *items*
//! (attributes or subclasses). Locking an item takes an intention lock on
//! the object first — so a whole-object `X` conflicts with any item lock,
//! while two writers on different items of one object do not conflict.
//! This granularity is what makes the paper's §6 **lock inheritance** cheap:
//! a composite reading inherited data read-locks only the *permeable items*
//! of the transmitter, leaving its non-permeable items writable by others.
//!
//! Deadlocks are detected at wait time via a waits-for graph; the requester
//! whose wait would close a cycle is refused with [`LockError::Deadlock`].

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use ccdb_core::Surrogate;
use ccdb_obs::{event, trace, Event, FieldValue, SpanTimer};
use parking_lot::{Condvar, Mutex};

use crate::metrics::txn_metrics;

/// Lock modes (classic multi-granularity set).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LockMode {
    /// Intention shared.
    IS,
    /// Intention exclusive.
    IX,
    /// Shared.
    S,
    /// Shared + intention exclusive.
    SIX,
    /// Exclusive.
    X,
}

impl LockMode {
    /// Standard compatibility matrix.
    pub fn compatible(self, other: LockMode) -> bool {
        use LockMode::*;
        matches!(
            (self, other),
            (IS, IS)
                | (IS, IX)
                | (IS, S)
                | (IS, SIX)
                | (IX, IS)
                | (IX, IX)
                | (S, IS)
                | (S, S)
                | (SIX, IS)
        )
    }

    /// Is `self` at least as strong as `other` (upgrade not needed)?
    pub fn covers(self, other: LockMode) -> bool {
        use LockMode::*;
        match (self, other) {
            (X, _) => true,
            (SIX, IS) | (SIX, IX) | (SIX, S) | (SIX, SIX) => true,
            (S, S) | (S, IS) => true,
            (IX, IX) | (IX, IS) => true,
            (IS, IS) => true,
            _ => self == other,
        }
    }

    /// Short static name, for trace fields and logs.
    pub fn name(self) -> &'static str {
        use LockMode::*;
        match self {
            IS => "IS",
            IX => "IX",
            S => "S",
            SIX => "SIX",
            X => "X",
        }
    }

    /// Least upper bound of two modes (for upgrades).
    pub fn join(self, other: LockMode) -> LockMode {
        use LockMode::*;
        if self.covers(other) {
            return self;
        }
        if other.covers(self) {
            return other;
        }
        match (self, other) {
            (S, IX) | (IX, S) | (SIX, _) | (_, SIX) => SIX,
            _ => X,
        }
    }
}

/// A lockable resource.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Resource {
    /// The whole object.
    Object(Surrogate),
    /// One attribute or subclass of an object.
    Item(Surrogate, String),
}

impl Resource {
    /// The object this resource belongs to.
    pub fn object(&self) -> Surrogate {
        match self {
            Resource::Object(s) | Resource::Item(s, _) => *s,
        }
    }

    /// Parent resource in the hierarchy (items → object).
    pub fn parent(&self) -> Option<Resource> {
        match self {
            Resource::Object(_) => None,
            Resource::Item(s, _) => Some(Resource::Object(*s)),
        }
    }
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Resource::Object(s) => write!(f, "{s}"),
            Resource::Item(s, i) => write!(f, "{s}.{i}"),
        }
    }
}

/// Transaction identifier used by the lock manager.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TxnId(pub u64);

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Lock acquisition failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LockError {
    /// Granting the wait would create a deadlock; the requester should abort.
    Deadlock {
        /// The refused requester.
        txn: TxnId,
        /// The contended resource.
        on: String,
    },
    /// The wait exceeded the configured timeout.
    Timeout {
        /// The timed-out requester.
        txn: TxnId,
        /// The contended resource.
        on: String,
    },
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::Deadlock { txn, on } => write!(f, "deadlock: {txn} waiting on {on}"),
            LockError::Timeout { txn, on } => write!(f, "lock timeout: {txn} waiting on {on}"),
        }
    }
}

impl std::error::Error for LockError {}

#[derive(Default)]
struct LmState {
    /// resource → holder → mode.
    held: HashMap<Resource, HashMap<TxnId, LockMode>>,
    /// txn → resources it holds (for release).
    by_txn: HashMap<TxnId, HashSet<Resource>>,
    /// txn → txns it currently waits for.
    waits_for: HashMap<TxnId, HashSet<TxnId>>,
    /// Counters for experiments.
    grants: u64,
    waits: u64,
    deadlocks: u64,
    timeouts: u64,
}

impl LmState {
    fn conflicts(&self, res: &Resource, txn: TxnId, mode: LockMode) -> Vec<TxnId> {
        self.held
            .get(res)
            .map(|holders| {
                holders
                    .iter()
                    .filter(|(t, m)| **t != txn && !mode.compatible(**m))
                    .map(|(t, _)| *t)
                    .collect()
            })
            .unwrap_or_default()
    }

    fn would_deadlock(&self, from: TxnId, blockers: &[TxnId]) -> bool {
        // DFS over waits-for ∪ the proposed new edges.
        let mut stack: Vec<TxnId> = blockers.to_vec();
        let mut seen = HashSet::new();
        while let Some(t) = stack.pop() {
            if t == from {
                return true;
            }
            if !seen.insert(t) {
                continue;
            }
            if let Some(next) = self.waits_for.get(&t) {
                stack.extend(next.iter().copied());
            }
        }
        false
    }

    fn grant(&mut self, res: &Resource, txn: TxnId, mode: LockMode) {
        let holders = self.held.entry(res.clone()).or_default();
        let entry = holders.entry(txn).or_insert(mode);
        *entry = entry.join(mode);
        self.by_txn.entry(txn).or_default().insert(res.clone());
        self.grants += 1;
        txn_metrics().grants.inc();
    }
}

/// The lock manager. Cheap to clone via [`Arc`].
pub struct LockManager {
    state: Mutex<LmState>,
    cond: Condvar,
    timeout: Duration,
}

/// Counters exposed for experiment E4.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LockStats {
    /// Locks granted (including upgrades and re-grants).
    pub grants: u64,
    /// Requests that had to wait at least once.
    pub waits: u64,
    /// Requests refused because of deadlock.
    pub deadlocks: u64,
    /// Requests refused because the wait timed out.
    pub timeouts: u64,
}

impl Default for LockManager {
    fn default() -> Self {
        Self::new()
    }
}

impl LockManager {
    /// Lock manager with the default 5 s wait timeout.
    pub fn new() -> Self {
        Self::with_timeout(Duration::from_secs(5))
    }

    /// Lock manager with an explicit wait timeout.
    pub fn with_timeout(timeout: Duration) -> Self {
        LockManager {
            state: Mutex::new(LmState::default()),
            cond: Condvar::new(),
            timeout,
        }
    }

    /// Shared handle.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Acquire `mode` on `res` for `txn`, taking the required intention lock
    /// on the parent first. Blocks until granted, deadlock, or timeout.
    pub fn acquire(&self, txn: TxnId, res: Resource, mode: LockMode) -> Result<(), LockError> {
        // Records into ccdb_txn_lock_acquire_latency_ns on drop (both
        // outcomes); None when instrumentation is disabled.
        let _latency = SpanTimer::start(&txn_metrics().acquire_latency);
        if let Some(parent) = res.parent() {
            let intent = match mode {
                LockMode::S | LockMode::IS => LockMode::IS,
                _ => LockMode::IX,
            };
            self.acquire_flat(txn, parent, intent)?;
        }
        self.acquire_flat(txn, res, mode)
    }

    fn acquire_flat(&self, txn: TxnId, res: Resource, mode: LockMode) -> Result<(), LockError> {
        // One relaxed load when tracing is off; when on, the span records
        // the requested resource/mode and how the request ended (granted,
        // deadlock, timeout) plus whether it had to wait at all.
        let mut tspan = trace::span("txn.lock.acquire");
        if let Some(s) = &mut tspan {
            s.u64("txn", txn.0);
            s.field("resource", FieldValue::Owned(res.to_string()));
            s.str("mode", mode.name());
        }
        let mut st = self.state.lock();
        // Already strong enough?
        if let Some(m) = st.held.get(&res).and_then(|h| h.get(&txn)) {
            if m.covers(mode) {
                if let Some(s) = &mut tspan {
                    s.str("outcome", "held");
                }
                return Ok(());
            }
        }
        let mut waited = false;
        loop {
            let request = match st.held.get(&res).and_then(|h| h.get(&txn)) {
                Some(m) => m.join(mode), // upgrade
                None => mode,
            };
            let blockers = st.conflicts(&res, txn, request);
            if blockers.is_empty() {
                st.grant(&res, txn, request);
                st.waits_for.remove(&txn);
                if let Some(s) = &mut tspan {
                    s.str("outcome", "granted");
                    s.str("waited", if waited { "yes" } else { "no" });
                }
                return Ok(());
            }
            if st.would_deadlock(txn, &blockers) {
                st.deadlocks += 1;
                st.waits_for.remove(&txn);
                txn_metrics().deadlocks.inc();
                event::emit(|| {
                    Event::now(
                        "txn.lock.deadlock",
                        vec![
                            ("txn", FieldValue::U64(txn.0)),
                            ("resource", FieldValue::Owned(res.to_string())),
                        ],
                    )
                });
                if let Some(s) = &mut tspan {
                    s.str("outcome", "deadlock");
                    s.u64("blockers", blockers.len() as u64);
                }
                return Err(LockError::Deadlock {
                    txn,
                    on: res.to_string(),
                });
            }
            if !waited {
                st.waits += 1;
                waited = true;
                txn_metrics().waits.inc();
                event::emit(|| {
                    Event::now(
                        "txn.lock.wait",
                        vec![
                            ("txn", FieldValue::U64(txn.0)),
                            ("resource", FieldValue::Owned(res.to_string())),
                        ],
                    )
                });
            }
            st.waits_for.insert(txn, blockers.into_iter().collect());
            let timed_out = self.cond.wait_for(&mut st, self.timeout).timed_out();
            if timed_out {
                st.waits_for.remove(&txn);
                st.timeouts += 1;
                txn_metrics().timeouts.inc();
                event::emit(|| {
                    Event::now(
                        "txn.lock.timeout",
                        vec![
                            ("txn", FieldValue::U64(txn.0)),
                            ("resource", FieldValue::Owned(res.to_string())),
                        ],
                    )
                });
                if let Some(s) = &mut tspan {
                    s.str("outcome", "timeout");
                }
                return Err(LockError::Timeout {
                    txn,
                    on: res.to_string(),
                });
            }
        }
    }

    /// Try to acquire without blocking; `Err(blockers)` lists the holders.
    pub fn try_acquire(&self, txn: TxnId, res: Resource, mode: LockMode) -> Result<(), Vec<TxnId>> {
        if let Some(parent) = res.parent() {
            let intent = match mode {
                LockMode::S | LockMode::IS => LockMode::IS,
                _ => LockMode::IX,
            };
            self.try_acquire_flat(txn, parent, intent)?;
        }
        self.try_acquire_flat(txn, res, mode)
    }

    fn try_acquire_flat(
        &self,
        txn: TxnId,
        res: Resource,
        mode: LockMode,
    ) -> Result<(), Vec<TxnId>> {
        let mut st = self.state.lock();
        let request = match st.held.get(&res).and_then(|h| h.get(&txn)) {
            Some(m) => {
                if m.covers(mode) {
                    return Ok(());
                }
                m.join(mode)
            }
            None => mode,
        };
        let blockers = st.conflicts(&res, txn, request);
        if blockers.is_empty() {
            st.grant(&res, txn, request);
            Ok(())
        } else {
            Err(blockers)
        }
    }

    /// Release every lock of `txn` and wake waiters.
    pub fn release_all(&self, txn: TxnId) {
        let mut st = self.state.lock();
        if let Some(resources) = st.by_txn.remove(&txn) {
            for res in resources {
                if let Some(holders) = st.held.get_mut(&res) {
                    holders.remove(&txn);
                    if holders.is_empty() {
                        st.held.remove(&res);
                    }
                }
            }
        }
        st.waits_for.remove(&txn);
        drop(st);
        txn_metrics().released.inc();
        self.cond.notify_all();
    }

    /// Mode `txn` currently holds on `res`, if any.
    pub fn held_mode(&self, txn: TxnId, res: &Resource) -> Option<LockMode> {
        self.state
            .lock()
            .held
            .get(res)
            .and_then(|h| h.get(&txn))
            .copied()
    }

    /// Number of resources `txn` currently holds locks on.
    pub fn held_count(&self, txn: TxnId) -> usize {
        self.state
            .lock()
            .by_txn
            .get(&txn)
            .map(HashSet::len)
            .unwrap_or(0)
    }

    /// Experiment counters.
    pub fn stats(&self) -> LockStats {
        let st = self.state.lock();
        LockStats {
            grants: st.grants,
            waits: st.waits,
            deadlocks: st.deadlocks,
            timeouts: st.timeouts,
        }
    }

    /// Invariant check (tests): no resource may be held in pairwise
    /// incompatible modes by two transactions, and the per-transaction
    /// index must match the holder table. Returns the violations found.
    pub fn validate_invariants(&self) -> Vec<String> {
        let st = self.state.lock();
        let mut problems = Vec::new();
        for (res, holders) in &st.held {
            let hs: Vec<(&TxnId, &LockMode)> = holders.iter().collect();
            for i in 0..hs.len() {
                for j in (i + 1)..hs.len() {
                    let (ta, ma) = hs[i];
                    let (tb, mb) = hs[j];
                    if !ma.compatible(*mb) {
                        problems.push(format!("{res}: {ta} holds {ma:?} while {tb} holds {mb:?}"));
                    }
                }
            }
            for t in holders.keys() {
                if !st.by_txn.get(t).map(|s| s.contains(res)).unwrap_or(false) {
                    problems.push(format!("{res}: holder {t} missing from index"));
                }
            }
        }
        for (t, resources) in &st.by_txn {
            for res in resources {
                if !st.held.get(res).map(|h| h.contains_key(t)).unwrap_or(false) {
                    problems.push(format!("index lists {t} on {res} without a lock"));
                }
            }
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    const A: Surrogate = Surrogate(1);

    fn obj(s: u64) -> Resource {
        Resource::Object(Surrogate(s))
    }

    fn item(s: u64, n: &str) -> Resource {
        Resource::Item(Surrogate(s), n.to_string())
    }

    #[test]
    fn compatibility_matrix() {
        use LockMode::*;
        assert!(S.compatible(S));
        assert!(!S.compatible(X));
        assert!(!X.compatible(X));
        assert!(IS.compatible(IX));
        assert!(!IX.compatible(S));
        assert!(SIX.compatible(IS));
        assert!(!SIX.compatible(IX));
        assert!(!SIX.compatible(S));
    }

    #[test]
    fn join_and_covers() {
        use LockMode::*;
        assert_eq!(S.join(IX), SIX);
        assert_eq!(IS.join(IX), IX);
        assert_eq!(S.join(X), X);
        assert!(X.covers(S));
        assert!(SIX.covers(S));
        assert!(!S.covers(X));
    }

    #[test]
    fn shared_locks_coexist_exclusive_blocks() {
        let lm = LockManager::with_timeout(Duration::from_millis(50));
        lm.acquire(TxnId(1), obj(1), LockMode::S).unwrap();
        lm.acquire(TxnId(2), obj(1), LockMode::S).unwrap();
        let err = lm.acquire(TxnId(3), obj(1), LockMode::X).unwrap_err();
        assert!(matches!(err, LockError::Timeout { .. }));
        lm.release_all(TxnId(1));
        lm.release_all(TxnId(2));
        lm.acquire(TxnId(3), obj(1), LockMode::X).unwrap();
    }

    #[test]
    fn item_locks_on_different_items_do_not_conflict() {
        let lm = LockManager::with_timeout(Duration::from_millis(50));
        lm.acquire(TxnId(1), item(1, "Length"), LockMode::X)
            .unwrap();
        // Different item of the same object: fine (IX + IX on the object).
        lm.acquire(TxnId(2), item(1, "Width"), LockMode::X).unwrap();
        // Same item conflicts.
        assert!(lm
            .acquire(TxnId(3), item(1, "Length"), LockMode::S)
            .is_err());
    }

    #[test]
    fn whole_object_x_blocks_item_locks() {
        let lm = LockManager::with_timeout(Duration::from_millis(50));
        lm.acquire(TxnId(1), obj(1), LockMode::X).unwrap();
        // The IS intent on the object cannot be granted.
        assert!(lm
            .acquire(TxnId(2), item(1, "Length"), LockMode::S)
            .is_err());
        lm.release_all(TxnId(1));
        lm.acquire(TxnId(2), item(1, "Length"), LockMode::S)
            .unwrap();
    }

    #[test]
    fn item_s_blocks_whole_object_x() {
        let lm = LockManager::with_timeout(Duration::from_millis(50));
        lm.acquire(TxnId(1), item(1, "Length"), LockMode::S)
            .unwrap();
        // Whole-object X conflicts with the IS intent held by T1.
        assert!(lm.acquire(TxnId(2), obj(1), LockMode::X).is_err());
        // Whole-object S is fine (S vs IS compatible).
        lm.acquire(TxnId(3), obj(1), LockMode::S).unwrap();
    }

    #[test]
    fn reacquire_and_upgrade() {
        let lm = LockManager::with_timeout(Duration::from_millis(50));
        lm.acquire(TxnId(1), obj(1), LockMode::S).unwrap();
        lm.acquire(TxnId(1), obj(1), LockMode::S).unwrap(); // no-op
        lm.acquire(TxnId(1), obj(1), LockMode::X).unwrap(); // upgrade, no other holders
        assert_eq!(lm.held_mode(TxnId(1), &obj(1)), Some(LockMode::X));
        // Upgrade blocked by another S holder.
        let lm2 = LockManager::with_timeout(Duration::from_millis(50));
        lm2.acquire(TxnId(1), obj(1), LockMode::S).unwrap();
        lm2.acquire(TxnId(2), obj(1), LockMode::S).unwrap();
        assert!(lm2.acquire(TxnId(1), obj(1), LockMode::X).is_err());
    }

    #[test]
    fn deadlock_detected() {
        let lm = Arc::new(LockManager::with_timeout(Duration::from_secs(10)));
        lm.acquire(TxnId(1), obj(1), LockMode::X).unwrap();
        lm.acquire(TxnId(2), obj(2), LockMode::X).unwrap();
        // T1 waits for obj2 in a thread; T2 then requests obj1 → cycle.
        let lm1 = Arc::clone(&lm);
        let h = thread::spawn(move || lm1.acquire(TxnId(1), obj(2), LockMode::X));
        // Give T1 time to start waiting.
        thread::sleep(Duration::from_millis(100));
        let err = lm.acquire(TxnId(2), obj(1), LockMode::X).unwrap_err();
        assert!(
            matches!(err, LockError::Deadlock { txn: TxnId(2), .. }),
            "{err}"
        );
        // T2 aborts, releasing its locks lets T1 proceed.
        lm.release_all(TxnId(2));
        h.join().unwrap().unwrap();
        assert!(lm.stats().deadlocks >= 1);
    }

    #[test]
    fn waiters_wake_on_release() {
        let lm = Arc::new(LockManager::new());
        lm.acquire(TxnId(1), obj(1), LockMode::X).unwrap();
        let lm2 = Arc::clone(&lm);
        let h = thread::spawn(move || lm2.acquire(TxnId(2), obj(1), LockMode::S));
        thread::sleep(Duration::from_millis(50));
        lm.release_all(TxnId(1));
        h.join().unwrap().unwrap();
        assert_eq!(lm.held_mode(TxnId(2), &obj(1)), Some(LockMode::S));
        assert!(lm.stats().waits >= 1);
    }

    #[test]
    fn try_acquire_reports_blockers() {
        let lm = LockManager::new();
        lm.acquire(TxnId(1), obj(1), LockMode::X).unwrap();
        let blockers = lm.try_acquire(TxnId(2), obj(1), LockMode::S).unwrap_err();
        assert_eq!(blockers, vec![TxnId(1)]);
        assert!(lm.try_acquire(TxnId(2), obj(2), LockMode::S).is_ok());
    }

    #[test]
    fn release_clears_everything() {
        let lm = LockManager::new();
        lm.acquire(TxnId(1), item(1, "A"), LockMode::X).unwrap();
        lm.acquire(TxnId(1), obj(2), LockMode::S).unwrap();
        assert!(lm.held_count(TxnId(1)) >= 3); // item + parent intent + obj2
        lm.release_all(TxnId(1));
        assert_eq!(lm.held_count(TxnId(1)), 0);
        assert_eq!(lm.held_mode(TxnId(1), &obj(2)), None);
    }

    #[test]
    fn invariants_hold_under_concurrent_contention() {
        let lm = Arc::new(LockManager::with_timeout(Duration::from_millis(20)));
        let mut handles = Vec::new();
        for t in 0..6u64 {
            let lm = Arc::clone(&lm);
            handles.push(thread::spawn(move || {
                // Deterministic per-thread op mix over a small resource set.
                let mut x = t.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
                for i in 0..200u64 {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let txn = TxnId(t * 10_000 + i);
                    let target = x % 4;
                    let mode = match (x >> 8) % 4 {
                        0 => LockMode::S,
                        1 => LockMode::X,
                        2 => LockMode::IS,
                        _ => LockMode::IX,
                    };
                    let res = if (x >> 16) % 2 == 0 {
                        obj(target)
                    } else {
                        item(target, if (x >> 17) % 2 == 0 { "A" } else { "B" })
                    };
                    let _ = lm.acquire(txn, res, mode); // deadlock/timeout ok
                    let problems = lm.validate_invariants();
                    assert!(problems.is_empty(), "{problems:?}");
                    lm.release_all(txn);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(lm.validate_invariants().is_empty());
    }

    #[test]
    fn stats_lose_no_updates_under_contention() {
        // Disjoint per-thread resources make every outcome deterministic:
        // each iteration grants exactly two locks (IX on the object, X on
        // the item) and nothing ever waits. If the counters were updated
        // non-atomically, 8 threads hammering them would lose increments.
        const THREADS: u64 = 8;
        const ITERS: u64 = 250;
        let lm = Arc::new(LockManager::new());
        let before = lm.stats();
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let lm = Arc::clone(&lm);
            handles.push(thread::spawn(move || {
                for i in 0..ITERS {
                    let txn = TxnId(t * 10_000 + i);
                    lm.acquire(txn, obj(t), LockMode::IX).unwrap();
                    lm.acquire(txn, item(t, "A"), LockMode::X).unwrap();
                    lm.release_all(txn);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let after = lm.stats();
        assert_eq!(after.grants - before.grants, THREADS * ITERS * 2);
        assert_eq!(after.waits, before.waits);
        assert_eq!(after.deadlocks, before.deadlocks);
        assert_eq!(after.timeouts, before.timeouts);
        assert!(lm.validate_invariants().is_empty());
    }

    #[test]
    fn stress_many_threads_disjoint_objects() {
        let lm = Arc::new(LockManager::new());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let lm = Arc::clone(&lm);
            handles.push(thread::spawn(move || {
                for i in 0..100u64 {
                    let txn = TxnId(t * 1000 + i);
                    lm.acquire(txn, obj(t), LockMode::X).unwrap();
                    lm.release_all(txn);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let _ = A;
    }
}
