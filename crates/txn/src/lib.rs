#![warn(missing_docs)]

//! # ccdb-txn
//!
//! Transaction management for the ccdb object model, implementing §6 of
//! *Complex and Composite Objects in CAD/CAM Databases*:
//!
//! - a hierarchical [`lock::LockManager`] with attribute-group granularity
//!   and deadlock detection;
//! - a [`txn::Database`] running strict 2PL transactions with **lock
//!   inheritance** (reading inherited data read-locks the permeable items of
//!   the transmitters along the resolution chain) and **expansion locking**;
//! - an [`access::AccessControl`] manager coupled to the lock manager, so
//!   implicit expansion locks never exceed a user's rights (the paper's
//!   protected standard cells);
//! - relationship-based [`conflict`] detection between update transactions;
//! - optimistic long **design transactions** with private workspaces
//!   ([`design`]);
//! - a [`session::TxnRegistry`] exposing `begin`/`commit`/`abort` wire
//!   transactions over an MVCC [`ccdb_core::shared::SharedStore`] —
//!   §6 lock inheritance on the pessimistic side, first-committer-wins
//!   snapshot validation against lock-free plain writers.

pub mod access;
pub mod conflict;
pub mod design;
pub mod lock;
pub(crate) mod metrics;
pub mod persistent;
pub mod session;
pub mod txn;

pub use access::{AccessControl, Right};
pub use conflict::{potential_conflicts, ConflictKind, PotentialConflict};
pub use design::{DesignError, DesignTxn, StampRegistry};
pub use lock::{LockError, LockManager, LockMode, LockStats, Resource, TxnId};
pub use persistent::PersistentDatabase;
pub use session::{CommitInfo, SessionError, TxnRegistry};
pub use txn::{Database, PersistenceDelta, TxnError, TxnHandle, TxnResult};
