//! Design-rule automation: textual queries, semi-automatic adaptation
//! triggers (§4.1), and schema round-tripping.
//!
//! A parts librarian maintains girder interfaces; downstream structures
//! keep a derived safety margin in sync via a trigger, and an engineer
//! queries the library in the paper's expression syntax.
//!
//! Run with: `cargo run -p ccdb-examples --bin design_rules`

use ccdb_core::prelude::*;
use ccdb_lang::{compile_expr, compile_str, render};

fn main() {
    // Schema in the paper's syntax.
    let mut catalog = Catalog::new();
    compile_str(
        r#"
        obj-type GirderInterface =
            attributes:
                Length, Height, Width: integer;
                Grade: (S235, S355);
            constraints:
                Length < 100*Height*Width;
        end GirderInterface;

        inher-rel-type AllOf_GirderIf =
            transmitter: object-of-type GirderInterface;
            inheritor: object;
            inheriting: Length, Height, Width, Grade;
        end AllOf_GirderIf;

        obj-type GirderUse =
            inheritor-in: AllOf_GirderIf;
            attributes:
                SafetyMargin: integer;
        end GirderUse;
        "#,
        &mut catalog,
    )
    .unwrap();

    // The schema round-trips through the renderer.
    let rendered = render(&catalog).unwrap();
    println!("--- schema (rendered back from the catalog) ---\n{rendered}");

    let mut store = ObjectStore::new(catalog).unwrap();

    // A small girder library.
    let mut girders = Vec::new();
    for (len, h, w, grade) in [
        (300, 20, 10, "S235"),
        (500, 30, 12, "S355"),
        (800, 40, 20, "S355"),
    ] {
        girders.push(
            store
                .create_object(
                    "GirderInterface",
                    vec![
                        ("Length", Value::Int(len)),
                        ("Height", Value::Int(h)),
                        ("Width", Value::Int(w)),
                        ("Grade", Value::Enum(grade.into())),
                    ],
                )
                .unwrap(),
        );
    }
    // A use site bound to the middle girder, with a derived margin.
    let use_site = store
        .create_object("GirderUse", vec![("SafetyMargin", Value::Int(50))])
        .unwrap();
    store
        .bind("AllOf_GirderIf", girders[1], use_site, vec![])
        .unwrap();

    // -------------------------------------------------------------
    // Textual queries in paper syntax (top-down selection, §6).
    // -------------------------------------------------------------
    let q = compile_expr("Grade = S355 and Length >= 500", store.catalog()).unwrap();
    let hits = store.select("GirderInterface", &q).unwrap();
    println!(
        "query `Grade = S355 and Length >= 500` → {} girder(s): {:?}",
        hits.len(),
        hits
    );
    assert_eq!(hits.len(), 2);

    // Queries see *inherited* data on use sites too.
    let q2 = compile_expr("Height = 30", store.catalog()).unwrap();
    let uses = store.select("GirderUse", &q2).unwrap();
    println!("use sites on 30-high girders: {uses:?}");
    assert_eq!(uses, vec![use_site]);

    // -------------------------------------------------------------
    // Trigger: keep SafetyMargin = Length / 10 whenever the bound
    // girder changes (the paper's semi-automatic correction).
    // -------------------------------------------------------------
    let mut triggers = TriggerRegistry::from_now(&store);
    triggers.register("AllOf_GirderIf", |st, ev| {
        if ev.item != "Length" {
            return Ok(TriggerOutcome::Handled);
        }
        if let Value::Int(len) = st.attr(ev.inheritor, "Length")? {
            st.set_attr(ev.inheritor, "SafetyMargin", Value::Int(len / 10))?;
        }
        Ok(TriggerOutcome::Handled)
    });

    store
        .set_attr(girders[1], "Length", Value::Int(620))
        .unwrap();
    let report = triggers.process(&mut store).unwrap();
    println!(
        "girder updated: {} event(s), {} auto-adapted; SafetyMargin now = {}",
        report.events,
        report.handled,
        store.attr(use_site, "SafetyMargin").unwrap()
    );
    assert_eq!(
        store.attr(use_site, "SafetyMargin").unwrap(),
        Value::Int(62)
    );
    let rel = store.binding_of(use_site, "AllOf_GirderIf").unwrap();
    assert!(
        !store.needs_adaptation(rel).unwrap(),
        "trigger cleared the flag"
    );

    // The schema constraint still guards the library.
    let err = store.set_attr(girders[0], "Length", Value::Int(1_000_000));
    assert!(err.is_ok(), "writes are not blocked eagerly…");
    let violations = store.check_constraints(girders[0]).unwrap();
    println!(
        "…but check_constraints reports {} violation(s) for the oversized girder",
        violations.len()
    );
    assert_eq!(violations.len(), 1);
    println!("design_rules OK");
}
