//! Chip design: the paper's §3–§4 scenario end to end.
//!
//! Compiles the paper's schema listings *verbatim* with `ccdb-lang`, builds
//! a gate library with an interface hierarchy (abstraction levels), designs
//! a composite from components, tailors visibility with `SomeOf_Gate`, and
//! manages gate versions with generic references.
//!
//! Run with: `cargo run -p ccdb-examples --bin chip_design`

use ccdb_core::expand::expand;
use ccdb_core::store::ObjectStore;
use ccdb_core::{Surrogate, Value};
use ccdb_lang::paper::chip_catalog;
use ccdb_version::{
    EnvironmentRegistry, GenericBindings, GenericRef, Selector, VersionManager, VersionStatus,
};

fn make_pin(st: &mut ObjectStore, owner: Surrogate, io: &str, x: i64) -> Surrogate {
    st.create_subobject(
        owner,
        "Pins",
        vec![
            ("InOut", Value::Enum(io.into())),
            ("PinLocation", Value::Point { x, y: 0 }),
        ],
    )
    .unwrap()
}

fn main() {
    // The schema is the paper's text, compiled by the ccdb-lang pipeline.
    let mut st = ObjectStore::new(chip_catalog().expect("paper schema compiles")).unwrap();

    // ---------------------------------------------------------------
    // Abstraction hierarchy (paper §4.2): GateInterface_I (pins only)
    // → GateInterface (adds the expansion) → implementations.
    // ---------------------------------------------------------------
    let nand_pins = st.create_object("GateInterface_I", vec![]).unwrap();
    make_pin(&mut st, nand_pins, "IN", 0);
    make_pin(&mut st, nand_pins, "IN", 1);
    make_pin(&mut st, nand_pins, "OUT", 2);

    let nand_if = st
        .create_object(
            "GateInterface",
            vec![("Length", Value::Int(4)), ("Width", Value::Int(2))],
        )
        .unwrap();
    st.bind("AllOf_GateInterface_I", nand_pins, nand_if, vec![])
        .unwrap();
    println!(
        "NAND interface inherits {} pins from the abstract level",
        st.subclass_members(nand_if, "Pins").unwrap().len()
    );

    // Two NAND implementations (realizations of the same interface).
    let implementation = |st: &mut ObjectStore, tb: i64| {
        let i = st
            .create_object(
                "GateImplementation",
                vec![
                    (
                        "Function",
                        Value::Matrix(vec![vec![Value::Bool(true), Value::Bool(false)]]),
                    ),
                    ("TimeBehavior", Value::Int(tb)),
                ],
            )
            .unwrap();
        st.bind("AllOf_GateInterface", nand_if, i, vec![]).unwrap();
        i
    };
    let nand_v1 = implementation(&mut st, 12);
    let nand_v2 = implementation(&mut st, 7);

    // ---------------------------------------------------------------
    // A composite circuit using the NAND as a component (paper Fig. 3):
    // the SubGates member inherits the component interface and adds its
    // placement.
    // ---------------------------------------------------------------
    let circuit = st
        .create_object(
            "GateImplementation",
            vec![("Function", Value::Matrix(vec![vec![Value::Bool(true)]]))],
        )
        .unwrap();
    for (i, pos) in [(0i64, (0i64, 0i64)), (1, (6, 0))] {
        let sub = st
            .create_subobject(
                circuit,
                "SubGates",
                vec![(
                    "GateLocation",
                    Value::Point {
                        x: pos.0,
                        y: pos.1 + i,
                    },
                )],
            )
            .unwrap();
        st.bind("AllOf_GateInterface", nand_if, sub, vec![])
            .unwrap();
    }
    println!("\nComposite circuit expansion:");
    println!("{}", expand(&st, circuit, 2).unwrap().render());

    // ---------------------------------------------------------------
    // Tailored permeability (paper §4.3): a timing-analysis composite needs
    // TimeBehavior, which the plain interface does not export.
    // ---------------------------------------------------------------
    // SomeOf_Gate transmits Length/Width/TimeBehavior/Pins from an
    // implementation; any type declaring inheritor-in may use it. The chip
    // schema leaves the consumer open — here we reuse a composite subgate.
    let timing_eff = st.catalog().effective_schema("GateImplementation").unwrap();
    assert!(timing_eff.attr("TimeBehavior").is_some());
    println!(
        "SomeOf_Gate permeability: {:?}",
        st.catalog()
            .inher_rel_type("SomeOf_Gate")
            .unwrap()
            .inheriting
    );

    // ---------------------------------------------------------------
    // Versions: the two NAND implementations form a version set; the
    // circuit's components follow the released version generically.
    // ---------------------------------------------------------------
    let mut vm = VersionManager::new();
    vm.create_set("NAND").unwrap();
    let v1 = vm.add_version("NAND", nand_v1, &[]).unwrap();
    let v2 = vm.add_version("NAND", nand_v2, &[v1]).unwrap();
    vm.set_status("NAND", v1, VersionStatus::Released).unwrap();
    println!(
        "\nNAND versions: {:?} (default {:?}, latest {:?})",
        vm.set("NAND")
            .unwrap()
            .entries()
            .iter()
            .map(|e| e.id)
            .collect::<Vec<_>>(),
        vm.set("NAND").unwrap().default_version(),
        vm.set("NAND").unwrap().latest(),
    );
    // Selection strategies at work:
    let envs = EnvironmentRegistry::new();
    let released = ccdb_version::resolve(
        &vm,
        &st,
        &envs,
        "NAND",
        &Selector::LatestWithStatus(VersionStatus::Released),
    )
    .unwrap();
    println!("top-down 'latest released' selects {released}");
    vm.set_status("NAND", v2, VersionStatus::Released).unwrap();
    let released = ccdb_version::resolve(
        &vm,
        &st,
        &envs,
        "NAND",
        &Selector::LatestWithStatus(VersionStatus::Released),
    )
    .unwrap();
    println!("after releasing v2 it selects       {released}");

    // Generic references auto-rebinding is exercised in version_workflow.rs;
    // show the registry shape here.
    let mut gb = GenericBindings::new();
    gb.register(GenericRef {
        inheritor: circuit,
        rel_type: "AllOf_GateInterface".into(),
        set: "NAND".into(),
        selector: Selector::Default,
    });
    println!("registered {} generic reference(s)", gb.refs().len());

    // Constraint check across the whole design.
    let violations = st.check_all().unwrap();
    println!(
        "\nconstraint violations in the design: {}",
        violations.len()
    );
    assert!(violations.is_empty());
    println!("chip_design OK");
}
