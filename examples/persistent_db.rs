//! Durable operation: a design database that survives restarts.
//!
//! Opens (or creates) a `PersistentDatabase` in a directory, runs
//! transactions whose commits are WAL-durable, simulates a crash, reopens,
//! and shows the committed state — including a transactional cascade
//! delete rolled back by abort.
//!
//! Run with: `cargo run -p ccdb-examples --bin persistent_db`

use ccdb_core::prelude::*;
use ccdb_lang::compile_str;
use ccdb_txn::PersistentDatabase;

fn fresh_store() -> ObjectStore {
    let mut catalog = Catalog::new();
    compile_str(
        r#"
        obj-type PadType =
            attributes: Size: integer;
        end PadType;

        obj-type Module =
            attributes:
                Name: char;
                Revision: integer;
            types-of-subclasses:
                Pads: PadType;
        end Module;

        inher-rel-type AllOf_Module =
            transmitter: object-of-type Module;
            inheritor: object;
            inheriting: Name, Revision, Pads;
        end AllOf_Module;

        obj-type Placement =
            inheritor-in: AllOf_Module;
            attributes: Pos: Point;
        end Placement;
        "#,
        &mut catalog,
    )
    .unwrap();
    ObjectStore::new(catalog).unwrap()
}

fn main() {
    let dir = tempfile::tempdir().unwrap();
    println!("database directory: {}", dir.path().display());

    // Session 1: create, commit, crash.
    let (module, placement, doomed);
    {
        let pdb = PersistentDatabase::create(dir.path(), fresh_store()).unwrap();
        let tx = pdb.begin("alice");
        module = pdb
            .create_object(
                &tx,
                "Module",
                vec![
                    ("Name", Value::Str("CPU".into())),
                    ("Revision", Value::Int(1)),
                ],
            )
            .unwrap();
        pdb.create_subobject(&tx, module, "Pads", vec![("Size", Value::Int(3))])
            .unwrap();
        placement = pdb
            .create_object(
                &tx,
                "Placement",
                vec![("Pos", Value::Point { x: 10, y: 20 })],
            )
            .unwrap();
        pdb.bind(&tx, "AllOf_Module", module, placement).unwrap();
        pdb.commit(tx).unwrap();
        println!("session 1: committed module + placement (binding inherited Revision = 1)");

        // A transaction that never commits: its effects must not survive.
        let tx = pdb.begin("alice");
        doomed = pdb
            .create_object(&tx, "Module", vec![("Revision", Value::Int(666))])
            .unwrap();
        pdb.write_attr(&tx, module, "Revision", Value::Int(999))
            .unwrap();
        // Crash before commit: drop everything.
    }

    // Session 2: reopen — recovery replays exactly the committed state.
    {
        let pdb = PersistentDatabase::open(dir.path()).unwrap();
        pdb.db().with_store(|st| {
            assert_eq!(st.attr(placement, "Revision").unwrap(), Value::Int(1));
            assert!(st.object(doomed).is_err(), "uncommitted module gone");
            println!(
                "session 2: recovered — placement sees Revision = {} through the binding; \
                 uncommitted work absent",
                st.attr(placement, "Revision").unwrap()
            );
        });

        // Transactional cascade delete: abort restores the module tree.
        let tx = pdb.begin("bob");
        pdb.db()
            .unbind(
                &tx,
                pdb.db()
                    .with_store(|st| st.binding_of(placement, "AllOf_Module").unwrap()),
            )
            .unwrap();
        pdb.db().delete(&tx, module).unwrap();
        assert!(pdb.db().with_store(|st| st.object(module).is_err()));
        pdb.abort(tx);
        assert!(pdb.db().with_store(|st| st.object(module).is_ok()));
        println!("session 2: cascade delete aborted — module (and pads, binding) restored");

        // Now delete for real and make it durable.
        let tx = pdb.begin("bob");
        let rel = pdb
            .db()
            .with_store(|st| st.binding_of(placement, "AllOf_Module").unwrap());
        pdb.unbind(&tx, rel).unwrap();
        pdb.db().delete(&tx, module).unwrap();
        pdb.commit(tx).unwrap();
        pdb.checkpoint().unwrap();
    }

    // Session 3: the delete survived.
    let pdb = PersistentDatabase::open(dir.path()).unwrap();
    pdb.db().with_store(|st| {
        assert!(st.object(module).is_err());
        assert!(st.object(placement).is_ok(), "placement survives, unbound");
        assert_eq!(st.attr(placement, "Revision").unwrap(), Value::Missing);
    });
    println!("session 3: committed delete is durable; placement is an unbound inheritor");
    println!("persistent_db OK");
}
