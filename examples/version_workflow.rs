//! Multi-designer workflow: transactions, lock inheritance, access control,
//! long design transactions, and version management together (paper §6).
//!
//! Run with: `cargo run -p ccdb-examples --bin version_workflow`

use std::time::Duration;

use ccdb_core::domain::Domain;
use ccdb_core::schema::{AttrDef, Catalog, InherRelTypeDef, ObjectTypeDef};
use ccdb_core::store::ObjectStore;
use ccdb_core::Value;
use ccdb_txn::lock::LockManager;
use ccdb_txn::txn::{Database, TxnError};
use ccdb_txn::{DesignTxn, Right, StampRegistry};
use ccdb_version::{
    Configuration, EnvironmentRegistry, GenericBindings, GenericRef, RebindOutcome, Selector,
    VersionManager, VersionStatus,
};

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register_object_type(ObjectTypeDef {
        name: "CellInterface".into(),
        attributes: vec![
            AttrDef::new("Area", Domain::Int),
            AttrDef::new("Delay", Domain::Int),
        ],
        ..Default::default()
    })
    .unwrap();
    c.register_inher_rel_type(InherRelTypeDef {
        name: "AllOf_Cell".into(),
        transmitter_type: "CellInterface".into(),
        inheritor_type: None,
        inheriting: vec!["Area".into()],
        attributes: vec![],
        constraints: vec![],
    })
    .unwrap();
    c.register_object_type(ObjectTypeDef {
        name: "ChipPart".into(),
        inheritor_in: vec!["AllOf_Cell".into()],
        attributes: vec![AttrDef::new("Placement", Domain::Point)],
        ..Default::default()
    })
    .unwrap();
    c
}

fn main() {
    // ---------------------------------------------------------------
    // Setup: a standard-cell library (versioned) and a chip using it.
    // ---------------------------------------------------------------
    let mut store = ObjectStore::new(catalog()).unwrap();
    let mut vm = VersionManager::new();
    vm.create_set("StdCell").unwrap();
    let cell_v1 = store
        .create_object(
            "CellInterface",
            vec![("Area", Value::Int(100)), ("Delay", Value::Int(9))],
        )
        .unwrap();
    let v1 = vm.add_version("StdCell", cell_v1, &[]).unwrap();
    vm.set_status("StdCell", v1, VersionStatus::Released)
        .unwrap();

    let part = store
        .create_object("ChipPart", vec![("Placement", Value::Point { x: 1, y: 2 })])
        .unwrap();
    store.bind("AllOf_Cell", cell_v1, part, vec![]).unwrap();

    let db =
        Database::with_lock_manager(store, LockManager::with_timeout(Duration::from_millis(50)));

    // ---------------------------------------------------------------
    // Lock inheritance: alice reads the part's inherited Area — this
    // read-locks only (cell, Area). bob can still update Delay, but not
    // Area, until alice commits.
    // ---------------------------------------------------------------
    let alice = db.begin("alice");
    let area = db.read_attr(&alice, part, "Area").unwrap();
    println!("alice reads part.Area = {area} (inherited; locks the permeable item)");

    let bob = db.begin("bob");
    db.write_attr(&bob, cell_v1, "Delay", Value::Int(8))
        .unwrap();
    println!("bob updates cell.Delay concurrently: OK (not permeable)");
    match db.write_attr(&bob, cell_v1, "Area", Value::Int(120)) {
        Err(TxnError::Lock(e)) => println!("bob updates cell.Area: blocked ({e})"),
        other => panic!("expected lock conflict, got {other:?}"),
    }
    db.abort(bob);
    db.commit(alice);

    // ---------------------------------------------------------------
    // Access control: the standard cell is read-only for designers; an
    // expansion-for-update degrades its lock to S instead of failing.
    // ---------------------------------------------------------------
    db.with_access_mut(|ac| ac.grant_object("carol", cell_v1, Right::Read));
    let carol = db.begin("carol");
    let writable = db.expand_update(&carol, part).unwrap();
    println!(
        "carol expands the part for update: {} writable object(s); the standard cell is protected",
        writable.len()
    );
    assert!(!writable.contains(&cell_v1));
    db.commit(carol);

    // ---------------------------------------------------------------
    // Long design transaction: dave designs a new cell version in a
    // private workspace (optimistic; no locks held for the session).
    // ---------------------------------------------------------------
    let stamps = StampRegistry::new();
    let cell_v2 = db.with_store_mut(|st| {
        st.create_object(
            "CellInterface",
            vec![("Area", Value::Int(90)), ("Delay", Value::Int(7))],
        )
        .unwrap()
    });
    let mut session =
        db.with_store(|st| DesignTxn::checkout("dave", st, &stamps, &[cell_v2]).unwrap());
    session.set_attr(cell_v2, "Area", Value::Int(85)).unwrap();
    db.with_store_mut(|st| session.checkin(st, &stamps))
        .unwrap();
    println!("dave's design session checked in: new cell Area = 85");

    // ---------------------------------------------------------------
    // Version release + generic rebinding: the chip part follows the
    // latest released cell.
    // ---------------------------------------------------------------
    let v2 = vm.add_version("StdCell", cell_v2, &[v1]).unwrap();
    vm.set_status("StdCell", v2, VersionStatus::Released)
        .unwrap();
    let mut gb = GenericBindings::new();
    gb.register(GenericRef {
        inheritor: part,
        rel_type: "AllOf_Cell".into(),
        set: "StdCell".into(),
        selector: Selector::LatestWithStatus(VersionStatus::Released),
    });
    let envs = EnvironmentRegistry::new();
    let report = db.with_store_mut(|st| gb.refresh(st, &vm, &envs));
    match &report[0].1 {
        RebindOutcome::Rebound { from, to } => {
            println!("part rebound from {from:?} to {to} (new released version)")
        }
        other => panic!("expected rebind, got {other:?}"),
    }
    let new_area = db.with_store(|st| st.attr(part, "Area").unwrap());
    println!("part.Area now = {new_area} (inherited from the new version)");
    assert_eq!(new_area, Value::Int(85));

    // ---------------------------------------------------------------
    // Configuration control: snapshot the shipped binding state, move the
    // design forward, then restore the shipped configuration exactly.
    // ---------------------------------------------------------------
    let shipped = db.with_store(|st| Configuration::capture("ship-1", st, part).unwrap());
    // Design marches on: rebind the part back to v1.
    db.with_store_mut(|st| {
        let rel = st.binding_of(part, "AllOf_Cell").unwrap();
        st.unbind(rel).unwrap();
        st.bind("AllOf_Cell", cell_v1, part, vec![]).unwrap();
    });
    assert_eq!(
        db.with_store(|st| st.attr(part, "Area").unwrap()),
        Value::Int(100)
    );
    let report = db.with_store_mut(|st| shipped.apply(st));
    println!(
        "configuration `{}` re-applied: {} slot(s) rebound — part.Area = {}",
        shipped.name,
        report.rebound,
        db.with_store(|st| st.attr(part, "Area").unwrap())
    );
    assert_eq!(
        db.with_store(|st| st.attr(part, "Area").unwrap()),
        Value::Int(85)
    );
    println!("version_workflow OK");
}
