//! Quickstart: the value-inheritance mechanism in five minutes.
//!
//! Defines a tiny interface/implementation schema through the Rust API,
//! demonstrates the paper's core semantics (selective inheritance, read-only
//! inherited data, instant update visibility, adaptation flags), and
//! persists the store through the WAL-protected KV substrate.
//!
//! Run with: `cargo run -p ccdb-examples --bin quickstart`

use ccdb_core::persist::{load_store, save_store};
use ccdb_core::prelude::*;
use ccdb_storage::kv::DurableKv;

fn main() {
    // ---------------------------------------------------------------
    // 1. Schema: an interface type, an inheritance relationship, and an
    //    implementation type declared as inheritor.
    // ---------------------------------------------------------------
    let mut catalog = Catalog::new();
    catalog
        .register_object_type(ObjectTypeDef {
            name: "GateInterface".into(),
            attributes: vec![
                AttrDef::new("Length", Domain::Int),
                AttrDef::new("Width", Domain::Int),
                AttrDef::new("InternalNote", Domain::Text), // not exported
            ],
            ..Default::default()
        })
        .unwrap();
    catalog
        .register_inher_rel_type(InherRelTypeDef {
            name: "AllOf_GateInterface".into(),
            transmitter_type: "GateInterface".into(),
            inheritor_type: None,
            // The permeability: only Length and Width flow through.
            inheriting: vec!["Length".into(), "Width".into()],
            attributes: vec![],
            constraints: vec![],
        })
        .unwrap();
    catalog
        .register_object_type(ObjectTypeDef {
            name: "GateImplementation".into(),
            inheritor_in: vec!["AllOf_GateInterface".into()],
            attributes: vec![AttrDef::new("TimeBehavior", Domain::Int)],
            ..Default::default()
        })
        .unwrap();

    let mut store = ObjectStore::new(catalog).expect("schema validates");

    // ---------------------------------------------------------------
    // 2. Objects: one interface, two implementations bound to it.
    // ---------------------------------------------------------------
    let interface = store
        .create_object(
            "GateInterface",
            vec![
                ("Length", Value::Int(10)),
                ("Width", Value::Int(4)),
                ("InternalNote", Value::Str("draft geometry".into())),
            ],
        )
        .unwrap();
    let fast = store
        .create_object("GateImplementation", vec![("TimeBehavior", Value::Int(3))])
        .unwrap();
    let small = store
        .create_object("GateImplementation", vec![("TimeBehavior", Value::Int(9))])
        .unwrap();
    let rel_fast = store
        .bind("AllOf_GateInterface", interface, fast, vec![])
        .unwrap();
    store
        .bind("AllOf_GateInterface", interface, small, vec![])
        .unwrap();

    // Value inheritance: the implementations SEE the interface data.
    println!("fast.Length  = {}", store.attr(fast, "Length").unwrap());
    println!("small.Width  = {}", store.attr(small, "Width").unwrap());

    // Selectivity: InternalNote is not permeable — not part of the
    // implementations' effective schema at all.
    assert!(store.attr(fast, "InternalNote").is_err());
    println!("fast.InternalNote  -> not visible (permeability)");

    // Read-only: inherited data cannot be updated in the inheritor.
    let err = store.set_attr(fast, "Length", Value::Int(11)).unwrap_err();
    println!("set fast.Length    -> {err}");

    // Instant visibility + adaptation flag on the relationship object.
    store.set_attr(interface, "Length", Value::Int(12)).unwrap();
    println!(
        "after interface update: fast.Length = {}, needs_adaptation = {}",
        store.attr(fast, "Length").unwrap(),
        store.needs_adaptation(rel_fast).unwrap()
    );
    store.acknowledge_adaptation(rel_fast).unwrap();

    // ---------------------------------------------------------------
    // 3. Durability: save through the WAL-protected KV store and reload.
    // ---------------------------------------------------------------
    let dir = tempfile::tempdir().unwrap();
    let kv = DurableKv::open(dir.path()).unwrap();
    save_store(&store, &kv).unwrap();
    let reloaded = load_store(&kv).unwrap();
    assert_eq!(reloaded.attr(fast, "Length").unwrap(), Value::Int(12));
    println!(
        "reloaded from {}: {} objects, fast.Length = {}",
        dir.path().display(),
        reloaded.object_count(),
        reloaded.attr(fast, "Length").unwrap()
    );
    println!("quickstart OK");
}
