//! Steel construction: the paper's §5 scenario end to end.
//!
//! Compiles the §5 listings verbatim, assembles a weight-carrying structure
//! from girder/plate interfaces with screwings (bolt + nut embedded in the
//! relationship), checks every constraint, demonstrates a violation being
//! caught, and shows the component-update workflow with adaptation flags.
//!
//! Run with: `cargo run -p ccdb-examples --bin steel_construction`

use ccdb_core::expand::{expand, expansion_footprint};
use ccdb_core::store::ObjectStore;
use ccdb_core::Value;
use ccdb_lang::paper::steel_catalog;

fn main() {
    let mut st = ObjectStore::new(steel_catalog().expect("paper schema compiles")).unwrap();

    // ---------------------------------------------------------------
    // Component library: a girder interface and a plate interface, each
    // with bores; a bolt and a nut.
    // ---------------------------------------------------------------
    let girder_if = st
        .create_object(
            "GirderInterface",
            vec![
                ("Length", Value::Int(600)),
                ("Height", Value::Int(30)),
                ("Width", Value::Int(15)),
            ],
        )
        .unwrap();
    let g_bore = st
        .create_subobject(
            girder_if,
            "Bores",
            vec![
                ("Diameter", Value::Int(10)),
                ("Length", Value::Int(12)),
                ("Position", Value::Point { x: 50, y: 0 }),
            ],
        )
        .unwrap();
    let plate_if = st
        .create_object(
            "PlateInterface",
            vec![
                ("Thickness", Value::Int(8)),
                (
                    "Area",
                    Value::record(vec![
                        ("Length".into(), Value::Int(200)),
                        ("Width".into(), Value::Int(100)),
                    ]),
                ),
            ],
        )
        .unwrap();
    let p_bore = st
        .create_subobject(
            plate_if,
            "Bores",
            vec![
                ("Diameter", Value::Int(10)),
                ("Length", Value::Int(8)),
                ("Position", Value::Point { x: 50, y: 0 }),
            ],
        )
        .unwrap();
    let bolt = st
        .create_object(
            "BoltType",
            vec![("Length", Value::Int(26)), ("Diameter", Value::Int(10))],
        )
        .unwrap();
    let nut = st
        .create_object(
            "NutType",
            vec![("Length", Value::Int(6)), ("Diameter", Value::Int(10))],
        )
        .unwrap();

    // The girder interface itself carries a constraint (§5):
    // Length < 100*Height*Width. Check it directly.
    assert!(st.check_constraints(girder_if).unwrap().is_empty());

    // ---------------------------------------------------------------
    // The structure: component subobjects inherit the interfaces' data;
    // a screwing joins a girder bore with a plate bore and embeds its
    // bolt and nut as subobjects of the relationship.
    // ---------------------------------------------------------------
    let structure = st
        .create_object(
            "WeightCarrying_Structure",
            vec![
                ("Designer", Value::Str("W. Wilkes".into())),
                ("Description", Value::Str("demo frame".into())),
            ],
        )
        .unwrap();
    let g = st.create_subobject(structure, "Girders", vec![]).unwrap();
    st.bind("AllOf_GirderIf", girder_if, g, vec![]).unwrap();
    let p = st.create_subobject(structure, "Plates", vec![]).unwrap();
    st.bind("AllOf_PlateIf", plate_if, p, vec![]).unwrap();

    let screwing = st
        .create_subrel(
            structure,
            "Screwings",
            vec![("Bores", vec![g_bore, p_bore])],
            vec![("Strength", Value::Int(250))],
        )
        .unwrap();
    let b = st.create_rel_subobject(screwing, "Bolt", vec![]).unwrap();
    st.bind("AllOf_BoltType", bolt, b, vec![]).unwrap();
    let n = st.create_rel_subobject(screwing, "Nut", vec![]).unwrap();
    st.bind("AllOf_NutType", nut, n, vec![]).unwrap();

    println!(
        "Structure expansion:\n{}",
        expand(&st, structure, usize::MAX).unwrap().render()
    );

    // ---------------------------------------------------------------
    // Constraints: all of §5's rules hold — one bolt & one nut per
    // screwing, matching diameters, bolt fits the bores, bolt length =
    // nut length + bore lengths (26 = 6 + 12 + 8), screwing bores belong
    // to the structure's components.
    // ---------------------------------------------------------------
    let violations = st.check_all().unwrap();
    println!("violations in the consistent design: {}", violations.len());
    assert!(violations.is_empty(), "{violations:?}");

    // Engineering change: the plate gets thicker bores — the bolt no longer
    // fits; the constraint system catches it.
    st.set_attr(p_bore, "Length", Value::Int(20)).unwrap();
    let violations = st.check_all().unwrap();
    println!(
        "after lengthening the plate bore: {} violation(s):",
        violations.len()
    );
    for v in &violations {
        println!("  {} violates `{}`", v.object, v.constraint);
    }
    assert!(!violations.is_empty());
    st.set_attr(p_bore, "Length", Value::Int(8)).unwrap();

    // ---------------------------------------------------------------
    // Component update & adaptation: changing the girder interface flags
    // the structure's component binding for manual adaptation.
    // ---------------------------------------------------------------
    st.set_attr(girder_if, "Length", Value::Int(650)).unwrap();
    let rel = st.binding_of(g, "AllOf_GirderIf").unwrap();
    println!(
        "after girder change: structure sees Length = {}, needs_adaptation = {}",
        st.attr(g, "Length").unwrap(),
        st.needs_adaptation(rel).unwrap()
    );

    // Expansion footprint = what a transaction would read-lock (§6).
    let fp = expansion_footprint(&st, structure).unwrap();
    println!("expansion footprint of the structure: {} objects", fp.len());
    println!("steel_construction OK");
}
